"""Benchmark-suite configuration.

Each benchmark runs one of the paper's figure experiments exactly once
(pedantic mode: these are deterministic simulations, repetition adds
nothing), prints the paper-style series table, and asserts the paper's
qualitative claims — who wins, by roughly what factor, where inflection
points fall.
"""

import pytest


@pytest.fixture
def run_figure(benchmark):
    """Run a figure experiment under pytest-benchmark and print its table."""

    def _run(fn, **kwargs):
        result = benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
        print()
        print(result.format_table())
        return result

    return _run
