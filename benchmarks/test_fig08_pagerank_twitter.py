"""Figures 8(a)/(b): PageRank on the Twitter-like graph."""

from repro.bench import fig08_pagerank_twitter


def test_fig08_pagerank_twitter(run_figure):
    result = run_figure(fig08_pagerank_twitter.run,
                        n_vertices=2000, degree=15.0)
    h = result.headline
    # Paper: REX Δ ~3x HaLoop and ~7x Hadoop.
    assert h["delta_vs_haloop"] > 2.0
    assert h["delta_vs_hadoop"] > h["delta_vs_haloop"]
    # Per-iteration: the LB methods stay flat, REX Δ decays.
    delta_iters = result.get("REX Δ (per-iter)").values
    haloop_iters = result.get("HaLoop LB (per-iter)").values
    assert delta_iters[-2] < 0.6 * max(delta_iters)
    assert haloop_iters[-1] > 0.7 * max(haloop_iters[1:])
