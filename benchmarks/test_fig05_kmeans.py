"""Figure 5: K-means scalability, REX delta vs Hadoop LB."""

from repro.bench import fig05_kmeans


def test_fig05_kmeans_scalability(run_figure):
    result = run_figure(fig05_kmeans.run)
    rex = result.get("REX Δ")
    hadoop = result.get("Hadoop LB")
    # Paper: REX delta wins by 1-2 orders of magnitude at every size.
    for h, r in zip(hadoop.values, rex.values):
        assert h / r > 5.0
    assert result.headline["speedup_largest"] > 10.0
    # Both runtimes grow with data size (no flat lines at the top end).
    assert rex.values[-1] > rex.values[0]
    assert hadoop.values[-1] > hadoop.values[0]
