"""Figures 6(a)/(b): PageRank on DBPedia-like, five strategies."""

from repro.bench import fig06_pagerank_dbpedia


def test_fig06_pagerank_dbpedia(run_figure):
    result = run_figure(fig06_pagerank_dbpedia.run,
                        n_vertices=2000, degree=10.0)
    h = result.headline
    # Paper: REX Δ ~10x HaLoop, ~4x no-Δ, and wrap ~2x HaLoop.  The shapes
    # (orderings and same order of magnitude) are the reproduction target.
    assert h["delta_vs_haloop"] > 4.0
    assert 2.0 < h["delta_vs_nodelta"] < 20.0
    assert h["wrap_vs_haloop"] > 1.3
    assert h["delta_vs_hadoop"] > h["delta_vs_haloop"]  # Hadoop worst
    # Figure 6(b): REX Δ's per-iteration time decays; no-Δ stays flat.
    delta_iters = result.get("REX Δ (per-iter)").values
    nodelta_iters = result.get("REX no Δ (per-iter)").values
    assert delta_iters[-2] < 0.5 * max(delta_iters)
    assert nodelta_iters[-2] > 0.8 * max(nodelta_iters[1:])
