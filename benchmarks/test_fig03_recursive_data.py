"""Figure 3 (table): measured immutable / mutable / Δi sets per algorithm."""

from repro.bench import fig03_recursive_data


def test_fig03_recursive_data(run_figure):
    result = run_figure(fig03_recursive_data.run)
    h = result.headline
    # Immutable sets are the full input relations.
    assert h["pagerank_immutable"] == h["sssp_immutable"]
    assert h["kmeans_immutable"] > 0
    # Mutable sets are one row per vertex (PR/SSSP reachable set).
    assert h["pagerank_mutable"] <= h["pagerank_immutable"]
    # Every algorithm's Δi trajectory ends at zero (convergence).
    for label in ("PageRank Δi", "Shortest-path Δi (frontier)",
                  "K-means Δi (moved centroids)",
                  "Adsorption Δi (label positions)"):
        series = result.get(label).values
        assert series[-1] == 0.0, label
        assert max(series) > 0, label
