"""Figure 2: PageRank convergence behaviour (per-page and overall)."""

from repro.bench import fig02_convergence


def test_fig02_convergence(run_figure):
    result = run_figure(fig02_convergence.run, n_vertices=2000, degree=10.0)
    # Paper: 20-30 iterations typical for web/social graphs.
    assert 15 <= result.headline["iterations"] <= 60
    # Paper Fig 2b: overall non-converged count steadily decreases.
    assert result.headline["monotone_decrease"] == 1.0
    # Per-page convergence is staggered, not synchronized: the histogram
    # has mass at several distinct iterations.
    histogram = result.get("pages converging at iteration").values
    assert sum(1 for h in histogram if h > 0) >= 5
