"""Figures 10(a)/(b): scalability and speedup vs cluster size."""

from repro.bench import fig10_scalability


def test_fig10_scalability(run_figure):
    result = run_figure(fig10_scalability.run, n_vertices=2000, degree=10.0)
    h = result.headline
    # Paper: runtime decreases ~proportionally with machines.
    times = result.get("REX Δ").values
    assert all(b < a for a, b in zip(times, times[1:]))
    assert h["speedup_at_max_nodes"] > 8.0        # near-linear to 28 nodes
    assert h["parallel_efficiency_at_max"] > 0.3
    # Paper: single-node REX Δ beats DBMS X; real REX beats even the
    # idealized linear-speedup DBMS X at every node count.
    assert h["single_node_rex_vs_dbms"] > 1.0
    assert h["rex_beats_idealized_dbms"] == 1.0
