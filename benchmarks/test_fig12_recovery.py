"""Figure 12: recovery from node failure (restart vs incremental)."""

from repro.bench import fig12_recovery


def test_fig12_recovery(run_figure):
    result = run_figure(fig12_recovery.run, n_vertices=1200, degree=7.0,
                        failure_points=(1, 3, 6, 10, 15, 20))
    h = result.headline
    restart = result.get("Restart").values
    incremental = result.get("Incremental").values
    baseline = h["no_failure_seconds"]
    # Every failed run costs more than the failure-free run; incremental
    # always beats restart (the paper's central recovery claim).
    for r, i in zip(restart, incremental):
        assert i < r
        assert i > baseline
    # Paper: incremental at least halves the recovery overhead.
    assert h["overhead_ratio"] > 2.0
