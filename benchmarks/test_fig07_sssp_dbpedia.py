"""Figures 7(a)/(b): shortest path on DBPedia-like, five strategies."""

from repro.bench import fig07_sssp_dbpedia


def test_fig07_sssp_dbpedia(run_figure):
    result = run_figure(fig07_sssp_dbpedia.run, n_vertices=2000, degree=10.0)
    h = result.headline
    # Paper: REX Δ ~2x no-Δ and ~an order of magnitude over HaLoop.
    assert h["delta_vs_nodelta"] > 1.5
    assert h["delta_vs_haloop"] > 5.0
    assert h["wrap_vs_haloop"] > 1.3
    # Paper: ~6 iterations give 99% reachability, but full reachability
    # needs a long tail that is nearly free for REX Δ.
    assert h["lb_coverage"] > 0.95
    assert h["eccentricity"] > 20
    assert h["delta_tail_seconds"] < 0.5 * h["delta_total_seconds"]
