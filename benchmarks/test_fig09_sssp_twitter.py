"""Figures 9(a)/(b): shortest path on the Twitter-like graph."""

from repro.bench import fig09_sssp_twitter


def test_fig09_sssp_twitter(run_figure):
    result = run_figure(fig09_sssp_twitter.run, n_vertices=2000, degree=15.0)
    h = result.headline
    # Paper: REX Δ faster than HaLoop LB (by ~30% in their shuffle-bound
    # regime; larger here where per-record CPU dominates — see
    # EXPERIMENTS.md).
    assert h["delta_vs_haloop"] > 1.2
    # Figure 9(b)'s signature: a per-iteration spike at hops 7-8 when the
    # reachability frontier explodes, and a first-iteration load spike.
    assert h["frontier_spike_ratio"] > 3.0
    assert h["load_spike_first_iteration"] > 3.0
