"""Figure 4: UDF overhead on the simple TPC-H aggregation query."""

from repro.bench import fig04_simple_agg


def test_fig04_simple_agg(run_figure):
    result = run_figure(fig04_simple_agg.run)
    builtin = result.get("REX built-in").last()
    udf = result.get("REX UDF").last()
    wrap = result.get("REX wrap").last()
    hadoop = result.get("Hadoop").last()
    # Paper: built-in and UDF REX faster than Hadoop by more than 3x.
    assert result.headline["rex_vs_hadoop_speedup"] > 3.0
    # Paper: the UDF configuration costs at most a modest premium.
    assert builtin < udf < hadoop
    assert result.headline["udf_overhead_pct"] < 50.0
    # Paper: wrap lands between native REX and Hadoop, near Hadoop.
    assert udf < wrap < hadoop
