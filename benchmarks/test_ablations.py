"""Ablation benches for the design choices DESIGN.md calls out."""

from repro.bench import ablations


def test_threshold_sweep(run_figure):
    result = run_figure(ablations.threshold_sweep)
    # Tighter thresholds mean strictly more propagated work.
    tuples = result.get("tuples processed").values
    assert all(b >= a for a, b in zip(tuples, tuples[1:]))
    assert result.headline["work_ratio_exact_vs_1pct"] > 2.0


def test_batching(run_figure):
    result = run_figure(ablations.batching_ablation)
    assert result.headline["batching_speedup"] > 1.2


def test_caching(run_figure):
    result = run_figure(ablations.caching_ablation)
    assert result.headline["call_reduction"] > 50.0


def test_preagg(run_figure):
    result = run_figure(ablations.preagg_ablation)
    assert result.headline["bytes_saved_ratio"] > 2.0
    assert result.headline["time_speedup"] > 1.0


def test_replication_sweep(run_figure):
    result = run_figure(ablations.replication_sweep)
    series = result.get("bytes sent").values
    assert all(b > a for a, b in zip(series, series[1:]))


def test_sort_vs_hash(run_figure):
    result = run_figure(ablations.sort_vs_hash_ablation)
    assert result.headline["sort_penalty"] > 1.3
