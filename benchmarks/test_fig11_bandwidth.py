"""Figures 11(a)/(b): average per-node bandwidth (Twitter-like)."""

from repro.bench import fig11_bandwidth


def test_fig11_bandwidth(run_figure):
    result = run_figure(fig11_bandwidth.run, n_vertices=2000, degree=15.0)
    h = result.headline
    # Paper: REX Δ moves ~2x less data than Hadoop/HaLoop on PageRank,
    # and the shortest-path gap is even more pronounced.
    assert h["pr_bytes_hadoop_over_delta"] > 1.5
    assert h["sp_bytes_hadoop_over_delta"] > h["pr_bytes_hadoop_over_delta"]
