"""Listing 2 end-to-end: delta-based single-source shortest path.

Shows the frontier (Δᵢ) behaviour the paper highlights: the frontier
expands hop by hop, and long-diameter tails cost almost nothing under
delta iteration.  Also demonstrates attaching a while-state delta handler
(monotone-min refinement) to the query's fixpoint.

Run:  python examples/shortest_path.py
"""

from repro import Cluster, RQLSession
from repro.algorithms import MonotoneMinDist, SPAgg, sssp_reference
from repro.datasets import dbpedia_like

SSSP_RQL = """
    WITH SP (srcId, parent, dist) AS (
      SELECT v, parent, dist FROM start
    ) UNION ALL UNTIL FIXPOINT BY srcId (
      SELECT nbr, ArgMin(parent, distOut).{id, dist}
      FROM ( SELECT SPAgg(nbrId, dist).{nbr, parent, distOut}
             FROM graph, SP WHERE graph.srcId = SP.srcId
             GROUP BY srcId) GROUP BY nbr)
"""


def main() -> None:
    source = 0
    edges = dbpedia_like(n_vertices=1500, avg_out_degree=6, seed=99)
    cluster = Cluster(6)
    cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                         edges, partition_key="srcId", replication=2)
    cluster.create_table("start",
                         ["v:Integer", "parent:Integer", "dist:Double"],
                         [(source, -1, 0.0)], partition_key="v",
                         replication=3)

    session = RQLSession(cluster)
    session.register(SPAgg())
    session.register(MonotoneMinDist)

    result = session.execute(SSSP_RQL, fixpoint_handler="MonotoneMinDist")
    tree = {row[0]: (row[1], row[2]) for row in result.rows}
    metrics = result.metrics

    print(f"reached {len(tree)} vertices in {metrics.num_iterations} strata")
    print("frontier (Δi) per iteration:", metrics.delta_series()[:20], "...")

    # Walk a path back through the shortest-path tree.
    far = max(tree, key=lambda v: tree[v][1])
    path = [far]
    while path[-1] != source:
        path.append(tree[path[-1]][0])
    print(f"\nfarthest vertex {far} at distance {tree[far][1]:.0f}:")
    print("  path:", " -> ".join(map(str, reversed(path))))

    print("\nverifying against BFS ...")
    expected = sssp_reference(edges, source)
    assert {v: d for v, (_, d) in tree.items()} == {
        v: float(d) for v, d in expected.items()}
    print("  exact match.")


if __name__ == "__main__":
    main()
