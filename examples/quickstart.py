"""Quickstart: create a cluster, load tables, run ad hoc RQL queries.

Demonstrates the DBMS face of REX (Section 1: "small, quickly executed ad
hoc queries"): standard SQL with joins and aggregation over a partitioned
cluster, plus a registered user-defined function.

Run:  python examples/quickstart.py
"""

from repro import Cluster, RQLSession, udf


def main() -> None:
    # A 4-worker simulated shared-nothing cluster.
    cluster = Cluster(4)

    # Orders, hash-partitioned by customer; customers likewise.
    cluster.create_table(
        "orders",
        ["orderId:Integer", "custId:Integer", "amount:Double"],
        [(i, i % 10, round(10.0 + (i * 7) % 90, 2)) for i in range(200)],
        partition_key="custId",
    )
    cluster.create_table(
        "customers",
        ["custId:Integer", "name:Varchar", "tier:Integer"],
        [(c, f"customer-{c}", c % 3) for c in range(10)],
        partition_key="custId",
    )

    session = RQLSession(cluster)

    print("== global aggregate ==")
    result = session.execute(
        "SELECT sum(amount), count(*) FROM orders WHERE amount > 50.0")
    total, count = result.rows[0]
    print(f"  {count} orders over 50.0, totalling {total:.2f}")
    print(f"  simulated runtime: {result.metrics.total_seconds():.4f}s, "
          f"{result.metrics.total_bytes()} bytes shuffled")

    print("\n== join + group-by ==")
    result = session.execute(
        "SELECT name, sum(amount) FROM orders, customers "
        "WHERE orders.custId = customers.custId "
        "GROUP BY name")
    for name, spend in sorted(result.rows):
        print(f"  {name:<14} {spend:9.2f}")

    print("\n== user-defined function ==")

    @udf(in_types=["Double"], out_types=["Double"])
    def with_tax(amount):
        return round(amount * 1.08, 2)

    session.register(with_tax)
    result = session.execute(
        "SELECT orderId, with_tax(amount) FROM orders WHERE orderId < 5")
    for row in sorted(result.rows):
        print(f"  order {row[0]}: {row[1]}")

    print("\n== the optimizer's chosen plan ==")
    print(session.explain(
        "SELECT name, sum(amount) FROM orders, customers "
        "WHERE orders.custId = customers.custId GROUP BY name",
        with_estimates=True))


if __name__ == "__main__":
    main()
