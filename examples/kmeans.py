"""Listing 3 end-to-end: delta-based K-means clustering.

The Δᵢ set is "nodes which switched centroids" — the KMAgg join delta
handler emits coordinate adjustments (+x,+y,+1 to the new centroid,
-x,-y,-1 to the old) only for switching points, so converged regions cost
nothing.  Centroids broadcast; points never move.

Run:  python examples/kmeans.py
"""

from repro import Cluster, RQLSession
from repro.algorithms import kmeans_reference
from repro.algorithms.kmeans import CentroidAvg, KMAgg
from repro.datasets import geo_points, sample_centroids

KMEANS_RQL = """
    WITH KM (cid, x, y) AS (
      SELECT cid, x, y FROM centroids0
    ) UNION ALL UNTIL FIXPOINT BY cid (
      SELECT cid, CentroidAvg(xDiff, yDiff).{x, y}
      FROM ( SELECT cid, KMAgg(cid, cx, cy).{cid, xDiff, yDiff}
             FROM points, KM GROUP BY cid ) GROUP BY cid)
"""


def main() -> None:
    k = 6
    points = geo_points(n=1200, n_clusters=k, seed=7, spread=0.9)
    centroids = sample_centroids(points, k, seed=8)

    cluster = Cluster(4)
    cluster.create_table("points", ["pid:Integer", "x:Double", "y:Double"],
                         points)  # round-robin: points stay put
    cluster.create_table("centroids0",
                         ["cid:Integer", "x:Double", "y:Double"],
                         centroids, partition_key="cid")

    session = RQLSession(cluster)
    session.register(KMAgg)
    session.register(CentroidAvg, name="CentroidAvg")

    result = session.execute(KMEANS_RQL)
    got = {row[0]: (row[1], row[2]) for row in result.rows}
    metrics = result.metrics

    print(f"converged in {metrics.num_iterations} strata "
          f"(moved-centroid Δi per iteration: {metrics.delta_series()})")
    print("\nfinal centroids:")
    for cid in sorted(got):
        x, y = got[cid]
        if x is not None:
            print(f"  centroid {cid}: ({x:8.3f}, {y:8.3f})")

    expected, _, ref_iters = kmeans_reference(points, centroids)
    print(f"\nLloyd's algorithm needed {ref_iters} assignment rounds; "
          "checking centroid agreement ...")
    for cid, (x, y) in expected.items():
        gx, gy = got[cid]
        assert abs(gx - x) < 1e-6 and abs(gy - y) < 1e-6, cid
    print("  exact match.")


if __name__ == "__main__":
    main()
