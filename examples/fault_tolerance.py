"""Failure recovery demo (Section 4.3 / Figure 12).

Runs the same shortest-path query three times: without failures, with a
node crash recovered by restarting, and with the same crash recovered
incrementally from replicated Δ-set checkpoints.  All three produce
identical answers; the incremental strategy wastes far less work.

Run:  python examples/fault_tolerance.py
"""

from repro import Cluster, ExecOptions, FailureSpec
from repro.algorithms import make_start_table, run_sssp, sssp_reference
from repro.datasets import dbpedia_like


def build_cluster(edges, nodes=6):
    cluster = Cluster(nodes)
    cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                         edges, partition_key="srcId", replication=3)
    make_start_table(cluster, 0)
    return cluster


def main() -> None:
    edges = dbpedia_like(n_vertices=1200, avg_out_degree=6, seed=17)
    expected = {v: float(d) for v, d in sssp_reference(edges, 0).items()}

    print("== failure-free baseline ==")
    dists, m = run_sssp(build_cluster(edges))
    assert {v: d for v, (_, d) in dists.items()} == expected
    baseline = m.total_seconds()
    print(f"  {m.num_iterations} strata, {baseline:.3f}s simulated")

    fail_at = 4
    print(f"\n== node crash after stratum {fail_at}, RESTART recovery ==")
    opts = ExecOptions(failure=FailureSpec(after_stratum=fail_at),
                       recovery="restart")
    dists, m = run_sssp(build_cluster(edges), options=opts)
    assert {v: d for v, (_, d) in dists.items()} == expected
    print(f"  correct result; total {m.total_seconds():.3f}s "
          f"(+{m.total_seconds() - baseline:.3f}s over baseline; "
          f"{m.recovery_seconds:.3f}s was discarded work + detection)")

    print(f"\n== same crash, INCREMENTAL recovery ==")
    opts = ExecOptions(failure=FailureSpec(after_stratum=fail_at),
                       recovery="incremental", checkpoint_replication=3)
    dists, m = run_sssp(build_cluster(edges), options=opts)
    assert {v: d for v, (_, d) in dists.items()} == expected
    print(f"  correct result; total {m.total_seconds():.3f}s "
          f"(+{m.total_seconds() - baseline:.3f}s over baseline)")
    print("\nIncremental recovery resumes from the last completed stratum "
          "using the Δ-set checkpoints replicated during normal execution; "
          "takeover nodes replay the failed ranges through their local "
          "pipelines, and the monotone-min refinement guarantees the "
          "replay is exact.")


if __name__ == "__main__":
    main()
