"""Listing 1 end-to-end: delta-based PageRank through the full RQL stack.

The query below is the paper's Listing 1 (modulo the documented sign fix in
PRAgg).  The PRAgg join delta handler lives in
``repro.algorithms.pagerank``; here we register it, run the recursive RQL
query, inspect the Δᵢ convergence behaviour (Figure 2), and verify the
scores against networkx.

Run:  python examples/pagerank.py
"""

from repro import Cluster, RQLSession
from repro.algorithms import PRAgg, pagerank_networkx
from repro.datasets import dbpedia_like

PAGERANK_RQL = """
    WITH PR (srcId, pr) AS                 -- Base case initializes ...
    ( SELECT srcId, 1.0 AS pr FROM graph   -- PageRank to 1
    ) UNION UNTIL FIXPOINT BY srcId (      -- Recursive case produces deltas
      SELECT nbr, 0.15 + 0.85 * sum(prDiff)
      FROM ( SELECT PRAgg(srcId, pr).{nbr, prDiff}
             FROM graph, PR                -- deltas from prev. iteration
             WHERE graph.srcId = PR.srcId GROUP BY srcId)
      GROUP BY nbr)
"""


def main() -> None:
    edges = dbpedia_like(n_vertices=1000, avg_out_degree=8, seed=42)
    cluster = Cluster(6)
    cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                         edges, partition_key="srcId", replication=2)

    session = RQLSession(cluster)
    session.register(PRAgg(tol=0.0))  # tol=0: run to an exact fixpoint

    print("== optimizer plan (compare with the paper's Figure 1) ==")
    print(session.explain(PAGERANK_RQL))

    result = session.execute(PAGERANK_RQL)
    scores = dict(result.rows)
    metrics = result.metrics

    print(f"\nconverged in {metrics.num_iterations} strata, "
          f"{metrics.total_tuples()} tuples processed, "
          f"{metrics.total_bytes()} bytes shuffled")
    print("Δi set per iteration:", metrics.delta_series())

    top = sorted(scores.items(), key=lambda kv: -kv[1])[:5]
    print("\ntop pages:")
    for v, s in top:
        print(f"  page {v:>5}  PR = {s:.4f}")

    print("\nverifying against networkx ...")
    expected = pagerank_networkx(edges)
    worst = max(abs(scores[v] - expected[v]) / expected[v] for v in expected)
    print(f"  max relative error vs networkx: {worst:.2e}")
    assert worst < 1e-4


if __name__ == "__main__":
    main()
