"""Running native Hadoop code inside REX — the wrap mode (Section 4.4).

The same mapper/reducer classes execute (1) on the Hadoop simulator and
(2) inside REX via MapWrap/ReduceWrap wrapper UDFs and UDAs.  Results are
identical; REX avoids the per-job startup, the sort-based shuffle, and the
DFS checkpointing, which is why "the REX platform is often able to execute
native Hadoop code faster than the Hadoop framework".

Run:  python examples/hadoop_migration.py
"""

from repro import Cluster
from repro.datasets import dbpedia_like, lineitem
from repro.datasets.tpch import LINEITEM_SCHEMA
from repro.hadoop import (
    hadoop_pagerank,
    hadoop_simple_agg,
    rex_wrap_pagerank,
    rex_wrap_simple_agg,
)


def main() -> None:
    rows = lineitem(5000)

    print("== one MapReduce job: SELECT sum(tax), count(*) "
          "WHERE linenumber > 1 ==")
    (total, count), hadoop_m = hadoop_simple_agg(Cluster(4), rows)
    print(f"  Hadoop:   sum={total:10.2f} count={count}  "
          f"({hadoop_m.total_seconds():8.3f}s simulated)")

    cluster = Cluster(4)
    cluster.create_table("lineitem", LINEITEM_SCHEMA, rows, None)
    (total, count), wrap_m = rex_wrap_simple_agg(cluster)
    print(f"  REX wrap: sum={total:10.2f} count={count}  "
          f"({wrap_m.total_seconds():8.3f}s simulated)")
    print(f"  -> same mapper/combiner/reducer classes, "
          f"{hadoop_m.total_seconds() / wrap_m.total_seconds():.1f}x faster "
          "in REX (no job startup, no sort, no DFS materialization)")

    print("\n== iterative job: 10 PageRank iterations ==")
    edges = dbpedia_like(n_vertices=800, avg_out_degree=6, seed=5)
    hadoop_scores, hadoop_m = hadoop_pagerank(Cluster(4), edges,
                                              iterations=10)
    cluster = Cluster(4)
    cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                         edges, partition_key="srcId")
    wrap_scores, wrap_m = rex_wrap_pagerank(cluster, iterations=11)
    worst = max(abs(wrap_scores[v] - s) for v, s in hadoop_scores.items())
    print(f"  Hadoop:   {hadoop_m.total_seconds():8.3f}s simulated")
    print(f"  REX wrap: {wrap_m.total_seconds():8.3f}s simulated")
    print(f"  max |score difference| = {worst:.2e}")
    print(f"  -> {hadoop_m.total_seconds() / wrap_m.total_seconds():.1f}x "
          "faster for the identical computation; for recursive queries the "
          "text-conversion overhead is paid only once (Section 6.3)")


if __name__ == "__main__":
    main()
