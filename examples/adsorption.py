"""Adsorption (label propagation) — Figure 3's fourth algorithm.

The paper lists adsorption among the delta-friendly algorithms (Δᵢ =
"adsorbtion vector positions with change >= 1%") without giving a listing;
this repo implements the damped, injection-based linear variant as an
extension (see repro.algorithms.adsorption for the exact recurrence and
why the fully-normalized variant does not decompose into deltas).

Run:  python examples/adsorption.py
"""

from repro import Cluster
from repro.algorithms import run_adsorption
from repro.datasets import dbpedia_like


def main() -> None:
    edges = dbpedia_like(n_vertices=600, avg_out_degree=5, seed=23)
    # Seed two communities with labels at well-separated vertices.
    seeds = {(0, "politics"): 1.0, (300, "sports"): 1.0}

    cluster = Cluster(4)
    cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                         edges, partition_key="srcId")
    cluster.create_table(
        "labels", ["v:Integer", "label:Varchar", "w:Double"],
        [(v, label, w) for (v, label), w in seeds.items()],
        partition_key="v")

    weights, metrics = run_adsorption(cluster, seeds, tol=0.01)

    print(f"converged in {metrics.num_iterations} strata; "
          f"{len(weights)} (vertex, label) positions materialized")
    print("Δi per iteration:", metrics.delta_series()[:15], "...")

    by_label = {}
    for (v, label), w in weights.items():
        by_label.setdefault(label, []).append((w, v))
    for label, entries in sorted(by_label.items()):
        top = sorted(entries, reverse=True)[:5]
        print(f"\nstrongest '{label}' vertices:")
        for w, v in top:
            print(f"  vertex {v:>5}  weight {w:.4f}")

    # Dominant-label assignment: a crude community detection.
    assignment = {}
    for (v, label), w in weights.items():
        if w > assignment.get(v, (0.0, None))[0]:
            assignment[v] = (w, label)
    counts = {}
    for _, label in assignment.values():
        counts[label] = counts.get(label, 0) + 1
    print("\ndominant-label community sizes:", counts)


if __name__ == "__main__":
    main()
