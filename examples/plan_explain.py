"""Reproduce Figure 1: the optimizer's physical plan for PageRank.

Prints the compiled, optimized plan tree for Listing 1 with cardinality
estimates, and shows the optimizer's working on a flat OLAP query
(predicate placement, pre-aggregation pushdown, candidate counts).

Run:  python examples/plan_explain.py
"""

from repro import Cluster, RQLSession
from repro.algorithms import PRAgg
from repro.datasets import dbpedia_like, lineitem
from repro.datasets.tpch import LINEITEM_SCHEMA
from repro.optimizer import Optimizer, explain

PAGERANK_RQL = """
    WITH PR (srcId, pr) AS
    ( SELECT srcId, 1.0 AS pr FROM graph
    ) UNION UNTIL FIXPOINT BY srcId (
      SELECT nbr, 0.15 + 0.85 * sum(prDiff)
      FROM ( SELECT PRAgg(srcId, pr).{nbr, prDiff}
             FROM graph, PR
             WHERE graph.srcId = PR.srcId GROUP BY srcId)
      GROUP BY nbr)
"""


def main() -> None:
    edges = dbpedia_like(n_vertices=500, avg_out_degree=6, seed=3)
    cluster = Cluster(4)
    cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                         edges, partition_key="srcId")
    cluster.create_table("lineitem", LINEITEM_SCHEMA, lineitem(2000), None)

    session = RQLSession(cluster)
    session.register(PRAgg(tol=0.01))

    print("== Figure 1: the PageRank plan ==")
    print("(base case feeding the fixpoint; the recursive side joins the")
    print(" fixpoint receiver with the graph via the PRAgg delta handler,")
    print(" rehashes diffs by target page, sums, applies damping, loops)\n")
    print(session.explain(PAGERANK_RQL, with_estimates=True))

    print("\n== optimizer working on a flat OLAP query ==")
    optimizer = Optimizer(cluster)
    raw = RQLSession(cluster, optimize=False).logical_plan(
        "SELECT linenumber, sum(tax), count(*) FROM lineitem "
        "WHERE quantity > 25 GROUP BY linenumber")
    print("before optimization:")
    print(explain(raw))
    best, report = optimizer.optimize_with_report(raw)
    print(f"\nafter optimization ({report.candidates_considered} candidates "
          f"considered, {report.candidates_pruned} pruned, best cost "
          f"{report.best_cost:.6f}s):")
    print(explain(best, optimizer.estimator))


if __name__ == "__main__":
    main()
