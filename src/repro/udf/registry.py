"""Registry resolving names to UDFs, UDAs, and delta handlers.

The paper lets programs "directly use Java class and jar files without
requiring them to be registered using SQL DDL"; here, RQL queries resolve
identifiers against a :class:`UDFRegistry`, and anything shaped like a
function/aggregator can be dropped in without ceremony (see
:func:`repro.udf.base.introspect_udf`).
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, Optional, Union

from repro.common.errors import UDFError
from repro.udf.aggregates import Aggregator, JoinDeltaHandler, WhileDeltaHandler
from repro.udf.base import UDF, CachingUDF, introspect_udf
from repro.udf.builtins import BUILTIN_AGGREGATES


class UDFRegistry:
    """Case-insensitive name resolution for user code."""

    def __init__(self, enable_caching: bool = True):
        self.enable_caching = enable_caching
        self._functions: Dict[str, UDF] = {}
        self._aggregators: Dict[str, Aggregator] = {}
        self._join_handlers: Dict[str, JoinDeltaHandler] = {}
        self._while_handlers: Dict[str, WhileDeltaHandler] = {}

    # -- registration -------------------------------------------------------
    def register(self, obj: Any, name: Optional[str] = None) -> str:
        """Register any user object, dispatching on its shape."""
        if isinstance(obj, type):
            obj = obj()
        if isinstance(obj, Aggregator):
            return self._put(self._aggregators, obj, name)
        if isinstance(obj, JoinDeltaHandler):
            return self._put(self._join_handlers, obj, name)
        if isinstance(obj, WhileDeltaHandler):
            return self._put(self._while_handlers, obj, name)
        fn = introspect_udf(obj)
        if self.enable_caching and fn.deterministic and not isinstance(fn, CachingUDF):
            fn = CachingUDF(fn)
        return self._put(self._functions, fn, name)

    def _put(self, table: Dict[str, Any], obj: Any, name: Optional[str]) -> str:
        key = (name or obj.name).lower()
        if key in table:
            raise UDFError(f"{key!r} is already registered")
        table[key] = obj
        return key

    # -- lookup ---------------------------------------------------------------
    def function(self, name: str) -> UDF:
        fn = self._functions.get(name.lower())
        if fn is None:
            raise UDFError(f"unknown function: {name!r}")
        return fn

    def aggregator(self, name: str) -> Aggregator:
        """Resolve a UDA by name, falling back to the SQL built-ins."""
        key = name.lower()
        if key in self._aggregators:
            return self._aggregators[key]
        builtin = BUILTIN_AGGREGATES.get(key)
        if builtin is not None:
            return builtin()
        raise UDFError(f"unknown aggregate: {name!r}")

    def join_handler(self, name: str) -> JoinDeltaHandler:
        """A *fresh* handler instance (handlers hold per-worker state)."""
        return self.join_handler_factory(name)()

    def join_handler_factory(self, name: str) -> Callable[[], JoinDeltaHandler]:
        prototype = self._join_handlers.get(name.lower())
        if prototype is None:
            raise UDFError(f"unknown join delta handler: {name!r}")
        # Deep-copying a registered prototype preserves constructor
        # arguments (e.g. PRAgg's tolerance) while isolating worker state.
        return lambda: copy.deepcopy(prototype)

    def while_handler(self, name: str) -> WhileDeltaHandler:
        return self.while_handler_factory(name)()

    def while_handler_factory(self, name: str) -> Callable[[], WhileDeltaHandler]:
        prototype = self._while_handlers.get(name.lower())
        if prototype is None:
            raise UDFError(f"unknown while delta handler: {name!r}")
        return lambda: copy.deepcopy(prototype)

    def is_aggregate(self, name: str) -> bool:
        key = name.lower()
        return key in self._aggregators or key in BUILTIN_AGGREGATES

    def is_function(self, name: str) -> bool:
        return name.lower() in self._functions

    def is_join_handler(self, name: str) -> bool:
        return name.lower() in self._join_handlers
