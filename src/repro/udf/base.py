"""User-defined functions: registration, introspection, caching, hints.

The paper integrates Java user code three ways (Section 3.3): implementing a
typed interface, providing methods with reserved names discovered by
reflection, or supplying type metadata.  We mirror all three in Python:

* subclass :class:`UDF` (the typed interface);
* decorate a plain function with :func:`udf` (metadata supplied inline);
* pass any object with an ``evaluate`` method plus ``in_types``/``out_types``
  attributes to :func:`introspect_udf` (the reflection path).

Optimizer-facing metadata rides along: ``deterministic`` enables result
caching (Section 5.1 "Caching"), ``cost_hint`` carries the programmer's
big-O shape (Section 5.1 "Cost calibration and hints"), and ``selectivity``
feeds predicate-rank ordering.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import UDFError
from repro.common.schema import SQLType


def _parse_types(specs: Optional[Sequence[str]]) -> Tuple[Tuple[str, SQLType], ...]:
    """Parse ``["nbr:Integer", "Double"]``-style declarations into
    (name, type) pairs; unnamed entries get positional names."""
    if not specs:
        return ()
    out = []
    for i, spec in enumerate(specs):
        if ":" in spec:
            name, tname = spec.split(":", 1)
        else:
            name, tname = f"arg{i}", spec
        out.append((name.strip(), SQLType.parse(tname)))
    return tuple(out)


class UDF:
    """A scalar or table-valued user-defined function.

    Scalar UDFs return a single value; table-valued UDFs (``table_valued``)
    return an iterable of output rows.  Subclasses implement
    :meth:`evaluate`; metadata comes from class attributes mirroring the
    paper's ``inTypes`` / ``outTypes`` declarations.
    """

    name: Optional[str] = None
    in_types: Sequence[str] = ()
    out_types: Sequence[str] = ()
    deterministic: bool = True
    table_valued: bool = False
    selectivity: float = 1.0
    """Expected output rows per input row (for filters: pass probability)."""
    cost_hint: Optional[Callable[..., float]] = None
    """Optional big-O shape: maps argument values to relative cost units."""
    reads: Optional[Sequence[int]] = None
    """Column-lineage metadata (REX4xx): the positions of the row (or of
    the first argument, for tuple-taking functions) this function reads,
    or ``None`` when undeclared.  The lineage analyzer cross-checks the
    declaration against the body (REX401/REX402) and the lint pass keeps
    it honest (REX107); narrowing rewrites trust only declarations the
    extractor confirms."""

    def __init__(self):
        self.name = self.name or type(self).__name__
        self.input_fields = _parse_types(self.in_types)
        self.output_fields = _parse_types(self.out_types)

    @property
    def arity(self) -> int:
        return len(self.input_fields)

    def evaluate(self, *args):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args):
        if self.input_fields and len(args) != len(self.input_fields):
            raise UDFError(
                f"UDF {self.name} expects {len(self.input_fields)} args, "
                f"got {len(args)}"
            )
        return self.evaluate(*args)

    def __repr__(self):
        kind = "TVF" if self.table_valued else "UDF"
        return f"{kind}({self.name}/{self.arity})"


class _FunctionUDF(UDF):
    """Adapter wrapping a plain callable as a UDF."""

    def __init__(self, fn: Callable, name: str, in_types, out_types,
                 deterministic: bool, table_valued: bool,
                 selectivity: float, cost_hint, reads=None):
        self.name = name
        self.in_types = in_types or ()
        self.out_types = out_types or ()
        self.deterministic = deterministic
        self.table_valued = table_valued
        self.selectivity = selectivity
        self.cost_hint = cost_hint
        self.reads = reads
        super().__init__()
        self._fn = fn
        self.fn = fn

    def evaluate(self, *args):
        return self._fn(*args)


def udf(name: Optional[str] = None, in_types: Optional[Sequence[str]] = None,
        out_types: Optional[Sequence[str]] = None, deterministic: bool = True,
        table_valued: bool = False, selectivity: float = 1.0,
        cost_hint: Optional[Callable[..., float]] = None,
        reads: Optional[Sequence[int]] = None):
    """Decorator turning a plain Python function into a registered-able UDF.

    >>> @udf(in_types=["Integer"], out_types=["Integer"])
    ... def double(x):
    ...     return 2 * x
    """
    def wrap(fn: Callable) -> _FunctionUDF:
        return _FunctionUDF(fn, name or fn.__name__, in_types, out_types,
                            deterministic, table_valued, selectivity,
                            cost_hint, reads)
    return wrap


def introspect_udf(obj: Any) -> UDF:
    """The "reflection" path: adapt any object exposing ``evaluate`` (or
    being callable) plus optional ``in_types``/``out_types`` attributes."""
    if isinstance(obj, UDF):
        return obj
    if inspect.isclass(obj):
        obj = obj()
    target = getattr(obj, "evaluate", None)
    if target is None and callable(obj):
        target = obj
    if target is None:
        raise UDFError(f"{obj!r} has no evaluate method and is not callable")
    return _FunctionUDF(
        target,
        name=getattr(obj, "name", None) or type(obj).__name__,
        in_types=getattr(obj, "in_types", ()),
        out_types=getattr(obj, "out_types", ()),
        deterministic=getattr(obj, "deterministic", True),
        table_valued=getattr(obj, "table_valued", False),
        selectivity=getattr(obj, "selectivity", 1.0),
        cost_hint=getattr(obj, "cost_hint", None),
        reads=getattr(obj, "reads", None),
    )


class CachingUDF(UDF):
    """Memoizing wrapper for deterministic functions (Section 5.1).

    "Functions can be marked as volatile or deterministic: for deterministic
    functions, REX will cache and reuse values."  Cache statistics are
    exposed so the optimizer's calibration can observe hit rates.
    """

    def __init__(self, inner: UDF, max_entries: int = 1 << 16):
        if not inner.deterministic:
            raise UDFError(f"cannot cache volatile UDF {inner.name}")
        self.name = inner.name
        self.in_types = inner.in_types
        self.out_types = inner.out_types
        self.deterministic = True
        self.table_valued = inner.table_valued
        self.selectivity = inner.selectivity
        self.cost_hint = inner.cost_hint
        self.reads = inner.reads
        super().__init__()
        self.inner = inner
        self.max_entries = max_entries
        self._cache: Dict[Tuple, Any] = {}
        self.hits = 0
        self.misses = 0

    def evaluate(self, *args):
        try:
            key = tuple(args)
            hit = key in self._cache
        except TypeError:  # unhashable argument: bypass the cache
            return self.inner(*args)
        if hit:
            self.hits += 1
            return self._cache[key]
        self.misses += 1
        value = self.inner(*args)
        if len(self._cache) < self.max_entries:
            self._cache[key] = value
        return value

    @property
    def hit_rate(self) -> float:
        calls = self.hits + self.misses
        return self.hits / calls if calls else 0.0
