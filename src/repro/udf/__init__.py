"""User-defined code: UDFs, UDAs, delta handlers (Section 3.3)."""

from repro.udf.aggregates import (
    AggregateSpec,
    Aggregator,
    JoinDeltaHandler,
    WhileDeltaHandler,
)
from repro.udf.base import UDF, CachingUDF, introspect_udf, udf
from repro.udf.builtins import (
    BUILTIN_AGGREGATES,
    ArgMax,
    ArgMin,
    Avg,
    CollectList,
    Count,
    Max,
    Min,
    Sum,
)
from repro.udf.registry import UDFRegistry

__all__ = [
    "UDF",
    "udf",
    "CachingUDF",
    "introspect_udf",
    "Aggregator",
    "AggregateSpec",
    "JoinDeltaHandler",
    "WhileDeltaHandler",
    "UDFRegistry",
    "BUILTIN_AGGREGATES",
    "Sum",
    "Count",
    "Min",
    "Max",
    "Avg",
    "ArgMin",
    "ArgMax",
    "CollectList",
]
