"""Built-in aggregate functions with full delta rules.

Section 3.3: "The standard operators (min, max, sum, average, count)
automatically handle insertion, deletion, and replacement deltas."  The
subtle case the paper calls out is ``min`` under deletion: if the deleted
value *was* the minimum, the next-smallest value must come from buffered
state — so :class:`Min`/:class:`Max` keep an order-statistic multiset, while
:class:`Sum`/:class:`Count`/:class:`Avg` keep O(1) running state.

Numeric built-ins additionally interpret ``δ(E)`` value-update deltas whose
payload is a numeric adjustment (the "arithmetic sum" implicit operation the
paper uses for PageRank diffs).
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Optional, Tuple

from repro.common.deltas import Delta, DeltaOp
from repro.common.errors import UDFError
from repro.udf.aggregates import Aggregator


def _numeric_fold(state, delta: Delta, value, old_value, fold_in, fold_out):
    """Shared insert/delete/replace/update dispatch for running aggregates."""
    if delta.op is DeltaOp.INSERT:
        fold_in(state, value)
    elif delta.op is DeltaOp.DELETE:
        fold_out(state, value)
    elif delta.op is DeltaOp.REPLACE:
        fold_out(state, old_value)
        fold_in(state, value)
    elif delta.op is DeltaOp.UPDATE:
        if not isinstance(delta.payload, (int, float)):
            raise UDFError(
                "built-in aggregates only interpret numeric UPDATE payloads"
            )
        state["sum"] = state.get("sum", 0) + delta.payload
    return state


class Sum(Aggregator):
    """SUM with insert/delete/replace/update delta rules.

    State is ``{sum, count}``; the count distinguishes an empty group (result
    ``None``, SQL semantics) from a group summing to zero.
    """

    name = "sum"
    composable = True
    multiply = staticmethod(lambda value, n: None if value is None else value * n)

    def init_state(self):
        return {"sum": 0, "count": 0}

    def agg_state(self, state, delta: Delta, value, old_value=None):
        # Hot path (PageRank diffs are Sum updates): hand-inlined fold —
        # same arithmetic and ordering as _numeric_fold, no closures.
        op = delta.op
        if op is DeltaOp.UPDATE:
            payload = delta.payload
            if not isinstance(payload, (int, float)):
                raise UDFError(
                    "built-in aggregates only interpret numeric UPDATE "
                    "payloads"
                )
            if state["count"] < 1:
                state["count"] = 1
            state["sum"] += payload
        elif op is DeltaOp.INSERT:
            if value is not None:
                state["sum"] += value
                state["count"] += 1
        elif op is DeltaOp.DELETE:
            if value is not None:
                state["sum"] -= value
                state["count"] -= 1
        else:  # REPLACE: retract the old image, then apply the new
            if old_value is not None:
                state["sum"] -= old_value
                state["count"] -= 1
            if value is not None:
                state["sum"] += value
                state["count"] += 1
        return state

    def agg_result(self, state):
        return state["sum"] if state["count"] > 0 else None


class Count(Aggregator):
    """COUNT(*) or COUNT(expr); NULL inputs are skipped for COUNT(expr)."""

    name = "count"
    composable = True
    multiply = staticmethod(lambda value, n: None if value is None else value * n)

    def __init__(self, count_star: bool = True):
        super().__init__()
        self.count_star = count_star

    def init_state(self):
        return {"n": 0}

    def agg_state(self, state, delta: Delta, value, old_value=None):
        def counts(v):
            return 1 if (self.count_star or v is not None) else 0

        if delta.op is DeltaOp.INSERT:
            state["n"] += counts(value)
        elif delta.op is DeltaOp.DELETE:
            state["n"] -= counts(value)
        elif delta.op is DeltaOp.REPLACE:
            state["n"] += counts(value) - counts(old_value)
        elif delta.op is DeltaOp.UPDATE:
            if not isinstance(delta.payload, int):
                raise UDFError("count interprets only integer UPDATE payloads")
            state["n"] += delta.payload
        return state

    def agg_result(self, state):
        return state["n"]

    def final_aggregator(self) -> Aggregator:
        # Partial counts are *summed*, not re-counted, after a combiner.
        return Sum()


class _Rev:
    """Inverts comparison so one heap implementation serves Min and Max."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other):
        return other.value < self.value

    def __eq__(self, other):
        return isinstance(other, _Rev) and other.value == self.value

    def __hash__(self):
        return hash(("_Rev", self.value))


class _OrderStatMultiset:
    """Multiset with O(1) insert and amortized-cheap extreme lookup.

    Live multiplicities plus a cached extreme.  An insert updates the
    cache with one comparison; only deleting the last copy of the cached
    extreme forces a rescan of the distinct live values, deferred to the
    next ``extreme()`` call.  This is the "buffered state" the paper says
    min needs to answer deletions — insert-heavy streams (SSSP's distance
    offers) never pay for the deletion support.
    """

    __slots__ = ("largest", "size", "_live", "_best", "_stale")

    def __init__(self, largest: bool):
        self.largest = largest
        self._live: dict = {}
        self.size = 0
        self._best = None
        self._stale = False

    def add(self, value) -> None:
        live = self._live
        live[value] = live.get(value, 0) + 1
        self.size += 1
        if not self._stale:
            best = self._best
            if best is None or (value > best if self.largest
                                else value < best):
                self._best = value

    def remove(self, value) -> None:
        count = self._live.get(value, 0)
        if count <= 0:
            raise UDFError(f"deleting value {value!r} not present in aggregate state")
        if count == 1:
            del self._live[value]
            if value == self._best:
                # The cached extreme's last copy is gone; rescan lazily.
                self._best = None
                self._stale = True
        else:
            self._live[value] = count - 1
        self.size -= 1

    def extreme(self):
        """Current min (or max), or None if empty."""
        if self.size <= 0:
            return None
        if self._stale:
            self._best = (max if self.largest else min)(self._live)
            self._stale = False
        return self._best


class Min(Aggregator):
    """MIN with deletion support via an order-statistic multiset."""

    name = "min"
    composable = True
    largest = False
    replay_idempotent = True  # re-adding a present value cannot move the extreme

    def init_state(self):
        return _OrderStatMultiset(self.largest)

    def agg_state(self, state: _OrderStatMultiset, delta: Delta, value,
                  old_value=None):
        if delta.op is DeltaOp.INSERT:
            if value is not None:
                state.add(value)
        elif delta.op is DeltaOp.DELETE:
            if value is not None:
                state.remove(value)
        elif delta.op is DeltaOp.REPLACE:
            if old_value is not None:
                state.remove(old_value)
            if value is not None:
                state.add(value)
        else:
            raise UDFError(f"{self.name} cannot interpret UPDATE deltas; "
                           "supply a user delta handler")
        return state

    def agg_result(self, state: _OrderStatMultiset):
        return state.extreme()


class Max(Min):
    """MAX — shares Min's machinery with inverted ordering."""

    name = "max"
    largest = True


class Avg(Aggregator):
    """AVG, divided into a (sum, count) pre-aggregate and a final division.

    Section 3.3: "average ... is often divided into two portions: a
    pre-aggregate operation that associates both a sum and a count with each
    group (called combiner in MapReduce), and a final aggregate operation."
    """

    name = "avg"
    composable = True

    def init_state(self):
        return {"sum": 0.0, "count": 0}

    def agg_state(self, state, delta: Delta, value, old_value=None):
        def fold_in(s, v):
            if v is not None:
                s["sum"] += v
                s["count"] += 1

        def fold_out(s, v):
            if v is not None:
                s["sum"] -= v
                s["count"] -= 1

        return _numeric_fold(state, delta, value, old_value, fold_in, fold_out)

    def agg_result(self, state):
        if state["count"] <= 0:
            return None
        return state["sum"] / state["count"]

    def pre_aggregator(self) -> Aggregator:
        return AvgPartial()

    def final_aggregator(self) -> Aggregator:
        return AvgFinal()


class AvgPartial(Aggregator):
    """The combiner half of AVG: emits ``(sum, count)`` pairs."""

    name = "avg_partial"
    composable = True

    def init_state(self):
        return {"sum": 0.0, "count": 0}

    def agg_state(self, state, delta: Delta, value, old_value=None):
        return Avg.agg_state(self, state, delta, value, old_value)

    def agg_result(self, state):
        if state["count"] <= 0:
            return None
        return (state["sum"], state["count"])


class AvgFinal(Aggregator):
    """The final half of AVG: accumulates ``(sum, count)`` partials."""

    name = "avg_final"

    def init_state(self):
        return {"sum": 0.0, "count": 0}

    def agg_state(self, state, delta: Delta, value, old_value=None):
        def fold_in(s, v):
            if v is not None:
                s["sum"] += v[0]
                s["count"] += v[1]

        def fold_out(s, v):
            if v is not None:
                s["sum"] -= v[0]
                s["count"] -= v[1]

        if delta.op is DeltaOp.UPDATE:
            raise UDFError("avg_final cannot interpret UPDATE deltas")
        return _numeric_fold(state, delta, value, old_value, fold_in, fold_out)

    def agg_result(self, state):
        if state["count"] <= 0:
            return None
        return state["sum"] / state["count"]


class ArgMin(Aggregator):
    """The appendix's general-purpose aggregate: the identifier carrying the
    minimum value.  Input values are ``(id, value)`` pairs; result is the
    ``(id, value)`` pair with the least value (ties broken by id, for
    determinism).  Used by the shortest-path query (Listing 2).
    """

    name = "argmin"
    largest = False
    replay_idempotent = True

    def init_state(self):
        return _OrderStatMultiset(self.largest)

    def _key(self, pair):
        ident, value = pair
        # Order by value first; id tie-break keeps results deterministic.
        return (value, ident) if not self.largest else (value, _Rev(ident))

    def agg_state(self, state: _OrderStatMultiset, delta: Delta, value,
                  old_value=None):
        if delta.op is DeltaOp.INSERT:
            state.add(self._key(value))
        elif delta.op is DeltaOp.DELETE:
            state.remove(self._key(value))
        elif delta.op is DeltaOp.REPLACE:
            state.remove(self._key(old_value))
            state.add(self._key(value))
        else:
            raise UDFError("argmin cannot interpret UPDATE deltas")
        return state

    def agg_result(self, state: _OrderStatMultiset):
        top = state.extreme()
        if top is None:
            return None
        value, ident = top
        if isinstance(ident, _Rev):
            ident = ident.value
        return (ident, value)


class ArgMax(ArgMin):
    name = "argmax"
    largest = True


class CollectList(Aggregator):
    """Collection-valued aggregation (Section 2 calls these essential).

    Gathers input values into a list; deletion removes one occurrence.
    The result is sorted so output is deterministic across partitionings.
    """

    name = "collect"

    def init_state(self):
        return Counter()

    def agg_state(self, state: Counter, delta: Delta, value, old_value=None):
        if delta.op is DeltaOp.INSERT:
            state[value] += 1
        elif delta.op is DeltaOp.DELETE:
            if state[value] <= 0:
                raise UDFError(f"deleting {value!r} not present in collection")
            state[value] -= 1
        elif delta.op is DeltaOp.REPLACE:
            state[old_value] -= 1
            state[value] += 1
        else:
            raise UDFError("collect cannot interpret UPDATE deltas")
        return state

    def agg_result(self, state: Counter):
        out = []
        for value, n in state.items():
            out.extend([value] * n)
        if not out:
            return None
        return tuple(sorted(out))


#: Names the RQL front end resolves to built-in aggregators.
BUILTIN_AGGREGATES = {
    "sum": Sum,
    "count": Count,
    "min": Min,
    "max": Max,
    "avg": Avg,
    "argmin": ArgMin,
    "argmax": ArgMax,
    "collect": CollectList,
}
