"""User-defined aggregators (UDAs) and delta handlers.

Section 3.3 defines four delta-handler forms; they map here as:

* ``AGGSTATE(state, delta) -> deltas``   — :meth:`Aggregator.agg_state`
* ``AGGRESULT(state) -> deltas``         — :meth:`Aggregator.agg_result`
* join state ``UPDATE(left, right, d)``  — :meth:`JoinDeltaHandler.update`
* while state ``UPDATE(rel, d)``         — :meth:`WhileDeltaHandler.update`

An :class:`Aggregator` is "more than a simple SQL function: [it has] two or
more handlers defining how [it] manage[s] and propagate[s] state."  The
group-by operator owns the key -> state map (take-away (1) of Section 3.3);
each aggregator owns its per-key intermediate state object and decides what
to emit (take-away (2)).

Optimizer-facing metadata (Section 5.2): ``composable`` marks UDAs whose
partial results can be unioned and finally aggregated (sum, avg — not
median), enabling pre-aggregation pushdown through arbitrary joins;
``pre_aggregator`` supplies the combiner; ``multiply`` compensates
pre-aggregated inputs of multiplicative (non key-FK) joins.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro.common.deltas import Delta, DeltaOp
from repro.common.errors import UDFError
from repro.udf.base import _parse_types


class Aggregator:
    """Base class for user-defined (and built-in) aggregate functions.

    Lifecycle per grouping key: the group-by operator calls
    :meth:`init_state` the first time the key is seen, then
    :meth:`agg_state` for every arriving delta (which may return
    intermediate output deltas, e.g. partial sums for streamed
    pre-aggregation), and :meth:`agg_result` when the stratum closes.

    ``agg_state``/``agg_result`` return *values* (or rows), not deltas —
    the group-by operator turns the value sequence into insert/replace
    deltas keyed by the group.  Handlers that need full control can
    instead emit :class:`~repro.common.deltas.Delta` objects directly;
    the operator passes those through untouched.
    """

    name: Optional[str] = None
    in_types: Sequence[str] = ()
    out_types: Sequence[str] = ()
    composable: bool = False
    multiply: Optional[Callable[..., Any]] = None
    """For composable UDAs under multiplicative joins: maps (value, n) to
    the value compensated for the cardinality ``n`` of the opposite join
    group (plain multiplication for the numeric built-ins)."""
    replay_idempotent: bool = False
    """Recovery metadata (Section 4.3): True when re-folding a row that is
    already reflected in the state is a no-op (min/max-style refinement
    algebras).  Plans whose every handler is replay-idempotent can replay
    full rows through surviving operator state during incremental recovery;
    anything else (sums, averages) would double-count, so the executor
    rebuilds downstream state from checkpoints instead."""
    emits_polarity: Optional[frozenset] = None
    """Abstract-interpretation metadata (REX3xx): the set of
    :class:`~repro.common.deltas.DeltaOp` kinds this aggregator can emit
    when it returns :class:`Delta` objects directly from
    ``agg_state``/``agg_result``.  ``None`` (the default) means
    undeclared — the analyzer widens the verdict to "any" and reports
    REX306.  Aggregators that only return plain values need not declare
    anything: the group-by operator turns values into insert/replace
    deltas, and the analyzer knows that."""
    reads: Optional[Sequence[int]] = None
    """Column-lineage metadata (REX4xx): the positions of ``delta.row``
    this aggregator's handlers read, or ``None`` when undeclared.  The
    lineage analyzer cross-checks the declaration against the body
    (REX401/REX402); the lint pass keeps it honest (REX107)."""

    def __init__(self):
        self.name = self.name or type(self).__name__
        self.input_fields = _parse_types(self.in_types)
        self.output_fields = _parse_types(self.out_types)

    # -- state management -------------------------------------------------
    def init_state(self) -> Any:
        """A fresh per-key intermediate state ("a default object if the key
        does not exist")."""
        raise NotImplementedError

    def agg_state(self, state: Any, delta: Delta, value: Any) -> Any:
        """Fold one delta into ``state``; return the revised state.

        ``value`` is the aggregate's input expression evaluated on the
        delta's row (and on the old row for REPLACE, see ``old_value`` via
        the operator).  Built-ins interpret INSERT/DELETE/REPLACE natively;
        handlers may interpret UPDATE payloads.
        """
        raise NotImplementedError

    def agg_result(self, state: Any) -> Any:
        """The current output value for a key, computed from its state."""
        raise NotImplementedError

    # -- optimizer metadata ------------------------------------------------
    def pre_aggregator(self) -> Optional["Aggregator"]:
        """The combiner run before the shuffle (None if not supported)."""
        return None

    def final_aggregator(self) -> "Aggregator":
        """The aggregator applied over pre-aggregated partial values; the
        default assumes self can consume its own partials (sum, min...)."""
        return self

    def __repr__(self):
        return f"UDA({self.name})"


class AggregateSpec:
    """One aggregate column of a group-by: function + input expression.

    ``arg`` maps an input row to the aggregate's input value; ``output``
    names the result column.
    """

    def __init__(self, aggregator: Aggregator,
                 arg: Optional[Callable[[tuple], Any]] = None,
                 output: Optional[str] = None):
        self.aggregator = aggregator
        self.arg = arg or (lambda row: None)
        self.output = output or aggregator.name.lower()

    def __repr__(self):
        return f"AggregateSpec({self.aggregator.name} -> {self.output})"


class JoinDeltaHandler:
    """User-defined join-state handler (Definition in Section 3.3).

    Called by the join operator with the two tuple buckets matching the
    delta's join key.  The handler mutates the buckets as it sees fit and
    returns the deltas to propagate downstream.  ``side`` tells which input
    the delta arrived on (0 = left, 1 = right).
    """

    name: Optional[str] = None
    in_types: Sequence[str] = ()
    out_types: Sequence[str] = ()
    replay_idempotent: bool = False
    """See :attr:`Aggregator.replay_idempotent`."""
    emits_polarity: Optional[frozenset] = None
    """The :class:`~repro.common.deltas.DeltaOp` kinds :meth:`update` can
    emit, or ``None`` when undeclared (analyzer widens to "any" and
    reports REX306).  See :attr:`Aggregator.emits_polarity`."""
    reads: Optional[Sequence[int]] = None
    """The positions of ``delta.row`` :meth:`update` reads (REX4xx
    lineage metadata); ``None`` when undeclared.  See
    :attr:`Aggregator.reads`."""

    def __init__(self):
        self.name = self.name or type(self).__name__
        self.input_fields = _parse_types(self.in_types)
        self.output_fields = _parse_types(self.out_types)

    def update(self, left_bucket: list, right_bucket: list,
               delta: Delta, side: int) -> Iterable[Delta]:
        raise NotImplementedError


class WhileDeltaHandler:
    """User-defined while/fixpoint-state handler.

    Called with the operator's accumulated relation (a mutable mapping from
    fixpoint key to row) and the incoming delta; returns the deltas to admit
    into the next stratum ("possibly the empty set").
    """

    name: Optional[str] = None
    replay_idempotent: bool = False
    """See :attr:`Aggregator.replay_idempotent`."""
    emits_polarity: Optional[frozenset] = None
    """The :class:`~repro.common.deltas.DeltaOp` kinds :meth:`update` can
    admit into the next stratum, or ``None`` when undeclared (analyzer
    widens to "any" and reports REX306).  See
    :attr:`Aggregator.emits_polarity`."""
    reads: Optional[Sequence[int]] = None
    """The positions of ``delta.row`` :meth:`update` reads (REX4xx
    lineage metadata); ``None`` when undeclared.  See
    :attr:`Aggregator.reads`."""

    def __init__(self):
        self.name = self.name or type(self).__name__

    def update(self, while_relation: dict, delta: Delta) -> Iterable[Delta]:
        raise NotImplementedError


def as_deltas(key_row: Tuple, values: Any) -> List[Delta]:
    """Normalize a handler return (None | value | iterable of Delta) into a
    delta list.  Used by operators to accept both styles."""
    if values is None:
        return []
    if values.__class__ is list:
        # Hot path (handlers build lists): validate in place, no rebuild.
        for v in values:
            if v.__class__ is not Delta and not isinstance(v, Delta):
                raise UDFError(
                    f"delta handler returned non-Delta {v!r}; wrap values "
                    "with repro.common.insert/replace/update"
                )
        return values
    if isinstance(values, Delta):
        return [values]
    out = []
    for v in values:
        if not isinstance(v, Delta):
            raise UDFError(
                f"delta handler returned non-Delta {v!r}; wrap values with "
                "repro.common.insert/replace/update"
            )
        out.append(v)
    return out
