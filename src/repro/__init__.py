"""REX: Recursive, Delta-Based Data-Centric Computation — a reproduction.

This package reimplements the system of Mihaylov, Ives & Guha (PVLDB 5(11),
2012): the RQL query language with programmable deltas, the distributed
pipelined engine with stratified recursion and incremental recovery, the
cost-based optimizer, and the comparison substrates (Hadoop/HaLoop
simulator, recursive-SQL "DBMS X") used in the paper's evaluation.

Quick start::

    from repro import Cluster, RQLSession

    cluster = Cluster(4)
    cluster.create_table("t", ["k:Integer", "v:Double"],
                         [(i, float(i)) for i in range(100)], "k")
    session = RQLSession(cluster)
    result = session.execute("SELECT sum(v), count(*) FROM t WHERE k > 10")
    print(result.rows)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced table and figure.
"""

from repro.cluster import Cluster, CostModel, QueryMetrics
from repro.common import (
    Delta,
    DeltaOp,
    Schema,
    SQLType,
    delete,
    insert,
    replace,
    update,
)
from repro.rql import RQLSession
from repro.runtime import ExecOptions, FailureSpec, QueryExecutor, QueryResult
from repro.udf import (
    Aggregator,
    JoinDeltaHandler,
    UDFRegistry,
    WhileDeltaHandler,
    udf,
)

__version__ = "0.1.0"

__all__ = [
    "Cluster",
    "CostModel",
    "QueryMetrics",
    "RQLSession",
    "QueryExecutor",
    "QueryResult",
    "ExecOptions",
    "FailureSpec",
    "UDFRegistry",
    "udf",
    "Aggregator",
    "JoinDeltaHandler",
    "WhileDeltaHandler",
    "Delta",
    "DeltaOp",
    "insert",
    "delete",
    "replace",
    "update",
    "Schema",
    "SQLType",
    "__version__",
]
