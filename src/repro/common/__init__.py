"""Shared primitives for the REX reproduction.

This package holds the data model every other subsystem builds on:

* :mod:`repro.common.deltas` — the paper's annotated-tuple ("delta") model,
  Definition 1 of Section 3.3.
* :mod:`repro.common.schema` — relational schemas and SQL-ish types that map
  cleanly onto Python scalar types (the paper maps RQL types onto Java types).
* :mod:`repro.common.punctuation` — end-of-stratum / end-of-query markers used
  by the stratified execution protocol (Section 4.2).
* :mod:`repro.common.errors` — exception hierarchy.
"""

from repro.common.deltas import (
    Delta,
    DeltaOp,
    delete,
    insert,
    replace,
    update,
)
from repro.common.errors import (
    ExecutionError,
    ParseError,
    PlanError,
    RecoveryError,
    ReproError,
    SchemaError,
    TypeCheckError,
)
from repro.common.punctuation import Punctuation, PunctuationKind
from repro.common.schema import Field, Schema, SQLType

__all__ = [
    "Delta",
    "DeltaOp",
    "insert",
    "delete",
    "replace",
    "update",
    "Field",
    "Schema",
    "SQLType",
    "Punctuation",
    "PunctuationKind",
    "ReproError",
    "SchemaError",
    "ParseError",
    "PlanError",
    "TypeCheckError",
    "ExecutionError",
    "RecoveryError",
]
