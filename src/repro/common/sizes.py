"""Byte-size estimation for rows and values.

The cluster simulator accounts for network and disk traffic in bytes.  Rows
are Python tuples, so we estimate their wire size with a simple model that is
deterministic and cheap: 8 bytes per numeric, the UTF-8 length of strings,
1 byte per boolean, recursive sum for collections, plus a small per-tuple
framing overhead.  Absolute accuracy does not matter — every competing
system in the benchmarks is measured with the same ruler.
"""

from __future__ import annotations

from typing import Any, Iterable

TUPLE_OVERHEAD_BYTES = 4
_NUMERIC_BYTES = 8


def value_bytes(value: Any) -> int:
    """Estimated serialized size of one value."""
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return _NUMERIC_BYTES
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, (tuple, list)):
        return TUPLE_OVERHEAD_BYTES + sum(value_bytes(v) for v in value)
    if isinstance(value, (set, frozenset, dict)):
        items: Iterable[Any] = value.items() if isinstance(value, dict) else value
        return TUPLE_OVERHEAD_BYTES + sum(value_bytes(v) for v in items)
    # Opaque user object: charge a flat envelope.
    return 16


def row_bytes(row) -> int:
    """Estimated serialized size of one row (tuple of values)."""
    return TUPLE_OVERHEAD_BYTES + sum(value_bytes(v) for v in row)
