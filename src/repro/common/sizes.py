"""Byte-size estimation for rows and values.

The cluster simulator accounts for network and disk traffic in bytes.  Rows
are Python tuples, so we estimate their wire size with a simple model that is
deterministic and cheap: 8 bytes per numeric, the UTF-8 length of strings,
1 byte per boolean, recursive sum for collections, plus a small per-tuple
framing overhead.  Absolute accuracy does not matter — every competing
system in the benchmarks is measured with the same ruler.
"""

from __future__ import annotations

from typing import Any, Iterable

TUPLE_OVERHEAD_BYTES = 4
_NUMERIC_BYTES = 8


def value_bytes(value: Any) -> int:
    """Estimated serialized size of one value."""
    cls = value.__class__
    if cls is int or cls is float:   # exact classes: bool is not int here
        return _NUMERIC_BYTES
    if cls is str:
        return len(value.encode("utf-8"))
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return _NUMERIC_BYTES
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, (tuple, list)):
        return TUPLE_OVERHEAD_BYTES + sum(value_bytes(v) for v in value)
    if isinstance(value, (set, frozenset, dict)):
        items: Iterable[Any] = value.items() if isinstance(value, dict) else value
        return TUPLE_OVERHEAD_BYTES + sum(value_bytes(v) for v in items)
    # Opaque user object: charge a flat envelope.
    return 16


_ROW_BYTES_CACHE: dict = {}
_ROW_BYTES_CACHE_MAX = 65536


def row_bytes(row) -> int:
    """Estimated serialized size of one row (tuple of values).

    Memoized per row value: the same rows are sized repeatedly as they
    move through rehash buffers, join state, and checkpoints.  Only rows
    of plain scalars (non-bool int, float, str, None) are cached —
    ``(True,)`` and ``(1,)`` are equal as dict keys but size differently
    (1 vs 8 bytes), and the same trap nests inside containers; flat
    scalar rows are the hot case anyway.
    """
    try:
        return _ROW_BYTES_CACHE[row]
    except KeyError:
        pass
    except TypeError:
        return TUPLE_OVERHEAD_BYTES + sum(value_bytes(v) for v in row)
    size = TUPLE_OVERHEAD_BYTES
    cacheable = True
    for v in row:
        cls = v.__class__
        if cls is int or cls is float:
            size += _NUMERIC_BYTES
        elif cls is str:
            size += len(v.encode("utf-8"))
        elif v is None:
            size += 1
        else:
            cacheable = False
            size += value_bytes(v)
    if cacheable:
        if len(_ROW_BYTES_CACHE) >= _ROW_BYTES_CACHE_MAX:
            _ROW_BYTES_CACHE.clear()
        _ROW_BYTES_CACHE[row] = size
    return size
