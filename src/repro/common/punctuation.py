"""Punctuation markers (Tucker & Maier) used by the stratified protocol.

Section 4.2: "The REX engine uses punctuation (special marker tuples) to
inform query operators that the current stratum is finished."  Unary
operators forward punctuation directly; n-ary operators (join, rehash
receivers) wait until all inputs have delivered matching punctuation.

At the end of a stratum every fixpoint operator reports its newly-derived
tuple count to the query requestor, which decides between END_OF_STRATUM
(advance) and END_OF_QUERY (terminate).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class PunctuationKind(enum.Enum):
    END_OF_STRATUM = "end-of-stratum"
    END_OF_QUERY = "end-of-query"


@dataclass(frozen=True, slots=True)
class Punctuation:
    """A stratum-boundary marker.

    Attributes:
        kind: whether this closes one stratum or the whole query.
        stratum: the 0-based stratum being closed (stratum 0 is the base
            case of a recursive query; non-recursive queries have a single
            stratum 0).
    """

    kind: PunctuationKind
    stratum: int

    @classmethod
    def end_of_stratum(cls, stratum: int) -> "Punctuation":
        return cls(PunctuationKind.END_OF_STRATUM, stratum)

    @classmethod
    def end_of_query(cls, stratum: int) -> "Punctuation":
        return cls(PunctuationKind.END_OF_QUERY, stratum)

    @property
    def is_final(self) -> bool:
        return self.kind is PunctuationKind.END_OF_QUERY

    def __repr__(self):
        """Compact marker notation: ``Punct(eos@3)`` closes stratum 3,
        ``Punct(eoq@3)`` ends the query there."""
        kind = "eoq" if self.kind is PunctuationKind.END_OF_QUERY else "eos"
        return f"Punct({kind}@{self.stratum})"
