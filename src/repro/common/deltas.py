"""The delta (annotated tuple) model — Definition 1 of the REX paper.

A delta is a pair ``(alpha, t)`` of an annotation and a tuple.  The annotation
is one of:

* ``+()``    — insert ``t`` into operator state (:data:`DeltaOp.INSERT`);
* ``-()``    — delete ``t`` from operator state (:data:`DeltaOp.DELETE`);
* ``->(t')`` — ``t`` replaces the existing tuple ``t'`` (:data:`DeltaOp.REPLACE`);
* ``δ(E)``   — a programmable *value update* carrying an arbitrary payload
  ``E`` interpreted by downstream stateful operators via user-defined delta
  handlers (:data:`DeltaOp.UPDATE`).

Rows are plain Python tuples; schemas live alongside the dataflow (see
:mod:`repro.common.schema`).  Deltas are immutable, hashable value objects so
they can sit in fixpoint duplicate-elimination sets and in replicated
checkpoint buffers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional, Tuple

Row = Tuple[Any, ...]


class DeltaOp(enum.Enum):
    """Annotation kind on a delta (Definition 1)."""

    INSERT = "+"
    DELETE = "-"
    REPLACE = "->"
    UPDATE = "δ"

    def __repr__(self):  # pragma: no cover - cosmetic
        return f"DeltaOp.{self.name}"


# Bound once at module level: Delta.__init__ runs hundreds of thousands of
# times per query, so every name it touches should be a single global load.
_dset = object.__setattr__
_REPLACE = DeltaOp.REPLACE
_UPDATE = DeltaOp.UPDATE


@dataclass(frozen=True, slots=True, init=False)
class Delta:
    """An annotated tuple flowing through the dataflow.

    Attributes:
        op: the annotation kind.
        row: the tuple ``t``.
        old: for :data:`DeltaOp.REPLACE`, the tuple ``t'`` being replaced;
            ``None`` otherwise.
        payload: for :data:`DeltaOp.UPDATE`, the expression/parameters ``E``
            interpreted by user delta handlers; ``None`` otherwise.

    Stateless operators propagate deltas unchanged apart from their normal
    row transformation (Section 3.3, "Deltas and stateless query operators"):
    use :meth:`with_row` to carry the annotation onto a transformed row.
    """

    op: DeltaOp
    row: Row
    old: Optional[Row] = None
    payload: Any = None

    def __init__(self, op: DeltaOp, row: Row, old: Optional[Row] = None,
                 payload: Any = None):
        # Hand-written (init=False): deltas are constructed hundreds of
        # thousands of times per query, so field assignment and validation
        # share one frame instead of __init__ + __post_init__.
        _dset(self, "op", op)
        _dset(self, "row", row)
        _dset(self, "old", old)
        _dset(self, "payload", payload)
        if old is not None:
            if op is not _REPLACE:
                raise ValueError(f"{op.name} delta must not carry old=")
        elif op is _REPLACE:
            raise ValueError(
                "REPLACE delta requires the replaced tuple (old=)")
        if payload is not None and op is not _UPDATE:
            raise ValueError(f"{op.name} delta must not carry payload=")

    def with_row(self, row: Row, old: Optional[Row] = None) -> "Delta":
        """Return a copy carrying the same annotation over a new row.

        ``old`` must be supplied iff this is a REPLACE delta (stateless
        operators transform both the new and the replaced image).
        """
        if self.op is DeltaOp.REPLACE:
            if old is None:
                raise ValueError("REPLACE delta requires a transformed old row")
            return Delta(DeltaOp.REPLACE, row, old=old)
        return Delta(self.op, row, payload=self.payload)

    def inverted(self) -> "Delta":
        """Return the delta that undoes this one (insert<->delete).

        REPLACE inverts to the reverse replacement.  UPDATE deltas have
        user-defined semantics and cannot be mechanically inverted.
        """
        if self.op is DeltaOp.INSERT:
            return Delta(DeltaOp.DELETE, self.row)
        if self.op is DeltaOp.DELETE:
            return Delta(DeltaOp.INSERT, self.row)
        if self.op is DeltaOp.REPLACE:
            return Delta(DeltaOp.REPLACE, self.old, old=self.row)
        raise ValueError("UPDATE deltas are not mechanically invertible")

    def __repr__(self):
        """Compact, annotation-first notation matching the paper's
        Definition 1: ``Δ+(...)``, ``Δ-(...)``, ``Δ->(new|old=...)``,
        ``Δδ(row|payload=...)``.  The annotation symbol always leads, so a
        log line's kind is readable without parsing row images."""
        row = ",".join(repr(v) for v in self.row)
        if self.op is DeltaOp.REPLACE:
            old = ",".join(repr(v) for v in self.old)
            return f"Δ->({row}|old=({old}))"
        if self.op is DeltaOp.UPDATE:
            return f"Δδ(({row})|payload={self.payload!r})"
        return f"Δ{self.op.value}({row})"


def insert(row: Row) -> Delta:
    """Build a ``+()`` insertion delta."""
    return Delta(DeltaOp.INSERT, tuple(row))


def delete(row: Row) -> Delta:
    """Build a ``-()`` deletion delta."""
    return Delta(DeltaOp.DELETE, tuple(row))


def replace(old: Row, new: Row) -> Delta:
    """Build a ``->(t')`` replacement delta: ``new`` replaces ``old``."""
    return Delta(DeltaOp.REPLACE, tuple(new), old=tuple(old))


def update(row: Row, payload: Any) -> Delta:
    """Build a ``δ(E)`` value-update delta with user-interpreted payload."""
    return Delta(DeltaOp.UPDATE, tuple(row), payload=payload)


def apply_deltas(rows: set, deltas) -> set:
    """Apply a sequence of insert/delete/replace deltas to a set of rows.

    This is the *reference semantics* against which stateful operators are
    property-tested: applying the deltas an operator emits to a materialised
    copy of its output must equal recomputing the output from scratch.
    UPDATE deltas are rejected because their meaning is handler-defined.
    """
    out = set(rows)
    for d in deltas:
        if d.op is DeltaOp.INSERT:
            out.add(d.row)
        elif d.op is DeltaOp.DELETE:
            out.discard(d.row)
        elif d.op is DeltaOp.REPLACE:
            out.discard(d.old)
            out.add(d.row)
        else:
            raise ValueError("apply_deltas cannot interpret UPDATE deltas")
    return out
