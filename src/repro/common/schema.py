"""Relational schemas for RQL.

RQL's base data types map cleanly onto host-language scalars (the paper maps
them onto Java types; we map onto Python).  A :class:`Schema` is an ordered,
named, typed list of fields.  Schemas support the operations query planning
needs: projection, concatenation (for joins), renaming (for aliases), and
field lookup by possibly-qualified name.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro.common.errors import SchemaError


class SQLType(enum.Enum):
    """RQL scalar types and their Python carriers."""

    INTEGER = "Integer"
    DOUBLE = "Double"
    VARCHAR = "Varchar"
    BOOLEAN = "Boolean"
    # Collection-valued attributes (Section 2: "support for collection-valued
    # attributes ... essential to certain kinds of user-defined aggregations").
    LIST = "List"
    # Escape hatch for user-defined Java/Python objects flowing through UDFs.
    ANY = "Any"

    @classmethod
    def parse(cls, name: str) -> "SQLType":
        """Parse a type name as written in UDA ``inTypes`` declarations."""
        normalized = name.strip().lower()
        for member in cls:
            if member.value.lower() == normalized:
                return member
        aliases = {"int": cls.INTEGER, "float": cls.DOUBLE, "real": cls.DOUBLE,
                   "string": cls.VARCHAR, "text": cls.VARCHAR, "bool": cls.BOOLEAN}
        if normalized in aliases:
            return aliases[normalized]
        raise SchemaError(f"unknown RQL type: {name!r}")

    def accepts(self, value: Any) -> bool:
        """Whether a Python value is a legal carrier for this type."""
        if value is None:
            return True  # SQL NULL is legal in every type
        if self is SQLType.INTEGER:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is SQLType.DOUBLE:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is SQLType.VARCHAR:
            return isinstance(value, str)
        if self is SQLType.BOOLEAN:
            return isinstance(value, bool)
        if self is SQLType.LIST:
            return isinstance(value, (list, tuple))
        return True  # ANY

    def is_numeric(self) -> bool:
        return self in (SQLType.INTEGER, SQLType.DOUBLE)


@dataclass(frozen=True)
class Field:
    """A named, typed column, optionally qualified by a relation alias."""

    name: str
    type: SQLType = SQLType.ANY
    relation: Optional[str] = None

    @property
    def qualified(self) -> str:
        return f"{self.relation}.{self.name}" if self.relation else self.name

    def matches(self, name: str) -> bool:
        """Whether ``name`` (possibly ``rel.col``) refers to this field."""
        if "." in name:
            rel, col = name.split(".", 1)
            return self.name == col and self.relation == rel
        return self.name == name

    def renamed(self, relation: Optional[str]) -> "Field":
        return Field(self.name, self.type, relation)

    def __repr__(self):
        return f"{self.qualified}:{self.type.value}"


class Schema:
    """An ordered sequence of :class:`Field` with lookup helpers."""

    __slots__ = ("fields", "_index")

    def __init__(self, fields: Iterable[Field]):
        self.fields: Tuple[Field, ...] = tuple(fields)
        self._index = {}
        for i, f in enumerate(self.fields):
            # Unqualified name: ambiguous entries map to None so lookups fail
            # loudly rather than silently picking a column.
            if f.name in self._index and self._index[f.name] != i:
                self._index[f.name] = None
            else:
                self._index.setdefault(f.name, i)
            self._index[f.qualified] = i

    @classmethod
    def of(cls, *specs: str) -> "Schema":
        """Build a schema from ``"name:Type"`` strings (``Type`` optional).

        >>> Schema.of("srcId:Integer", "pr:Double")
        Schema(srcId:Integer, pr:Double)
        """
        fields = []
        for spec in specs:
            relation = None
            if ":" in spec:
                name, tname = spec.split(":", 1)
                ftype = SQLType.parse(tname)
            else:
                name, ftype = spec, SQLType.ANY
            if "." in name:
                relation, name = name.split(".", 1)
            fields.append(Field(name.strip(), ftype, relation))
        return cls(fields)

    def __len__(self):
        return len(self.fields)

    def __iter__(self):
        return iter(self.fields)

    def __getitem__(self, i: int) -> Field:
        return self.fields[i]

    def __eq__(self, other):
        return isinstance(other, Schema) and self.fields == other.fields

    def __hash__(self):
        return hash(self.fields)

    def names(self) -> List[str]:
        return [f.name for f in self.fields]

    def index_of(self, name: str) -> int:
        """Index of a column by (possibly qualified) name.

        Raises :class:`SchemaError` if the name is unknown or ambiguous.
        """
        idx = self._index.get(name, -1)
        if idx is None:
            raise SchemaError(f"ambiguous column reference: {name!r} in {self}")
        if idx < 0:
            # Fall back to a scan for qualified/unqualified mismatches.
            matches = [i for i, f in enumerate(self.fields) if f.matches(name)]
            if len(matches) == 1:
                return matches[0]
            if len(matches) > 1:
                raise SchemaError(f"ambiguous column reference: {name!r} in {self}")
            raise SchemaError(f"unknown column: {name!r} in {self}")
        return idx

    def has(self, name: str) -> bool:
        try:
            self.index_of(name)
            return True
        except SchemaError:
            return False

    def field(self, name: str) -> Field:
        return self.fields[self.index_of(name)]

    def project(self, names: Sequence[str]) -> "Schema":
        """Schema of a projection onto ``names`` (order preserved)."""
        return Schema(self.fields[self.index_of(n)] for n in names)

    def concat(self, other: "Schema") -> "Schema":
        """Schema of the concatenation (join output) of two rows."""
        return Schema(self.fields + other.fields)

    def renamed(self, relation: Optional[str]) -> "Schema":
        """Schema with every field re-qualified to a new relation alias."""
        return Schema(f.renamed(relation) for f in self.fields)

    def validate_row(self, row: Sequence[Any]) -> None:
        """Check arity and carrier types of a row; raise on mismatch."""
        if len(row) != len(self.fields):
            raise SchemaError(
                f"row arity {len(row)} does not match schema arity "
                f"{len(self.fields)} ({self})"
            )
        for value, field in zip(row, self.fields):
            if not field.type.accepts(value):
                raise SchemaError(
                    f"value {value!r} is not a legal {field.type.value} "
                    f"for column {field.qualified}"
                )

    def __repr__(self):
        inner = ", ".join(repr(f) for f in self.fields)
        return f"Schema({inner})"
