"""Exception hierarchy for the REX reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A schema was malformed, or two schemas were incompatible."""


class ParseError(ReproError):
    """RQL source text could not be tokenized or parsed.

    Carries the 1-based ``line`` and ``column`` of the offending token when
    known, so front ends can point at the error.
    """

    def __init__(self, message, line=None, column=None):
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)
        self.line = line
        self.column = column


class TypeCheckError(ReproError):
    """RQL semantic analysis found a type mismatch or unresolved name."""


class PlanError(ReproError):
    """The optimizer could not build a valid plan for a query."""


class PlanValidationError(PlanError):
    """A plan failed static analysis (``repro.analysis``).

    Carries the list of :class:`~repro.analysis.diagnostics.Diagnostic`
    findings that condemned the plan, so callers (CLI, tests, CI) can
    render codes and fix hints instead of a bare message.  ``diagnostics``
    may be empty when the failure predates the analyzer (e.g. the
    optimizer produced no viable plan at all).
    """

    def __init__(self, message, diagnostics=()):
        details = list(diagnostics)
        if details:
            lines = [message] + ["  " + d.format() for d in details]
            message = "\n".join(lines)
        super().__init__(message)
        self.diagnostics = details


class ExecutionError(ReproError):
    """A runtime failure inside the query engine (not a node failure)."""


class RecoveryError(ReproError):
    """Failure recovery could not complete (e.g. all replicas lost)."""


class UDFError(ReproError):
    """A user-defined function or aggregator is malformed or misbehaved."""
