"""The public query interface: RQL text in, results out.

A :class:`RQLSession` binds a cluster, a UDF registry, and an optimizer,
mirroring the paper's requestor-node flow: parse, compile, optimize,
disseminate, execute, union results.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.analysis import analyze_logical
from repro.analysis.diagnostics import DiagnosticReport
from repro.cluster.cluster import Cluster
from repro.optimizer.exchanges import add_exchanges
from repro.optimizer.explain import explain as explain_plan
from repro.optimizer.physical import lower
from repro.optimizer.planner import Optimizer
from repro.common.errors import PlanValidationError, TypeCheckError
from repro.rql import ast as rql_ast
from repro.rql.compiler import compile_query
from repro.rql.parser import parse
from repro.runtime.executor import ExecOptions, QueryExecutor, QueryResult
from repro.udf.registry import UDFRegistry


class RQLSession:
    """Executes RQL queries against one cluster."""

    def __init__(self, cluster: Cluster,
                 registry: Optional[UDFRegistry] = None,
                 optimize: bool = True):
        self.cluster = cluster
        self.registry = registry or UDFRegistry()
        self.optimize = optimize
        self.optimizer = Optimizer(cluster)

    def register(self, obj: Any, name: Optional[str] = None) -> str:
        """Register user code (UDF, UDA, join/while delta handler).

        Like the paper's direct use of class files, no DDL is needed —
        anything shaped like a function or handler is introspected.
        """
        return self.registry.register(obj, name)

    def _split_presentation(self, query):
        """Strip top-level ORDER BY / LIMIT; they are applied at the
        requestor after result collection."""
        import dataclasses

        if isinstance(query, rql_ast.Select) and (query.order_by
                                                  or query.limit is not None):
            presentation = (query.order_by, query.limit)
            stripped = dataclasses.replace(query, order_by=(), limit=None)
            return stripped, presentation
        return query, None

    def _apply_presentation(self, rows, schema, presentation):
        order_by, limit = presentation
        for item in reversed(order_by):
            index = schema.index_of(item.name.text)
            rows = sorted(rows,
                          key=lambda r: (r[index] is None, r[index]),
                          reverse=item.descending)
        if limit is not None:
            rows = rows[:limit]
        return list(rows)

    def logical_plan(self, text: str,
                     fixpoint_handler: Optional[str] = None):
        """Parse and compile to an (optimized) logical plan.

        ``fixpoint_handler`` names a registered while-state delta handler
        to attach to the query's fixpoint (Section 3.3's fourth handler
        form) — e.g. monotone-min refinement for shortest paths, where
        plain keyed replacement would let a later, longer path overwrite
        the source's distance.
        """
        query, _ = self._split_presentation(parse(text))
        node = compile_query(query, self.cluster.catalog, self.registry)
        if fixpoint_handler is not None:
            from repro.optimizer.logical import LFixpoint

            if not isinstance(node, LFixpoint):
                raise TypeCheckError(
                    "fixpoint_handler given but the query is not recursive")
            node.while_handler_factory = \
                self.registry.while_handler_factory(fixpoint_handler)
        if self.optimize:
            node = self.optimizer.optimize(node)
        return node

    def analyze(self, text: str,
                fixpoint_handler: Optional[str] = None) -> DiagnosticReport:
        """Statically analyze a query's chosen plan without executing it.

        Runs every ``repro.analysis`` rule pass over the optimized
        logical tree and returns the diagnostic report.  When the session
        was built with ``optimize=False`` the compiler output has no
        exchanges yet, so partitioning is checked against the tree the
        lowering would actually produce (``add_exchanges``).
        """
        node = self.logical_plan(text, fixpoint_handler=fixpoint_handler)
        if not self.optimize:
            node = add_exchanges(node)
        return analyze_logical(node)

    def explain(self, text: str, with_estimates: bool = False,
                with_diagnostics: bool = False) -> str:
        """Render the chosen plan as a tree (Figure 1 style)."""
        node = self.logical_plan(text)
        estimator = self.optimizer.estimator if with_estimates else None
        rendered = explain_plan(node, estimator)
        if with_diagnostics:
            report = analyze_logical(
                node if self.optimize else add_exchanges(node))
            rendered += "\n-- diagnostics --\n" + report.format()
        return rendered

    def execute(self, text: str,
                options: Optional[ExecOptions] = None,
                fixpoint_handler: Optional[str] = None,
                check: bool = True) -> QueryResult:
        """Run a query to completion and return rows plus metrics.

        Before execution the plan goes through static analysis; plans
        with error-level diagnostics are refused with
        :class:`PlanValidationError` unless ``check=False`` (the CLI's
        ``--force``).  A forced run does not discard the evidence: the
        full report rides on ``QueryResult.suppressed_diagnostics`` and
        is stamped into the trace stream (``analysis.suppressed``) so a
        bypassed error is visible in the JSONL record of the run, not
        just on the terminal of whoever typed ``--force``.  Top-level
        ``ORDER BY`` / ``LIMIT`` are applied at the requestor over the
        unioned result (presentation only; execution is unordered, as in
        any distributed engine).
        """
        query, presentation = self._split_presentation(parse(text))
        node = compile_query(query, self.cluster.catalog, self.registry)
        if fixpoint_handler is not None:
            from repro.optimizer.logical import LFixpoint

            if not isinstance(node, LFixpoint):
                raise TypeCheckError(
                    "fixpoint_handler given but the query is not recursive")
            node.while_handler_factory = \
                self.registry.while_handler_factory(fixpoint_handler)
        if self.optimize:
            node = self.optimizer.optimize(node)
        report = analyze_logical(
            node if self.optimize else add_exchanges(node))
        if check and report.has_errors():
            raise PlanValidationError(
                "plan failed static analysis (pass check=False / "
                "--force to run anyway)",
                diagnostics=report.errors)
        plan = lower(node)
        executor = QueryExecutor(self.cluster, options)
        result = executor.execute(plan)
        if not check and report:
            result.suppressed_diagnostics = report
            obs = options.obs if options is not None else None
            if obs is not None and obs.tracer is not None:
                obs.tracer.instant(
                    "analysis.suppressed", "analysis", -1,
                    errors=len(report.errors),
                    warnings=len(report.warnings),
                    codes=report.codes())
        if presentation is not None:
            result.rows = self._apply_presentation(result.rows, node.schema,
                                                   presentation)
        return result
