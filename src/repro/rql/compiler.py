"""Semantic analysis: RQL ASTs to logical plans.

Resolves FROM bindings against the catalog and the enclosing WITH relation,
resolves calls against the UDF registry (scalar UDF / aggregate / join
delta handler — the namespaces the paper discovers via reflection), type-
checks what it can, and emits :mod:`repro.optimizer.logical` trees.

Two paper idioms get dedicated treatment:

* **Handler joins** — ``SELECT H(args).{out...} FROM immutable, recursive
  WHERE a.k = b.k GROUP BY k`` with ``H`` a registered join delta handler
  compiles to a handler join (Listing 1's ``PRAgg`` pattern).  Without a
  WHERE clause the mutable side broadcasts (Listing 3's ``KMAgg``).  Extra
  select items naming the grouping key are tolerated, as in the listings.
* **Aggregate expansion** — tuple-valued aggregates projected with
  ``.{a, b}`` (Listing 2's ``ArgMin(...).{id, dist}``) become a single
  aggregate column expanded by positional tuple access in the projection.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import TypeCheckError
from repro.common.schema import Field, Schema, SQLType
from repro.operators.expressions import (
    BinaryOp,
    BoolOp,
    ColumnRef,
    Expr,
    FuncCall,
    Literal,
    TupleField,
)
from repro.optimizer.logical import (
    LAggCall,
    LApply,
    LFeedback,
    LFilter,
    LFixpoint,
    LGroupBy,
    LJoin,
    LNode,
    LProject,
    LScan,
)
from repro.rql import ast
from repro.storage.tables import Catalog
from repro.udf.builtins import Count
from repro.udf.registry import UDFRegistry


class Compiler:
    """Stateful compilation of one query."""

    def __init__(self, catalog: Catalog, registry: UDFRegistry):
        self.catalog = catalog
        self.registry = registry
        self._cte: Optional[Tuple[str, Schema, str]] = None  # name, schema, key
        self._gensym = itertools.count()

    # ------------------------------------------------------------------
    def compile(self, query: ast.Query) -> LNode:
        if isinstance(query, ast.WithRecursive):
            return self._compile_with(query)
        return self._compile_select(query)

    def _compile_with(self, query: ast.WithRecursive) -> LNode:
        base = self._compile_select(query.base)
        if query.columns:
            if len(query.columns) != len(base.schema):
                raise TypeCheckError(
                    f"WITH {query.name} declares {len(query.columns)} columns "
                    f"but its base case produces {len(base.schema)}"
                )
            cte_schema = Schema([
                Field(col, f.type, query.name)
                for col, f in zip(query.columns, base.schema)
            ])
        else:
            cte_schema = base.schema.renamed(query.name)
        if not cte_schema.has(query.fixpoint_key):
            raise TypeCheckError(
                f"FIXPOINT BY {query.fixpoint_key} is not a column of "
                f"{query.name}"
            )
        self._cte = (query.name, cte_schema, query.fixpoint_key)
        recursive = self._compile_select(query.recursive)
        if len(recursive.schema) != len(cte_schema):
            raise TypeCheckError(
                f"recursive case of {query.name} produces "
                f"{len(recursive.schema)} columns, expected {len(cte_schema)}"
            )
        self._cte = None
        return LFixpoint(base, recursive, key=query.fixpoint_key,
                         cte_name=query.name, union_all=query.union_all,
                         schema=cte_schema)

    # ------------------------------------------------------------------
    def _compile_select(self, sel: ast.Select) -> LNode:
        if sel.order_by or sel.limit is not None:
            # Presentation clauses are applied at the requestor over the
            # collected result; they are stripped from the top-level query
            # by the session and are meaningless on subqueries.
            raise TypeCheckError(
                "ORDER BY / LIMIT are only supported on the top-level "
                "query")
        sources = [(ref.binding, self._compile_from(ref))
                   for ref in sel.from_]
        handler_item = self._find_handler_item(sel)
        if handler_item is not None:
            return self._compile_handler_join(sel, sources, handler_item)

        node = self._join_sources(sources, sel.where)
        node, items = self._expand_table_functions(node, list(sel.items))
        if sel.group_by or self._has_aggregates(items):
            return self._compile_groupby(sel, node, items)
        compiled = [(self._expr(item.expr, node.schema),
                     self._out_field(item, node.schema, i))
                    for i, item in enumerate(items)]
        return LProject(node, compiled)

    def _compile_from(self, ref: ast.TableRef) -> LNode:
        if ref.subquery is not None:
            node = self._compile_select(ref.subquery)
            if ref.alias:
                items = [(ColumnRef(f.qualified),
                          Field(f.name, f.type, ref.alias))
                         for f in node.schema]
                node = LProject(node, items)
            return node
        name = ref.name
        if self._cte is not None and name == self._cte[0]:
            cte_name, schema, key = self._cte
            return LFeedback(cte_name, schema, key)
        if self.catalog.has(name):
            table = self.catalog.get(name)
            return LScan(name, table.schema, table.partition_key,
                         binding=ref.binding)
        raise TypeCheckError(f"unknown relation {name!r}")

    # -- handler joins --------------------------------------------------
    def _find_handler_item(self, sel: ast.Select
                           ) -> Optional[ast.FieldExpansion]:
        found = None
        for item in sel.items:
            expr = item.expr
            if (isinstance(expr, ast.FieldExpansion)
                    and self.registry.is_join_handler(expr.call.func)):
                if found is not None:
                    raise TypeCheckError(
                        "at most one join delta handler per SELECT")
                found = expr
        return found

    def _compile_handler_join(self, sel: ast.Select,
                              sources: List[Tuple[str, LNode]],
                              item: ast.FieldExpansion) -> LNode:
        if len(sources) != 2:
            raise TypeCheckError(
                f"join handler {item.call.func} requires exactly two "
                "relations in FROM")
        for other in sel.items:
            if other.expr is item:
                continue
            if not isinstance(other.expr, ast.Name):
                raise TypeCheckError(
                    "handler-join SELECT may only name the handler call "
                    "and plain key columns")
        # The handler processes the mutable side: the recursive relation if
        # present, otherwise the second FROM entry.
        mutable_idx = next(
            (i for i, (_, node) in enumerate(sources)
             if isinstance(node, LFeedback)),
            1,
        )
        immutable_idx = 1 - mutable_idx
        left = sources[immutable_idx][1]
        right = sources[mutable_idx][1]

        condition = None
        if sel.where is not None:
            condition = self._join_condition(sel.where, left.schema,
                                             right.schema)
        handler_factory = self.registry.join_handler_factory(item.call.func)
        handler = handler_factory()
        declared = {name: ftype
                    for name, ftype in getattr(handler, "output_fields", ())}
        out_fields = [Field(f, declared.get(f, SQLType.ANY))
                      for f in item.fields]
        return LJoin(left, right, condition,
                     handler_factory=handler_factory,
                     handler_schema=Schema(out_fields))

    def _join_condition(self, where: ast.AstExpr, left: Schema,
                        right: Schema) -> Tuple[str, str]:
        if (not isinstance(where, ast.Binary) or where.op != "="
                or not isinstance(where.left, ast.Name)
                or not isinstance(where.right, ast.Name)):
            raise TypeCheckError(
                "handler joins support a single equality join condition")
        a, b = where.left.text, where.right.text
        if left.has(a) and right.has(b):
            return (a, b)
        if left.has(b) and right.has(a):
            return (b, a)
        raise TypeCheckError(
            f"join condition {a} = {b} does not span the two relations")

    # -- generic joins -----------------------------------------------------
    def _join_sources(self, sources: List[Tuple[str, LNode]],
                      where: Optional[ast.AstExpr]) -> LNode:
        conjuncts = self._split_conjuncts(where)
        node = sources[0][1]
        for _, right in sources[1:]:
            condition, conjuncts = self._extract_join_condition(
                conjuncts, node.schema, right.schema)
            node = LJoin(node, right, condition)
        for conjunct in conjuncts:
            node = LFilter(node, self._expr(conjunct, node.schema))
        return node

    def _split_conjuncts(self, where: Optional[ast.AstExpr]
                         ) -> List[ast.AstExpr]:
        if where is None:
            return []
        if isinstance(where, ast.Binary) and where.op == "and":
            return (self._split_conjuncts(where.left)
                    + self._split_conjuncts(where.right))
        return [where]

    def _extract_join_condition(self, conjuncts: List[ast.AstExpr],
                                left: Schema, right: Schema):
        for i, c in enumerate(conjuncts):
            if (isinstance(c, ast.Binary) and c.op == "="
                    and isinstance(c.left, ast.Name)
                    and isinstance(c.right, ast.Name)):
                a, b = c.left.text, c.right.text
                rest = conjuncts[:i] + conjuncts[i + 1:]
                if left.has(a) and right.has(b) and not left.has(b):
                    return (a, b), rest
                if left.has(b) and right.has(a) and not left.has(a):
                    return (b, a), rest
        raise TypeCheckError(
            "no equality join condition found between the FROM relations")

    # -- table-valued functions (the dependent join, Section 4.2) ---------
    def _expand_table_functions(self, node: LNode,
                                items: List[ast.SelectItem]):
        """Rewrite ``f(args).{a, b}`` select items over table-valued UDFs
        into applyFunction operators — the paper's dependent join, which
        "passes an input to a table-valued function and combines the
        results: this operator even supports calls to multiple table-valued
        functions in the same operation".  Expanded columns become plain
        references; everything else is untouched (aggregate and handler
        expansions are resolved elsewhere).
        """
        rewritten: List[ast.SelectItem] = []
        for item in items:
            expr = item.expr
            is_tvf = (isinstance(expr, ast.FieldExpansion)
                      and self.registry.is_function(expr.call.func)
                      and getattr(self.registry.function(expr.call.func),
                                  "table_valued", False))
            if not is_tvf:
                rewritten.append(item)
                continue
            udf = self.registry.function(expr.call.func)
            args = [self._expr(a, node.schema) for a in expr.call.args]
            declared = list(getattr(udf, "output_fields", ()) or ())
            if declared:
                # The function always emits its full declared row; the
                # expansion list selects a subset of it in the projection.
                unknown = [f for f in expr.fields
                           if f not in {n for n, _ in declared}]
                if unknown:
                    raise TypeCheckError(
                        f"{expr.call.func} does not declare output "
                        f"column(s) {unknown}")
                out_fields = [Field(n, t) for n, t in declared]
            else:
                out_fields = [Field(f, SQLType.ANY) for f in expr.fields]
            node = LApply(node, udf, args, out_fields, mode="extend")
            rewritten.extend(ast.SelectItem(ast.Name((f,)), alias=None)
                             for f in expr.fields)
        return node, rewritten

    # -- aggregation -----------------------------------------------------
    def _has_aggregates(self, items: List[ast.SelectItem]) -> bool:
        return any(self._contains_aggregate(item.expr) for item in items)

    def _contains_aggregate(self, expr: ast.AstExpr) -> bool:
        if isinstance(expr, ast.Call):
            return self.registry.is_aggregate(expr.func)
        if isinstance(expr, ast.FieldExpansion):
            return self.registry.is_aggregate(expr.call.func)
        if isinstance(expr, ast.Binary):
            return (self._contains_aggregate(expr.left)
                    or self._contains_aggregate(expr.right))
        if isinstance(expr, ast.Unary):
            return self._contains_aggregate(expr.operand)
        return False

    def _compile_groupby(self, sel: ast.Select, child: LNode,
                         items: Optional[List[ast.SelectItem]] = None
                         ) -> LNode:
        if items is None:
            items = list(sel.items)
        keys = []
        for name in sel.group_by:
            if not child.schema.has(name.text):
                raise TypeCheckError(f"GROUP BY column {name.text!r} unknown")
            keys.append(name.text)
        aggs: List[LAggCall] = []
        # Rewrite select items over the group-by output schema.
        rewritten: List[Tuple[ast.AstExpr, Optional[str]]] = []
        projection_exprs: List[Tuple[Expr, Field]] = []

        def lift(expr: ast.AstExpr) -> ast.AstExpr:
            """Replace aggregate calls with references to synthetic
            columns, collecting LAggCalls along the way."""
            if isinstance(expr, ast.Call) and self.registry.is_aggregate(expr.func):
                col = f"_agg{next(self._gensym)}"
                aggs.append(self._agg_call(expr, child.schema, col))
                return ast.Name((col,))
            if isinstance(expr, ast.Binary):
                return ast.Binary(expr.op, lift(expr.left), lift(expr.right))
            if isinstance(expr, ast.Unary):
                return ast.Unary(expr.op, lift(expr.operand))
            return expr

        groupby_placeholder_fields: List[Field] = []
        for i, item in enumerate(items):
            expr = item.expr
            if isinstance(expr, ast.FieldExpansion):
                if not self.registry.is_aggregate(expr.call.func):
                    raise TypeCheckError(
                        f"{expr.call.func} is not an aggregate")
                col = f"_agg{next(self._gensym)}"
                aggs.append(self._agg_call(expr.call, child.schema, col))
                for j, fname in enumerate(expr.fields):
                    projection_exprs.append(
                        (TupleField(ColumnRef(col), j),
                         Field(fname, SQLType.ANY)))
                continue
            lifted = lift(expr)
            rewritten.append((lifted, self._item_name(item, i)))

        groupby = LGroupBy(child, keys, aggs)
        for lifted, name in rewritten:
            compiled = self._expr(lifted, groupby.schema)
            ftype = compiled.output_type(groupby.schema)
            projection_exprs.append((compiled, Field(name, ftype)))
        # Preserve SELECT-list order: key/scalar items came first unless the
        # expansion appeared earlier; rebuild in original order.
        ordered = self._ordered_projection(items, projection_exprs, groupby)
        return LProject(groupby, ordered)

    def _ordered_projection(self, items: List[ast.SelectItem],
                            computed: List[Tuple[Expr, Field]],
                            groupby: LGroupBy) -> List[Tuple[Expr, Field]]:
        """Reassemble projection items in SELECT-list order.

        ``computed`` holds expansion items first or last depending on
        discovery order; match them back positionally.
        """
        expansion_fields = [f for item in items
                            if isinstance(item.expr, ast.FieldExpansion)
                            for f in item.expr.fields]
        expansions = [(e, f) for e, f in computed
                      if f.name in expansion_fields]
        scalars = [(e, f) for e, f in computed
                   if f.name not in expansion_fields]
        out: List[Tuple[Expr, Field]] = []
        si = iter(scalars)
        ei = iter(expansions)
        for item in items:
            if isinstance(item.expr, ast.FieldExpansion):
                for _ in item.expr.fields:
                    out.append(next(ei))
            else:
                out.append(next(si))
        return out

    def _agg_call(self, call: ast.Call, schema: Schema, out_col: str
                  ) -> LAggCall:
        name = call.func.lower()
        if name == "count":
            factory = lambda: Count(count_star=call.star)
        else:
            factory = lambda: self.registry.aggregator(name)
        args = [] if call.star else [self._expr(a, schema) for a in call.args]
        template = factory()
        return LAggCall(name, factory, args,
                        out_fields=[Field(out_col, SQLType.ANY)],
                        composable=getattr(template, "composable", False))

    # -- expressions ---------------------------------------------------------
    def _expr(self, expr: ast.AstExpr, schema: Schema) -> Expr:
        if isinstance(expr, ast.Name):
            if not schema.has(expr.text):
                raise TypeCheckError(f"unknown column {expr.text!r}")
            return ColumnRef(expr.text)
        if isinstance(expr, ast.NumberLit):
            return Literal(expr.value)
        if isinstance(expr, ast.StringLit):
            return Literal(expr.value)
        if isinstance(expr, ast.BoolLit):
            return Literal(expr.value)
        if isinstance(expr, ast.Unary):
            if expr.op == "-":
                return BinaryOp("-", Literal(0), self._expr(expr.operand, schema))
            return BoolOp("not", [self._expr(expr.operand, schema)])
        if isinstance(expr, ast.Binary):
            if expr.op in ("and", "or"):
                return BoolOp(expr.op, [self._expr(expr.left, schema),
                                        self._expr(expr.right, schema)])
            return BinaryOp(expr.op, self._expr(expr.left, schema),
                            self._expr(expr.right, schema))
        if isinstance(expr, ast.Call):
            if self.registry.is_aggregate(expr.func):
                raise TypeCheckError(
                    f"aggregate {expr.func} not allowed in this context")
            fn = self.registry.function(expr.func)
            if fn.input_fields and len(expr.args) != len(fn.input_fields):
                raise TypeCheckError(
                    f"{expr.func} expects {len(fn.input_fields)} arguments, "
                    f"got {len(expr.args)}")
            return FuncCall(fn, [self._expr(a, schema) for a in expr.args])
        raise TypeCheckError(f"unsupported expression {expr!r}")

    def _item_name(self, item: ast.SelectItem, index: int) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expr, ast.Name):
            return item.expr.parts[-1]
        return f"_col{index}"

    def _out_field(self, item: ast.SelectItem, schema: Schema,
                   index: int) -> Field:
        expr = self._expr(item.expr, schema)
        return Field(self._item_name(item, index), expr.output_type(schema))


def compile_query(query: ast.Query, catalog: Catalog,
                  registry: UDFRegistry) -> LNode:
    """Compile a parsed RQL query into a logical plan."""
    return Compiler(catalog, registry).compile(query)
