"""Abstract syntax tree for RQL queries."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple, Union


# -- scalar expressions -----------------------------------------------------

class AstExpr:
    """Base class for scalar/boolean expression nodes."""


@dataclass(frozen=True)
class Name(AstExpr):
    """A (possibly qualified) column or relation reference."""

    parts: Tuple[str, ...]

    @property
    def text(self) -> str:
        return ".".join(self.parts)


@dataclass(frozen=True)
class NumberLit(AstExpr):
    value: Union[int, float]


@dataclass(frozen=True)
class StringLit(AstExpr):
    value: str


@dataclass(frozen=True)
class BoolLit(AstExpr):
    value: Optional[bool]  # None encodes SQL NULL


@dataclass(frozen=True)
class Binary(AstExpr):
    op: str
    left: AstExpr
    right: AstExpr


@dataclass(frozen=True)
class Unary(AstExpr):
    op: str  # '-' or 'NOT'
    operand: AstExpr


@dataclass(frozen=True)
class Call(AstExpr):
    """A function/aggregate/handler invocation, e.g. ``sum(x)`` or
    ``PRAgg(srcId, pr)``.  ``star=True`` encodes ``count(*)``."""

    func: str
    args: Tuple[AstExpr, ...]
    star: bool = False


@dataclass(frozen=True)
class FieldExpansion(AstExpr):
    """The delta/tuple expansion ``call.{a, b}`` of Section 3.5."""

    call: Call
    fields: Tuple[str, ...]


# -- query structure ----------------------------------------------------------

@dataclass(frozen=True)
class SelectItem:
    expr: AstExpr
    alias: Optional[str] = None


@dataclass(frozen=True)
class TableRef:
    """FROM-list entry: a named table/CTE or a nested subquery."""

    name: Optional[str] = None
    subquery: Optional["Select"] = None
    alias: Optional[str] = None

    @property
    def binding(self) -> Optional[str]:
        return self.alias or self.name


@dataclass(frozen=True)
class OrderItem:
    name: Name
    descending: bool = False


@dataclass(frozen=True)
class Select:
    items: Tuple[SelectItem, ...]
    from_: Tuple[TableRef, ...]
    where: Optional[AstExpr] = None
    group_by: Tuple[Name, ...] = ()
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None


@dataclass(frozen=True)
class WithRecursive:
    """``WITH name (cols) AS (base) UNION [ALL] UNTIL FIXPOINT BY key
    (recursive)`` — the paper's recursion construct."""

    name: str
    columns: Tuple[str, ...]
    base: Select
    recursive: Select
    fixpoint_key: str
    union_all: bool


Query = Union[Select, WithRecursive]
