"""Tokenizer for RQL (SQL extended with recursion and delta syntax).

Produces a flat token stream with line/column positions for error
reporting.  Keywords are case-insensitive; identifiers preserve case.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, List, Optional

from repro.common.errors import ParseError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "AS", "AND", "OR", "NOT",
    "WITH", "UNION", "ALL", "UNTIL", "FIXPOINT", "NULL", "TRUE", "FALSE",
    "ORDER", "LIMIT", "ASC", "DESC",
}


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    SYMBOL = "symbol"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: Any
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == word.upper()

    def is_symbol(self, sym: str) -> bool:
        return self.type is TokenType.SYMBOL and self.value == sym

    def __repr__(self):
        return f"Token({self.type.value}, {self.value!r})"


_TWO_CHAR_SYMBOLS = ("<=", ">=", "<>", "!=")
_ONE_CHAR_SYMBOLS = "(),.{}*+-/%=<>;"


def tokenize(text: str) -> List[Token]:
    """Tokenize RQL source; raises :class:`ParseError` on illegal input."""
    tokens: List[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(text)

    def advance(k: int = 1):
        nonlocal i, line, col
        for _ in range(k):
            if i < n and text[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            advance()
            continue
        if text.startswith("--", i):
            while i < n and text[i] != "\n":
                advance()
            continue
        start_line, start_col = line, col
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if word.upper() in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, word.upper(),
                                    start_line, start_col))
            else:
                tokens.append(Token(TokenType.IDENT, word,
                                    start_line, start_col))
            advance(j - i)
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # "1.foo" is a qualified reference, not a float.
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            literal = text[i:j]
            value = float(literal) if "." in literal else int(literal)
            tokens.append(Token(TokenType.NUMBER, value, start_line, start_col))
            advance(j - i)
            continue
        if ch == "'":
            j = i + 1
            buf = []
            while j < n:
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":  # escaped quote
                        buf.append("'")
                        j += 2
                        continue
                    break
                buf.append(text[j])
                j += 1
            if j >= n:
                raise ParseError("unterminated string literal",
                                 start_line, start_col)
            tokens.append(Token(TokenType.STRING, "".join(buf),
                                start_line, start_col))
            advance(j + 1 - i)
            continue
        two = text[i:i + 2]
        if two in _TWO_CHAR_SYMBOLS:
            tokens.append(Token(TokenType.SYMBOL, two, start_line, start_col))
            advance(2)
            continue
        if ch in _ONE_CHAR_SYMBOLS:
            tokens.append(Token(TokenType.SYMBOL, ch, start_line, start_col))
            advance()
            continue
        raise ParseError(f"unexpected character {ch!r}", start_line, start_col)

    tokens.append(Token(TokenType.EOF, None, line, col))
    return tokens
