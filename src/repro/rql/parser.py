"""Recursive-descent parser for RQL."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.common.errors import ParseError
from repro.rql import ast
from repro.rql.lexer import Token, TokenType, tokenize


class Parser:
    """One-token-lookahead recursive descent over the token stream."""

    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token plumbing ---------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def _advance(self) -> Token:
        tok = self.current
        if tok.type is not TokenType.EOF:
            self.pos += 1
        return tok

    def _error(self, message: str) -> ParseError:
        tok = self.current
        return ParseError(f"{message} (got {tok.value!r})", tok.line, tok.column)

    def _expect_keyword(self, word: str) -> Token:
        if not self.current.is_keyword(word):
            raise self._error(f"expected {word}")
        return self._advance()

    def _expect_symbol(self, sym: str) -> Token:
        if not self.current.is_symbol(sym):
            raise self._error(f"expected {sym!r}")
        return self._advance()

    def _expect_ident(self) -> str:
        if self.current.type is not TokenType.IDENT:
            raise self._error("expected identifier")
        return self._advance().value

    def _accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self._advance()
            return True
        return False

    def _accept_symbol(self, sym: str) -> bool:
        if self.current.is_symbol(sym):
            self._advance()
            return True
        return False

    # -- entry points ----------------------------------------------------
    def parse_query(self) -> ast.Query:
        if self.current.is_keyword("WITH"):
            query = self._with_recursive()
        else:
            query = self._select()
        self._accept_symbol(";")
        if self.current.type is not TokenType.EOF:
            raise self._error("trailing input after query")
        return query

    # -- WITH ... UNION UNTIL FIXPOINT ------------------------------------
    def _with_recursive(self) -> ast.WithRecursive:
        self._expect_keyword("WITH")
        name = self._expect_ident()
        # Tolerate the paper's "WITH KM AS (cid, ...)" ordering slip by
        # accepting the column list either before or after AS.
        columns: Tuple[str, ...] = ()
        if self.current.is_symbol("("):
            columns = self._ident_list_parens()
        self._expect_keyword("AS")
        if not columns and self.current.is_symbol("("):
            checkpoint = self.pos
            try:
                columns = self._ident_list_parens()
            except ParseError:
                self.pos = checkpoint
        self._expect_symbol("(")
        base = self._select()
        self._expect_symbol(")")
        self._expect_keyword("UNION")
        union_all = self._accept_keyword("ALL")
        self._expect_keyword("UNTIL")
        self._expect_keyword("FIXPOINT")
        self._expect_keyword("BY")
        fixpoint_key = self._expect_ident()
        self._expect_symbol("(")
        recursive = self._select()
        self._expect_symbol(")")
        return ast.WithRecursive(name=name, columns=columns, base=base,
                                 recursive=recursive,
                                 fixpoint_key=fixpoint_key,
                                 union_all=union_all)

    def _ident_list_parens(self) -> Tuple[str, ...]:
        self._expect_symbol("(")
        names = [self._expect_ident()]
        while self._accept_symbol(","):
            names.append(self._expect_ident())
        self._expect_symbol(")")
        return tuple(names)

    # -- SELECT ------------------------------------------------------------
    def _select(self) -> ast.Select:
        self._expect_keyword("SELECT")
        items = [self._select_item()]
        while self._accept_symbol(","):
            items.append(self._select_item())
        self._expect_keyword("FROM")
        tables = [self._table_ref()]
        while self._accept_symbol(","):
            tables.append(self._table_ref())
        where = None
        if self._accept_keyword("WHERE"):
            where = self._expr()
        group_by: List[ast.Name] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._name())
            while self._accept_symbol(","):
                group_by.append(self._name())
        order_by: List[ast.OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._order_item())
            while self._accept_symbol(","):
                order_by.append(self._order_item())
        limit = None
        if self._accept_keyword("LIMIT"):
            tok = self.current
            if tok.type is not TokenType.NUMBER or not isinstance(tok.value,
                                                                  int):
                raise self._error("LIMIT expects an integer")
            limit = self._advance().value
        return ast.Select(items=tuple(items), from_=tuple(tables),
                          where=where, group_by=tuple(group_by),
                          order_by=tuple(order_by), limit=limit)

    def _order_item(self) -> ast.OrderItem:
        name = self._name()
        descending = False
        if self._accept_keyword("DESC"):
            descending = True
        else:
            self._accept_keyword("ASC")
        return ast.OrderItem(name=name, descending=descending)

    def _select_item(self) -> ast.SelectItem:
        expr = self._expr()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        elif self.current.type is TokenType.IDENT:
            alias = self._advance().value
        return ast.SelectItem(expr=expr, alias=alias)

    def _table_ref(self) -> ast.TableRef:
        if self._accept_symbol("("):
            sub = self._select()
            self._expect_symbol(")")
            alias = None
            if self._accept_keyword("AS"):
                alias = self._expect_ident()
            elif self.current.type is TokenType.IDENT:
                alias = self._advance().value
            return ast.TableRef(subquery=sub, alias=alias)
        name = self._expect_ident()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        elif self.current.type is TokenType.IDENT:
            alias = self._advance().value
        return ast.TableRef(name=name, alias=alias)

    def _name(self) -> ast.Name:
        parts = [self._expect_ident()]
        while self._accept_symbol("."):
            parts.append(self._expect_ident())
        return ast.Name(tuple(parts))

    # -- expressions (precedence climbing) ----------------------------------
    def _expr(self) -> ast.AstExpr:
        return self._or_expr()

    def _or_expr(self) -> ast.AstExpr:
        left = self._and_expr()
        while self._accept_keyword("OR"):
            left = ast.Binary("or", left, self._and_expr())
        return left

    def _and_expr(self) -> ast.AstExpr:
        left = self._not_expr()
        while self._accept_keyword("AND"):
            left = ast.Binary("and", left, self._not_expr())
        return left

    def _not_expr(self) -> ast.AstExpr:
        if self._accept_keyword("NOT"):
            return ast.Unary("NOT", self._not_expr())
        return self._comparison()

    def _comparison(self) -> ast.AstExpr:
        left = self._additive()
        for sym in ("<=", ">=", "<>", "!=", "=", "<", ">"):
            if self.current.is_symbol(sym):
                self._advance()
                return ast.Binary(sym, left, self._additive())
        return left

    def _additive(self) -> ast.AstExpr:
        left = self._multiplicative()
        while True:
            if self._accept_symbol("+"):
                left = ast.Binary("+", left, self._multiplicative())
            elif self._accept_symbol("-"):
                left = ast.Binary("-", left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> ast.AstExpr:
        left = self._unary()
        while True:
            if self._accept_symbol("*"):
                left = ast.Binary("*", left, self._unary())
            elif self._accept_symbol("/"):
                left = ast.Binary("/", left, self._unary())
            elif self._accept_symbol("%"):
                left = ast.Binary("%", left, self._unary())
            else:
                return left

    def _unary(self) -> ast.AstExpr:
        if self._accept_symbol("-"):
            return ast.Unary("-", self._unary())
        return self._primary()

    def _primary(self) -> ast.AstExpr:
        tok = self.current
        if tok.type is TokenType.NUMBER:
            self._advance()
            return ast.NumberLit(tok.value)
        if tok.type is TokenType.STRING:
            self._advance()
            return ast.StringLit(tok.value)
        if tok.is_keyword("NULL"):
            self._advance()
            return ast.BoolLit(None)
        if tok.is_keyword("TRUE"):
            self._advance()
            return ast.BoolLit(True)
        if tok.is_keyword("FALSE"):
            self._advance()
            return ast.BoolLit(False)
        if tok.is_symbol("("):
            self._advance()
            inner = self._expr()
            self._expect_symbol(")")
            return inner
        if tok.type is TokenType.IDENT:
            return self._name_or_call()
        raise self._error("expected expression")

    def _name_or_call(self) -> ast.AstExpr:
        name = self._name()
        if not self.current.is_symbol("("):
            return name
        # A call: func(args) possibly followed by .{a, b}
        self._advance()  # '('
        args: List[ast.AstExpr] = []
        star = False
        if self._accept_symbol("*"):
            star = True
        elif not self.current.is_symbol(")"):
            args.append(self._expr())
            while self._accept_symbol(","):
                args.append(self._expr())
        self._expect_symbol(")")
        call = ast.Call(func=name.text, args=tuple(args), star=star)
        if self.current.is_symbol("."):
            # Only consume the dot if an expansion braces-list follows.
            if (self.pos + 1 < len(self.tokens)
                    and self.tokens[self.pos + 1].is_symbol("{")):
                self._advance()  # '.'
                self._advance()  # '{'
                fields = [self._expect_ident()]
                while self._accept_symbol(","):
                    fields.append(self._expect_ident())
                self._expect_symbol("}")
                return ast.FieldExpansion(call=call, fields=tuple(fields))
        return call


def parse(text: str) -> ast.Query:
    """Parse RQL source text into an AST."""
    return Parser(text).parse_query()
