"""RQL: the paper's SQL dialect with recursion and programmable deltas."""

from repro.rql.api import RQLSession
from repro.rql.compiler import compile_query
from repro.rql.parser import parse

__all__ = ["RQLSession", "parse", "compile_query"]
