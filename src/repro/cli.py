"""Command-line interface: run RQL queries against CSV files.

Example::

    python -m repro.cli \\
        --table graph=edges.csv --key graph=srcId \\
        --nodes 4 \\
        "SELECT srcId, count(*) FROM graph GROUP BY srcId"

CSV headers name the columns; a header entry may carry an explicit type
(``srcId:Integer``), otherwise the type is inferred from the first data
row (int -> Integer, float -> Double, else Varchar).  ``--explain`` prints
the optimized plan instead of executing.

Five subcommands wrap the analysis and observability subsystems:

    python -m repro.cli analyze --table graph=edges.csv "SELECT ..."
    python -m repro.cli lint src [--format json]
    python -m repro.cli check --workload pagerank --perturbations 3
    python -m repro.cli telemetry --workload pagerank [--format json]
    python -m repro.cli flight flight-*.json [--format json]

``analyze`` prints the plan diagnostics without executing (exit 1 when
any are error-level); ``lint`` runs the simulator-invariant linter over
source trees; ``check`` runs the determinism checker — the same built-in
workload executed under K seeded schedule perturbations, diffed for
result races (REX205/REX206, exit 1 on a race); ``telemetry`` runs a
built-in workload with live telemetry attached and exports the metrics
registry (OpenMetrics text or JSON); ``flight`` summarizes flight-recorder
post-mortem bundles.  Plain query runs refuse plans with error-level
diagnostics unless ``--force`` is given (the bypassed report is still
printed to stderr and attached to the trace), ``--sanitize=sample|full``
turns on the runtime delta sanitizer (REX200-REX204, exit 1 on
violations), ``--columnar`` runs stateless chains on the column-major
block backend (same simulated metrics, different physical layout),
``--telemetry FILE`` exports the run's metrics registry, and
``--flight-dir DIR`` names where post-mortem bundles land.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from typing import Any, List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.common.errors import ReproError
from repro.obs import (JsonlSink, ObsContext, RingBufferSink, Tracer,
                       chrome_trace, explain_analyze)
from repro.rql.api import RQLSession
from repro.runtime.executor import ExecOptions


def _parse_value(text: str) -> Any:
    if text == "":
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def _infer_type(value: Any) -> str:
    if isinstance(value, int):
        return "Integer"
    if isinstance(value, float):
        return "Double"
    return "Varchar"


def load_csv(path: str) -> Tuple[List[str], List[tuple]]:
    """Read a CSV file into (schema specs, rows)."""
    with open(path, newline="") as f:
        reader = csv.reader(f)
        try:
            header = next(reader)
        except StopIteration:
            raise ReproError(f"{path}: empty CSV file") from None
        raw_rows = [tuple(_parse_value(cell) for cell in row)
                    for row in reader if row]
    specs: List[str] = []
    for i, column in enumerate(header):
        column = column.strip()
        if ":" in column:
            specs.append(column)
        else:
            sample = next((r[i] for r in raw_rows if i < len(r)
                           and r[i] is not None), "")
            specs.append(f"{column}:{_infer_type(sample)}")
    # Integer columns may need float coercion for Double declarations.
    return specs, raw_rows


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="Run RQL queries on CSV data over a simulated cluster.")
    parser.add_argument("query", help="RQL query text (or @file to read "
                                      "the query from a file)")
    parser.add_argument("--table", action="append", default=[],
                        metavar="NAME=FILE.csv",
                        help="load a CSV file as a table (repeatable)")
    parser.add_argument("--key", action="append", default=[],
                        metavar="NAME=COLUMN",
                        help="partition a table by a column (repeatable)")
    parser.add_argument("--nodes", type=int, default=4,
                        help="number of simulated worker nodes (default 4)")
    parser.add_argument("--replication", type=int, default=1,
                        help="storage replication factor (default 1)")
    parser.add_argument("--max-strata", type=int, default=200,
                        help="recursion bound (default 200)")
    parser.add_argument("--explain", action="store_true",
                        help="print the optimized plan instead of running")
    parser.add_argument("--metrics", action="store_true",
                        help="print simulated runtime metrics")
    parser.add_argument("--limit", type=int, default=None,
                        help="print at most N result rows")
    parser.add_argument("--trace", metavar="FILE.jsonl", default=None,
                        help="write structured trace events as JSON lines")
    parser.add_argument("--trace-chrome", metavar="FILE.json", default=None,
                        help="write a Chrome trace-event / Perfetto JSON "
                             "file (load at ui.perfetto.dev)")
    parser.add_argument("--analyze", action="store_true",
                        help="print an EXPLAIN ANALYZE report (per-operator "
                             "cost table and per-stratum timeline) after "
                             "the query runs")
    parser.add_argument("--force", action="store_true",
                        help="execute even if static analysis reports "
                             "error-level diagnostics")
    parser.add_argument("--sanitize", choices=("off", "sample", "full"),
                        default="off",
                        help="runtime delta sanitizer level (REX200-REX204; "
                             "default off)")
    parser.add_argument("--sanitize-seed", type=int, default=0,
                        help="seed for the sanitizer's sampling (default 0)")
    parser.add_argument("--columnar", action="store_true",
                        help="run stateless chains on the column-major "
                             "block backend (simulated metrics are "
                             "bit-identical to the row path by contract)")
    parser.add_argument("--telemetry", metavar="FILE", default=None,
                        help="export the run's metrics registry: OpenMetrics"
                             " text ('-' for stdout; a .json suffix switches"
                             " to a JSON snapshot)")
    parser.add_argument("--flight-dir", metavar="DIR", default=None,
                        help="directory for flight-recorder post-mortem "
                             "bundles (default: $REX_FLIGHT_DIR; with "
                             "neither set, bundles stay in memory)")
    return parser


def build_analyze_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli analyze",
        description="Statically analyze a query plan without executing it.")
    parser.add_argument("query", help="RQL query text (or @file)")
    parser.add_argument("--table", action="append", default=[],
                        metavar="NAME=FILE.csv",
                        help="load a CSV file as a table (repeatable)")
    parser.add_argument("--key", action="append", default=[],
                        metavar="NAME=COLUMN",
                        help="partition a table by a column (repeatable)")
    parser.add_argument("--nodes", type=int, default=4,
                        help="number of simulated worker nodes (default 4)")
    parser.add_argument("--no-optimize", action="store_true",
                        help="analyze the raw compiler output (exchanges "
                             "are added as the lowering would)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="output format")
    return parser


def build_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli lint",
        description="Run the simulator-invariant linter (REX1xx codes).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="output format")
    return parser


def build_check_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli check",
        description="Determinism check: run a built-in workload under "
                    "seeded schedule perturbations and diff the results "
                    "(REX205/REX206).")
    parser.add_argument("--workload", choices=BUILTIN_WORKLOADS,
                        default="pagerank",
                        help="built-in workload (fig06 is PageRank on the "
                             "DBpedia-like generator, the Figure 6 plan)")
    parser.add_argument("--perturbations", type=int, default=3,
                        help="number of perturbed runs (default 3)")
    parser.add_argument("--seed", type=int, default=0,
                        help="perturbation seed family (default 0)")
    parser.add_argument("--nodes", type=int, default=4,
                        help="simulated worker nodes (default 4)")
    parser.add_argument("--scale", type=int, default=200,
                        help="vertices (graphs) or points (kmeans); "
                             "default 200")
    parser.add_argument("--data-seed", type=int, default=7,
                        help="synthetic dataset seed (default 7)")
    parser.add_argument("--no-minimize", action="store_true",
                        help="skip per-exchange race minimization")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="output format")
    return parser


#: Workload names accepted by ``check`` and ``telemetry``.
BUILTIN_WORKLOADS = ("pagerank", "fig06", "sssp", "kmeans")


def _builtin_plan(workload: str, cluster: Cluster, scale: int,
                  data_seed: int):
    """Create a built-in workload's tables on ``cluster``; returns
    ``(plan, max_strata)`` — shared by the ``check`` and ``telemetry``
    subcommands (fig06 is PageRank on the DBpedia-like generator, the
    Figure 6 plan)."""
    from repro.algorithms.kmeans import kmeans_plan
    from repro.algorithms.pagerank import pagerank_plan
    from repro.algorithms.sssp import make_start_table, sssp_plan
    from repro.datasets import dbpedia_like, geo_points, sample_centroids

    if workload in ("pagerank", "fig06"):
        edges = dbpedia_like(scale, avg_out_degree=4.0, seed=data_seed)
        cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                             edges, "srcId")
        return pagerank_plan(mode="delta", tol=0.01), 60
    if workload == "sssp":
        edges = dbpedia_like(scale, avg_out_degree=4.0, seed=data_seed)
        cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                             edges, "srcId")
        make_start_table(cluster, edges[0][0] if edges else 0)
        return sssp_plan(), 200
    points = geo_points(scale, n_clusters=4, seed=data_seed)
    centroids = sample_centroids(points, 4, seed=data_seed + 1)
    cluster.create_table("points", ["pid:Integer", "x:Double", "y:Double"],
                         points, "pid")
    cluster.create_table("centroids0",
                         ["cid:Integer", "x:Double", "y:Double"],
                         centroids, "cid")
    return kmeans_plan(), 120


def main_check(argv: List[str]) -> int:
    from repro.analysis.determinism import check_determinism
    from repro.runtime.executor import QueryExecutor

    args = build_check_parser().parse_args(argv)
    if args.perturbations < 1:
        print("error: --perturbations must be >= 1", file=sys.stderr)
        return 2

    # Each run builds a fresh cluster: perturbed schedules must not see
    # state left behind by the baseline.
    def run_query(perturb):
        cluster = Cluster(args.nodes)
        plan, max_strata = _builtin_plan(args.workload, cluster,
                                         args.scale, args.data_seed)
        opts = ExecOptions(perturb=perturb, max_strata=max_strata)
        return QueryExecutor(cluster, opts).execute(plan)

    outcome = check_determinism(run_query,
                                perturbations=args.perturbations,
                                seed=args.seed,
                                minimize=not args.no_minimize)
    if args.format == "json":
        print(json.dumps(outcome.to_json(), indent=2))
    else:
        print(f"{args.workload}: {outcome.runs} perturbed run(s), "
              f"{'RACES FOUND' if outcome.has_races else 'deterministic'}")
        if outcome.suspects:
            print("suspect exchange(s): " + ", ".join(outcome.suspects))
        print(outcome.report.format())
        if outcome.flight_path:
            print(f"flight bundle written: {outcome.flight_path}")
    return 1 if outcome.has_races else 0


def build_telemetry_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli telemetry",
        description="Run a built-in workload with live telemetry attached "
                    "and export the metrics registry (OpenMetrics text "
                    "exposition or a JSON snapshot).")
    parser.add_argument("--workload", choices=BUILTIN_WORKLOADS,
                        default="pagerank",
                        help="built-in workload (default pagerank)")
    parser.add_argument("--nodes", type=int, default=4,
                        help="simulated worker nodes (default 4)")
    parser.add_argument("--scale", type=int, default=200,
                        help="vertices (graphs) or points (kmeans); "
                             "default 200")
    parser.add_argument("--data-seed", type=int, default=7,
                        help="synthetic dataset seed (default 7)")
    parser.add_argument("--interval", type=float, default=None,
                        help="simulated seconds between clock-grid samples "
                             "(default 0.25)")
    parser.add_argument("--prefix", default="",
                        help="export only metrics under this dotted prefix "
                             "(e.g. 'telemetry.'; default: everything)")
    parser.add_argument("--format", choices=("openmetrics", "json"),
                        default="openmetrics", help="output format")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="write to FILE instead of stdout")
    parser.add_argument("--analyze", action="store_true",
                        help="also print EXPLAIN ANALYZE (with the "
                             "telemetry sparklines) to stderr")
    return parser


def main_telemetry(argv: List[str]) -> int:
    from repro.obs.export import openmetrics, registry_json
    from repro.obs.timeseries import DEFAULT_INTERVAL
    from repro.runtime.executor import QueryExecutor

    args = build_telemetry_parser().parse_args(argv)
    cluster = Cluster(args.nodes)
    plan, max_strata = _builtin_plan(args.workload, cluster, args.scale,
                                     args.data_seed)
    interval = (args.interval if args.interval is not None
                else DEFAULT_INTERVAL)
    obs = ObsContext(telemetry_interval=interval)
    options = ExecOptions(max_strata=max_strata, obs=obs)
    try:
        result = QueryExecutor(cluster, options).execute(plan)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        obs.close()
    if args.format == "json":
        text = registry_json(obs.registry, args.prefix)
        if not text.endswith("\n"):
            text += "\n"
    else:
        text = openmetrics(obs.registry, args.prefix)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)
    if args.analyze:
        print(explain_analyze(obs, result.metrics), file=sys.stderr)
    return 0


def build_flight_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli flight",
        description="Inspect flight-recorder post-mortem bundles written "
                    "on a crash, sanitizer trip, or determinism race.")
    parser.add_argument("bundles", nargs="+", metavar="BUNDLE.json",
                        help="bundle file(s) to summarize")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="output format")
    parser.add_argument("--events", type=int, default=8,
                        help="breadcrumb notes shown per bundle in text "
                             "mode (default 8)")
    return parser


def main_flight(argv: List[str]) -> int:
    from repro.obs.flight import format_summary, load_bundle, summarize

    args = build_flight_parser().parse_args(argv)
    summaries = []
    status = 0
    for path in args.bundles:
        try:
            doc = load_bundle(path)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            status = 2
            continue
        if args.format == "json":
            summaries.append({"path": path, **summarize(doc)})
        else:
            if summaries:
                print()
            summaries.append(path)
            print(f"{path}:")
            print(format_summary(doc, events=args.events))
    if args.format == "json":
        print(json.dumps(summaries, indent=2, default=str))
    return status


def _build_cluster(args) -> Optional[Cluster]:
    """Shared --table/--key loading; returns None after printing usage."""
    keys = {}
    for spec in args.key:
        name, _, column = spec.partition("=")
        keys[name] = column
    cluster = Cluster(args.nodes)
    for spec in args.table:
        name, _, path = spec.partition("=")
        if not path:
            print(f"error: --table expects NAME=FILE.csv, got {spec!r}",
                  file=sys.stderr)
            return None
        schema, rows = load_csv(path)
        cluster.create_table(name, schema, rows,
                             partition_key=keys.get(name),
                             replication=getattr(args, "replication", 1))
    return cluster


def _read_query(query: str) -> str:
    if query.startswith("@"):
        with open(query[1:]) as f:
            return f.read()
    return query


def main_analyze(argv: List[str]) -> int:
    from repro.analysis.absint import properties_report
    from repro.analysis.diagnostics import to_sarif
    from repro.analysis.lineage import lineage_report
    from repro.optimizer.exchanges import add_exchanges
    from repro.optimizer.fusion import fusion_report
    from repro.optimizer.physical import lower
    from repro.optimizer.rewrite import rewrite_report

    args = build_analyze_parser().parse_args(argv)
    cluster = _build_cluster(args)
    if cluster is None:
        return 2
    session = RQLSession(cluster, optimize=not args.no_optimize)
    query = _read_query(args.query)
    try:
        report = session.analyze(query)
        # The fusion and abstract-interpretation passes run on the lowered
        # physical plan; surface their per-chain / per-node verdicts
        # alongside the diagnostics so the report shows what the executor
        # will actually collapse and fast-path.
        node = session.logical_plan(query)
        if not session.optimize:
            node = add_exchanges(node)
        physical_root = lower(node).root
        fusion = fusion_report(physical_root)
        properties = properties_report(physical_root)
        table_arity = {name: len(cluster.catalog.get(name).schema.fields)
                       for name in cluster.catalog.names()}
        lineage = lineage_report(physical_root, table_arity=table_arity)
        rewrites = rewrite_report(physical_root, table_arity=table_arity)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        payload = json.loads(report.to_json())
        payload["fusion"] = fusion
        payload["properties"] = properties
        payload["lineage"] = lineage
        payload["rewrites"] = rewrites
        print(json.dumps(payload, indent=2))
    elif args.format == "sarif":
        print(to_sarif(report, tool_name="repro-analyze"))
    else:
        print(report.format())
        if properties:
            print()
            print("inferred properties (physical plan)")
            for p in properties:
                notes = [f"Δ={p['polarity']}" + ("" if p["exact"] else "?")]
                if "monotone" in p:
                    notes.append("monotone" if p["monotone"]
                                 else "non-monotone")
                if "key_preserving" in p and not p["key_preserving"]:
                    notes.append("key-destroying")
                if "dead_kinds" in p:
                    notes.append("dead={" + ",".join(p["dead_kinds"]) + "}")
                print(f"  {p['path']}: " + " ".join(notes))
        if lineage:
            print()
            print("column lineage (physical plan)")
            for n in lineage:
                live = ("all?" if not n["live_exact"]
                        else "{" + ",".join(map(str, n["live"])) + "}")
                width = f"/{n['out_arity']}" if "out_arity" in n else ""
                print(f"  {n['path']}: live={live}{width}")
        if rewrites:
            print()
            print("rewrite decisions (physical plan)")
            for d in rewrites:
                verdict = "applied" if d["applied"] else "declined"
                print(f"  {d['path']}: {d['kind']} {verdict} — "
                      f"{d['reason']}")
        if fusion:
            print()
            print("fusion decisions (physical plan)")
            for d in fusion:
                verdict = d["label"] if d["fused"] else "not fused"
                print(f"  {d['path']}: {verdict} — {d['reason']}")
    return 1 if report.has_errors() else 0


def main_lint(argv: List[str]) -> int:
    from repro.analysis.diagnostics import to_sarif
    from repro.analysis.lint import lint_paths

    args = build_lint_parser().parse_args(argv)
    report = lint_paths(args.paths or ["src"])
    if args.format == "json":
        print(report.to_json(indent=2))
    elif args.format == "sarif":
        print(to_sarif(report, tool_name="repro-lint"))
    else:
        print(report.format())
    return 1 if report else 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "analyze":
        return main_analyze(argv[1:])
    if argv and argv[0] == "lint":
        return main_lint(argv[1:])
    if argv and argv[0] == "check":
        return main_check(argv[1:])
    if argv and argv[0] == "telemetry":
        return main_telemetry(argv[1:])
    if argv and argv[0] == "flight":
        return main_flight(argv[1:])

    args = build_parser().parse_args(argv)
    query = _read_query(args.query)

    cluster = _build_cluster(args)
    if cluster is None:
        return 2

    session = RQLSession(cluster)
    obs = None
    if args.trace or args.trace_chrome or args.analyze or args.telemetry:
        sinks = [RingBufferSink()]
        if args.trace:
            sinks.append(JsonlSink(args.trace))
        obs = ObsContext(tracer=Tracer(sinks=sinks))
    try:
        if args.explain:
            print(session.explain(query, with_estimates=True,
                                  with_diagnostics=True))
            return 0
        options = ExecOptions(max_strata=args.max_strata, obs=obs,
                              sanitize=args.sanitize,
                              sanitize_seed=args.sanitize_seed,
                              columnar=args.columnar,
                              flight_dir=args.flight_dir)
        result = session.execute(query, options, check=not args.force)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        flight_path = getattr(exc, "rex_flight_path", None)
        if flight_path:
            print(f"flight bundle written: {flight_path}", file=sys.stderr)
        return 1
    finally:
        if obs is not None:
            obs.close()  # flush the JSONL sink even on error

    suppressed = result.suppressed_diagnostics
    if suppressed is not None and suppressed:
        print("-- static analysis bypassed by --force --", file=sys.stderr)
        print(suppressed.format(), file=sys.stderr)

    rows = result.rows
    shown = rows if args.limit is None else rows[:args.limit]
    for row in shown:
        print("\t".join("" if v is None else str(v) for v in row))
    if args.limit is not None and len(rows) > args.limit:
        print(f"... ({len(rows) - args.limit} more rows)", file=sys.stderr)
    if args.metrics:
        m = result.metrics
        print(f"-- {len(rows)} rows, {m.num_iterations} iterations, "
              f"{m.total_seconds():.4f}s simulated, "
              f"{m.total_bytes()} bytes shuffled", file=sys.stderr)
    if obs is not None:
        if args.telemetry:
            from repro.obs.export import openmetrics, registry_json
            text = (registry_json(obs.registry) + "\n"
                    if args.telemetry.endswith(".json")
                    else openmetrics(obs.registry))
            if args.telemetry == "-":
                sys.stdout.write(text)
            else:
                with open(args.telemetry, "w") as fh:
                    fh.write(text)
        if args.trace_chrome:
            with open(args.trace_chrome, "w") as fh:
                json.dump(chrome_trace(obs.tracer.events()), fh)
        if args.analyze:
            from repro.analysis.absint import properties_report
            from repro.analysis.lineage import lineage_report
            try:
                diagnostics = session.analyze(query)
                properties = properties_report(
                    session.logical_plan(query))
                lineage = lineage_report(session.logical_plan(query))
            except ReproError:
                diagnostics = None
                properties = None
                lineage = None
            print(file=sys.stderr)
            print(explain_analyze(obs, result.metrics,
                                  diagnostics=diagnostics,
                                  properties=properties,
                                  lineage=lineage), file=sys.stderr)
    sanitizer = result.sanitizer
    if sanitizer is not None:
        print(f"-- sanitizer ({sanitizer.level}): {sanitizer.checks} "
              f"checks, {sanitizer.violations} violation(s) --",
              file=sys.stderr)
        if sanitizer.report:
            print(sanitizer.report.format(), file=sys.stderr)
        if sanitizer.report.has_errors():
            flight = result.flight
            if flight is not None and flight.last_path:
                print(f"flight bundle written: {flight.last_path}",
                      file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
