"""AST-based effect extraction for UDFs, predicates, and delta handlers.

The lineage analysis (:mod:`repro.analysis.lineage`) and the REX107 lint
rule both need to know, for a black-box Python callable, *which row
attributes it reads* — ``row[0]``, ``delta.row[2]``, a tuple-unpacking
``v, p, d = delta.row`` — and whether that knowledge is exact or had to
be widened because the row escaped whole (aliased, passed to a call,
returned, or indexed by a non-constant).

Soundness contract: an :class:`EffectSummary` with ``exact=True`` is a
proof — the callable reads **only** the listed positions.  Anything the
extractor cannot follow widens to ``exact=False`` and no verdict or
rewrite may be built on the (then meaningless) ``reads`` set.  Callables
whose source is unavailable (C builtins, ``functools.partial``,
``operator.itemgetter``) come back ``opaque=True``.

Purity here means "safe to re-evaluate in a different plan position":
no writes to nonlocal/global state, no calls outside a small whitelist
of value-level builtins.  It deliberately ignores allocation and
exceptions — re-ordering a predicate that may raise changes *which* row
raises first, but the engine treats predicate exceptions as query
failure either way.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Sequence, Set, Tuple

#: Calls considered pure value-level computation (re-evaluation safe).
_PURE_CALLS = frozenset({
    "abs", "min", "max", "len", "round", "int", "float", "bool", "str",
    "tuple", "frozenset", "sorted", "sum", "divmod", "pow", "hash",
})

#: Attribute accesses on these bases are pure math (``math.sqrt`` ...).
_PURE_MODULES = frozenset({"math"})


@dataclass(frozen=True)
class EffectSummary:
    """What one callable does to its row argument.

    ``reads`` — constant positions read off the row parameter.  Only a
    proof when ``exact`` is True; when False the callable let the row
    escape (or indexed it dynamically) and may read anything.
    ``out_arity`` — number of columns produced when the body is a single
    tuple-literal return, else None.
    ``passthrough`` — output position -> input position for outputs that
    are bare ``row[i]`` references (identity column moves); only
    populated when ``out_arity`` is known.
    ``pure`` — safe to re-evaluate at a different plan position.
    ``opaque`` — no source was retrievable at all; everything above is
    the widened default.
    """

    reads: FrozenSet[int] = frozenset()
    exact: bool = False
    out_arity: Optional[int] = None
    passthrough: Dict[int, int] = field(default_factory=dict)
    pure: bool = False
    opaque: bool = True

    def proves_reads(self) -> bool:
        """True when ``reads`` is a sound upper bound on what is read."""
        return self.exact and not self.opaque


#: The widened "don't know anything" summary.
OPAQUE = EffectSummary()


def _source_tree(fn) -> Optional[ast.AST]:
    """Parse ``fn``'s source, or None when it is not retrievable."""
    try:
        src = inspect.getsource(fn)
    except (OSError, TypeError):
        return None
    try:
        return ast.parse(textwrap.dedent(src))
    except SyntaxError:
        # A lambda sliced mid-expression by getsource (e.g. defined
        # inside a call argument list): retry by scanning for the first
        # parsable lambda inside the line.
        return _reparse_lambda(src)


def _reparse_lambda(src: str) -> Optional[ast.AST]:
    text = textwrap.dedent(src).strip().rstrip(",)")
    start = text.find("lambda")
    while start >= 0:
        for end in range(len(text), start, -1):
            try:
                tree = ast.parse(text[start:end].rstrip(",)"), mode="eval")
            except SyntaxError:
                continue
            if isinstance(tree.body, ast.Lambda):
                return tree
            break
        start = text.find("lambda", start + 1)
    return None


def _callable_def(fn, tree: ast.AST):
    """The FunctionDef / Lambda node matching ``fn`` inside its source."""
    name = getattr(fn, "__name__", None)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name == name:
                return node
        elif isinstance(node, ast.Lambda) and name == "<lambda>":
            return node
    # Fallback: any single lambda in the parsed fragment.
    lambdas = [n for n in ast.walk(tree) if isinstance(n, ast.Lambda)]
    if len(lambdas) == 1:
        return lambdas[0]
    return None


def _param_names(node) -> Sequence[str]:
    args = node.args
    return [a.arg for a in args.posonlyargs + args.args]


class _RowReads(ast.NodeVisitor):
    """Collect constant-subscript reads of a set of row expressions.

    A *row expression* is either a bare parameter name (``row``) or an
    attribute path rooted at a parameter (``delta.row``); ``paths`` maps
    the dotted string form to True.  Any other use of a row expression —
    aliasing, call argument, return of the whole row, non-constant
    subscript — marks the summary inexact.
    """

    def __init__(self, paths: Set[str]):
        self.paths = paths
        self.reads: Set[int] = set()
        self.exact = True
        self.pure = True
        self._unpack_targets: Dict[str, int] = {}

    # -- row expression matching ----------------------------------------
    def _row_path(self, node: ast.expr) -> Optional[str]:
        parts = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            dotted = ".".join(reversed(parts))
            if dotted in self.paths:
                return dotted
        return None

    # -- reads -----------------------------------------------------------
    def visit_Subscript(self, node: ast.Subscript) -> None:
        if self._row_path(node.value) is not None:
            index = node.slice
            if isinstance(index, ast.Constant) and isinstance(
                    index.value, int) and index.value >= 0:
                self.reads.add(index.value)
                # Don't descend into node.value: the bare row reference
                # under a constant subscript is a read, not an escape.
                self.visit(index)
                return
            if isinstance(index, ast.Slice):
                # row[:k] style — reads an unknown prefix; treat as
                # reading everything (inexact) since the bound may be
                # dynamic, unless all bounds are constants.
                lo = getattr(index.lower, "value", 0) or 0
                hi = getattr(index.upper, "value", None)
                if (index.step is None and isinstance(lo, int)
                        and isinstance(hi, int) and hi >= lo >= 0):
                    self.reads.update(range(lo, hi))
                    return
            self.exact = False
            return
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        # Tuple unpacking ``v, p, d = delta.row`` reads positions 0..n-1.
        if (len(node.targets) == 1
                and isinstance(node.targets[0], (ast.Tuple, ast.List))
                and self._row_path(node.value) is not None):
            elts = node.targets[0].elts
            if all(isinstance(e, ast.Name) for e in elts):
                self.reads.update(range(len(elts)))
                for i, e in enumerate(elts):
                    self._unpack_targets[e.id] = i
                return
            self.exact = False
            return
        # Assigning the whole row anywhere else is an escape.
        if self._row_path(node.value) is not None:
            self.exact = False
        for target in node.targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                self.pure = False
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, (ast.Attribute, ast.Subscript)):
            self.pure = False
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        # A bare row reference surviving to here (not consumed by a
        # constant subscript or a recognized unpack) escaped.
        if isinstance(node.ctx, ast.Load) and node.id in self.paths:
            self.exact = False
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (isinstance(node.ctx, ast.Load)
                and self._row_path(node) is not None):
            self.exact = False
            return
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            if (isinstance(func.value, ast.Name)
                    and func.value.id in _PURE_MODULES):
                name = f"{func.value.id}.{func.attr}"
            else:
                name = func.attr
        if name is not None and name not in _PURE_CALLS \
                and "." not in name:
            self.pure = False
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        self.pure = False

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self.pure = False


def _tuple_return(node) -> Optional[ast.expr]:
    """The single returned expression of a def/lambda body, if any."""
    if isinstance(node, ast.Lambda):
        return node.body
    returns = [n for n in node.body if isinstance(n, ast.Return)]
    if len(returns) == 1 and returns[0] is node.body[-1] \
            and returns[0].value is not None:
        return returns[0].value
    return None


def _output_shape(body: Optional[ast.expr],
                  paths: Set[str]) -> Tuple[Optional[int], Dict[int, int]]:
    """(out_arity, passthrough) for a tuple-literal return expression."""
    if not isinstance(body, (ast.Tuple, ast.List)):
        return None, {}
    passthrough: Dict[int, int] = {}
    for out_pos, elt in enumerate(body.elts):
        if (isinstance(elt, ast.Subscript)
                and isinstance(elt.slice, ast.Constant)
                and isinstance(elt.slice.value, int)):
            value = elt.value
            parts = []
            while isinstance(value, ast.Attribute):
                parts.append(value.attr)
                value = value.value
            if isinstance(value, ast.Name):
                parts.append(value.id)
                if ".".join(reversed(parts)) in paths:
                    passthrough[out_pos] = elt.slice.value
    return len(body.elts), passthrough


def extract_effects(fn, row_param: int = 0,
                    row_attrs: Sequence[str] = ("row",)) -> EffectSummary:
    """Effect summary for a row-level callable.

    ``row_param`` picks which positional parameter carries the row.  When
    the parameter is a record (a :class:`~repro.common.deltas.Delta`),
    ``row_attrs`` lists the attribute names under which the row tuple
    hides (``delta.row`` and, for REPLACE deltas, ``delta.old``); for a
    plain row parameter the bare name itself is the row expression.
    """
    fn = inspect.unwrap(fn)
    tree = _source_tree(fn)
    if tree is None:
        return OPAQUE
    node = _callable_def(fn, tree)
    if node is None:
        return OPAQUE
    params = _param_names(node)
    # Methods: drop the self/cls slot so row_param counts real arguments.
    if params and params[0] in ("self", "cls") \
            and not isinstance(node, ast.Lambda):
        params = params[1:]
    if row_param >= len(params):
        return OPAQUE
    base = params[row_param]
    paths = {base} | {f"{base}.{attr}" for attr in row_attrs}
    visitor = _RowReads(paths)
    body_nodes = node.body if isinstance(node.body, list) else [node.body]
    for stmt in body_nodes:
        visitor.visit(stmt)
    out_arity, passthrough = _output_shape(_tuple_return(node), paths)
    return EffectSummary(
        reads=frozenset(visitor.reads),
        exact=visitor.exact,
        out_arity=out_arity,
        passthrough=passthrough,
        pure=visitor.pure,
        opaque=False,
    )


def extract_handler_effects(handler_cls,
                            method: str = "update") -> EffectSummary:
    """Effect summary for a delta handler's ``update`` method.

    Handlers receive the delta as a named parameter; the row tuple hides
    under ``delta.row`` / ``delta.old``.  The delta parameter is found by
    name (``delta``) rather than position because the two handler
    protocols place it differently (:class:`JoinDeltaHandler.update`
    takes ``(left_bucket, right_bucket, delta, side)``,
    :class:`WhileDeltaHandler.update` takes ``(while_relation, delta)``).
    """
    fn = getattr(handler_cls, method, None)
    if fn is None:
        return OPAQUE
    fn = inspect.unwrap(fn)
    tree = _source_tree(fn)
    if tree is None:
        return OPAQUE
    node = _callable_def(fn, tree)
    if node is None:
        return OPAQUE
    params = _param_names(node)
    if "delta" not in params:
        return OPAQUE
    paths = {"delta.row", "delta.old"}
    visitor = _RowReads(paths)
    for stmt in node.body:
        visitor.visit(stmt)
    return EffectSummary(
        reads=frozenset(visitor.reads),
        exact=visitor.exact,
        out_arity=None,
        passthrough={},
        pure=visitor.pure,
        opaque=False,
    )


def declared_reads(obj) -> Optional[FrozenSet[int]]:
    """The ``reads=`` declaration on a UDF/handler/aggregator, if any."""
    declared = getattr(obj, "reads", None)
    if declared is None:
        return None
    try:
        return frozenset(int(i) for i in declared)
    except (TypeError, ValueError):
        return None


def check_declaration(obj, summary: EffectSummary
                      ) -> Tuple[FrozenSet[int], FrozenSet[int]]:
    """Cross-check a ``reads=`` declaration against extracted effects.

    Returns ``(undeclared, overdeclared)``: positions the body reads but
    the declaration omits (REX401 — only meaningful when the extraction
    is exact-or-wider... the extraction need not be exact for this
    direction, since every extracted read is a real read), and declared
    positions the body provably never reads (REX402 — requires an exact
    extraction, else silence).
    """
    declared = declared_reads(obj)
    if declared is None or summary.opaque:
        return frozenset(), frozenset()
    undeclared = summary.reads - declared
    overdeclared = (declared - summary.reads) if summary.exact \
        else frozenset()
    return frozenset(undeclared), frozenset(overdeclared)
