"""Analyzer entry points: run every rule pass over a plan.

``analyze`` dispatches on the plan kind — logical trees get the full
rule set (stratification, termination, pre-aggregation, partitioning,
delta soundness, schemas); physical plans get the structural subset.

``exchanges_placed`` tells the partitioning pass whether the tree it
sees is final: trees that already went through the optimizer's exchange
placement (or that a user hand-annotated) must satisfy co-location
as-is, so violations are errors; raw compiler output will still have
exchanges inserted by the lowering, so there the same findings are
advisory (INFO).
"""

from __future__ import annotations

from typing import Union

from repro.analysis.absint import check_polarity
from repro.analysis.diagnostics import DiagnosticReport, Severity
from repro.analysis.lineage import check_lineage
from repro.analysis.physical import PHYSICAL_PASSES
from repro.analysis.rules import LOGICAL_PASSES, check_partitioning
from repro.optimizer.logical import LNode
from repro.runtime.plan import PhysicalPlan, PNode


def analyze_logical(root: LNode, *,
                    exchanges_placed: bool = True) -> DiagnosticReport:
    """Run all logical rule passes; returns the combined report."""
    report = DiagnosticReport()
    for rule in LOGICAL_PASSES:
        rule(root, report.add)
    missing = Severity.ERROR if exchanges_placed else Severity.INFO
    check_partitioning(root, report.add, missing_severity=missing)
    check_polarity(root, report.add)
    check_lineage(root, report.add)
    return report


def analyze_physical(plan: Union[PhysicalPlan, PNode]) -> DiagnosticReport:
    """Run the structural passes over a physical plan (or bare tree)."""
    root = plan.root if isinstance(plan, PhysicalPlan) else plan
    report = DiagnosticReport()
    for rule in PHYSICAL_PASSES:
        rule(root, report.add)
    check_polarity(root, report.add)
    check_lineage(root, report.add)
    return report


def analyze(plan: Union[LNode, PhysicalPlan, PNode], *,
            exchanges_placed: bool = True) -> DiagnosticReport:
    """Analyze a logical tree, physical plan, or bare physical tree."""
    if isinstance(plan, LNode):
        return analyze_logical(plan, exchanges_placed=exchanges_placed)
    return analyze_physical(plan)
