"""Column-lineage & UDF-effect analysis (REX400-407).

Where :mod:`repro.analysis.absint` abstracts *which delta kinds* flow
along each plan edge, this pass abstracts *which columns* do.  Two
directions compose:

* **arity inference** (bottom-up) — how many columns each node's output
  rows carry.  Scans take their width from the catalog (when the caller
  supplies a ``table_arity`` map), projections from their row function's
  tuple-literal return, handler joins from the handler's declared
  ``out_types``; anything else is widened to "unknown".
* **demand propagation** (top-down) — which output positions are *live*,
  i.e. read by at least one downstream consumer.  The query result
  demands every column; a Project demands exactly its row function's
  read-set; a GroupBy demands its key function's and aggregate
  arguments' read-sets; a handler join widens both inputs (bucket
  contents escape into the handler opaquely).  Feedback edges are
  iterated to a fixed point exactly as absint does.

Read-sets come from :mod:`repro.analysis.effects` — an AST extraction
over the callable's source — cross-checked against any declared
``reads=`` metadata on UDFs and delta handlers.  The demand abstraction
:class:`Live` carries an ``exact`` bit with the same soundness contract
as absint's :class:`~repro.analysis.absint.Polarity`: verdicts and
rewrites are built only on exact facts; an escape or an opaque callable
widens to "assume everything is read" and the pass stays silent.

Verdicts:

* **REX400** — a producer's output column is never read downstream.
* **REX401** — a body reads an attribute its ``reads=`` omits.
* **REX402** — a ``reads=`` declaration names an attribute the body
  provably never reads (exact extractions only).
* **REX403** — a key function reads a position beyond its input's known
  arity: the key column was projected away upstream (error).
* **REX404** — a rewrite candidate was declined: the blocking effect
  (impurity, unknown reads, non-insert polarity) is named.
* **REX405** — filter pushdown licensed below the node.
* **REX406** — projection narrowing licensed through the exchange.
* **REX407** — an opaque callable widened the analysis.

The rewrite pass (:mod:`repro.optimizer.rewrite`) consumes the same
inference: REX405/REX406 verdicts are exactly the licenses it spends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple, Union

from repro.analysis.diagnostics import Diagnostic, make
from repro.analysis.effects import (
    EffectSummary,
    OPAQUE,
    check_declaration,
    extract_effects,
    extract_handler_effects,
)
from repro.optimizer.logical import (
    LApply,
    LFeedback,
    LFilter,
    LFixpoint,
    LGroupBy,
    LJoin,
    LNode,
    LProject,
    LRehash,
    LScan,
)
from repro.runtime.plan import (
    PApply,
    PFeedback,
    PFilter,
    PFixpoint,
    PFused,
    PGroupBy,
    PJoin,
    PNode,
    PProject,
    PRehash,
    PScan,
    PhysicalPlan,
)

#: Upper bound on feedback-demand iterations.  Demand sets only grow and
#: the exact bit only clears, so the loop converges quickly; 8 matches
#: absint's cap.
MAX_PASSES = 8


@dataclass(frozen=True)
class Live:
    """The demand abstraction for one plan edge.

    ``exact=True`` means *exactly* the positions in ``cols`` are read by
    downstream consumers — a proof dead-column verdicts and narrowing
    rewrites may be built on.  ``exact=False`` means the demand is
    unknown (a row escaped into an opaque consumer): every position must
    be assumed live and ``cols`` is meaningless.
    """

    cols: FrozenSet[int] = frozenset()
    exact: bool = True

    def join(self, other: "Live") -> "Live":
        return Live(self.cols | other.cols, self.exact and other.exact)

    def widened(self) -> "Live":
        return Live(self.cols, False)

    @property
    def name(self) -> str:
        if not self.exact:
            return "all?"
        if not self.cols:
            return "∅"
        return "{" + ",".join(str(c) for c in sorted(self.cols)) + "}"

    def __repr__(self):  # pragma: no cover - cosmetic
        return f"Live({self.name})"


#: Demand placed by a consumer that may read anything.
ALL = Live(frozenset(), False)
#: No demand (the bottom of the lattice; feedback iteration seed).
NONE = Live(frozenset(), True)


def live_all(arity: Optional[int]) -> Live:
    """Full demand: every position of a known width, else widened."""
    if arity is None:
        return ALL
    return Live(frozenset(range(arity)), True)


@dataclass
class NodeLineage:
    """Everything the analysis inferred about one plan node."""

    path: str
    label: str
    #: Number of columns in this node's output rows (None = unknown).
    out_arity: Optional[int]
    #: Demand on this node's *output* edge (what downstream reads).
    live: Live
    #: Demand this node places on its input edge(s), joined.
    in_live: Optional[Live] = None
    #: Positions of the input row this node's own callables read.
    reads: Optional[FrozenSet[int]] = None
    reads_exact: bool = False
    #: Re-evaluation safety of this node's callables (None = n/a).
    pure: Optional[bool] = None

    def to_dict(self) -> Dict:
        doc: Dict = {
            "path": self.path,
            "label": self.label,
            "live": sorted(self.live.cols) if self.live.exact else None,
            "live_exact": self.live.exact,
        }
        if self.out_arity is not None:
            doc["out_arity"] = self.out_arity
        if self.in_live is not None:
            doc["input_live"] = (sorted(self.in_live.cols)
                                 if self.in_live.exact else None)
            doc["input_live_exact"] = self.in_live.exact
        if self.reads is not None:
            doc["reads"] = sorted(self.reads)
            doc["reads_exact"] = self.reads_exact
        if self.pure is not None:
            doc["pure"] = self.pure
        return doc

    def annotation(self) -> str:
        """Compact EXPLAIN column, e.g. ``live={0,1}/3``."""
        text = f"live={self.live.name}"
        if self.out_arity is not None:
            text += f"/{self.out_arity}"
        return text


class PlanLineage:
    """The per-node inference results for one plan, queryable by node."""

    def __init__(self, nodes: List[NodeLineage],
                 by_id: Dict[int, NodeLineage]):
        self.nodes = nodes
        self._by_id = by_id

    def of(self, node) -> Optional[NodeLineage]:
        return self._by_id.get(id(node))

    def annotation(self, node) -> str:
        lin = self.of(node)
        return lin.annotation() if lin is not None else ""

    def report(self) -> List[Dict]:
        """JSON-ready rows (what ``cli analyze --format json`` embeds
        under ``"lineage"``)."""
        return [n.to_dict() for n in self.nodes]


def _reads_live(summary: EffectSummary) -> Live:
    """A callable's read-set as the demand it places on its input."""
    if not summary.proves_reads():
        return ALL
    return Live(summary.reads, True)


def _instantiate(factory):
    try:
        return factory()
    except Exception:  # noqa: BLE001 - factories are user code
        return None


def _udf_callable(udf):
    """The row-level function behind a UDF object, for extraction."""
    inner = getattr(udf, "fn", None)
    if inner is not None and callable(inner):
        return inner
    call = getattr(type(udf), "__call__", None)
    return call if call is not None else None


# ---------------------------------------------------------------------------
# Physical pass
# ---------------------------------------------------------------------------


class _PhysicalLineage:
    """One top-down demand evaluation over a physical tree, with the
    feedback edge's demand held constant (supplied by the outer
    iteration).  Arity inference runs inline: children are evaluated
    before the parent's input demand is final, so arity (a bottom-up
    fact) is computed in :meth:`_arity` passes over the same recursion.
    """

    def __init__(self, table_arity: Optional[Dict[str, int]],
                 feedback_demand: Live, fixpoint_arity: Optional[int]):
        self.table_arity = table_arity or {}
        self.feedback_demand = feedback_demand
        self.fixpoint_arity = fixpoint_arity
        #: Demand observed arriving at PFeedback leaves this pass.
        self.observed_feedback = NONE
        self.fixpoint_out_arity: Optional[int] = None
        self.nodes: List[NodeLineage] = []
        self.by_id: Dict[int, NodeLineage] = {}
        self.diagnostics: List[Diagnostic] = []
        self._effects_memo: Dict[int, EffectSummary] = {}

    # -- shared helpers --------------------------------------------------
    def _record(self, node, lin: NodeLineage) -> NodeLineage:
        self.nodes.append(lin)
        self.by_id[id(node)] = lin
        return lin

    def _emit(self, code: str, message: str, location: str,
              hint: str = "") -> None:
        self.diagnostics.append(make(code, message, location=location,
                                     hint=hint))

    def _effects(self, fn, **kwargs) -> EffectSummary:
        if fn is None:
            return OPAQUE
        memo = self._effects_memo.get(id(fn))
        if memo is None:
            memo = extract_effects(fn, **kwargs)
            self._effects_memo[id(fn)] = memo
        return memo

    def _note_opaque(self, what: str, path: str,
                     summary: EffectSummary) -> None:
        if summary.opaque:
            self._emit("REX407",
                       f"{what} has no retrievable source; the column "
                       "analysis assumes it reads and produces everything",
                       path,
                       hint="declare reads= metadata (or use a plain "
                            "def/lambda) to restore precision")

    def _check_key_arity(self, what: str, path: str,
                         key_reads: EffectSummary,
                         in_arity: Optional[int]) -> None:
        """REX403: the key function reads past the known input width."""
        if in_arity is None or key_reads.opaque:
            return
        beyond = {i for i in key_reads.reads if i >= in_arity}
        if beyond:
            self._emit("REX403",
                       f"{what} key function reads position"
                       f"{'s' if len(beyond) > 1 else ''} "
                       f"{sorted(beyond)} but its input rows carry only "
                       f"{in_arity} column(s): the key column was "
                       "projected away upstream",
                       path,
                       hint="keep the key column in every upstream "
                            "projection (or re-key before narrowing)")

    def _check_dead_columns(self, label: str, path: str, demand: Live,
                            out_arity: Optional[int]) -> None:
        """REX400 at a column-producing node."""
        if out_arity is None or not demand.exact:
            return
        dead = sorted(set(range(out_arity)) - demand.cols)
        if dead:
            self._emit("REX400",
                       f"column{'s' if len(dead) > 1 else ''} {dead} of "
                       f"{label} {'are' if len(dead) > 1 else 'is'} never "
                       "read by any downstream operator",
                       path,
                       hint="drop the dead column(s) from the projection, "
                            "or let ExecOptions(rewrite=True) narrow the "
                            "plan when the polarity proof allows it")

    def _check_declared(self, what: str, path: str, obj,
                        summary: EffectSummary) -> None:
        """REX401/REX402 against a reads= declaration."""
        undeclared, overdeclared = check_declaration(obj, summary)
        if undeclared:
            self._emit("REX401",
                       f"{what} reads row position"
                       f"{'s' if len(undeclared) > 1 else ''} "
                       f"{sorted(undeclared)} not covered by its declared "
                       f"reads= metadata",
                       path,
                       hint="extend reads= to cover every attribute the "
                            "body touches; the planner trusts it")
        if overdeclared:
            self._emit("REX402",
                       f"{what} declares reads= position"
                       f"{'s' if len(overdeclared) > 1 else ''} "
                       f"{sorted(overdeclared)} that its body provably "
                       "never reads",
                       path,
                       hint="trim the declaration; stale reads= metadata "
                            "blocks narrowing rewrites for nothing")

    # -- bottom-up arity --------------------------------------------------
    def _arity(self, node: PNode) -> Optional[int]:
        if isinstance(node, PScan):
            return self.table_arity.get(node.table)
        if isinstance(node, PFeedback):
            return self.fixpoint_arity
        if isinstance(node, (PFilter, PRehash)):
            return self._arity(node.children[0])
        if isinstance(node, PProject):
            return self._effects(node.row_fn).out_arity
        if isinstance(node, PApply):
            udf = _instantiate(node.udf_factory)
            produced = (len(udf.out_types)
                        if udf is not None
                        and getattr(udf, "out_types", None) else None)
            if node.mode == "replace":
                return produced
            child = self._arity(node.children[0])
            if child is None or produced is None:
                return None
            return child + produced
        if isinstance(node, PJoin):
            if node.handler_factory is not None:
                handler = _instantiate(node.handler_factory)
                out_types = getattr(handler, "out_types", None)
                return len(out_types) if out_types else None
            left = self._arity(node.children[0])
            right = self._arity(node.children[1])
            if left is None or right is None:
                return None
            return left + right
        if isinstance(node, PGroupBy):
            key_arity = self._effects(node.key_fn).out_arity
            specs = _instantiate(node.specs_factory)
            if key_arity is None or specs is None:
                return None
            # Tuple-valued aggregate results (ArgMin over several
            # columns, CentroidAvg's (x, y) mean) still occupy one
            # output slot each: the group-by emits key + one value per
            # spec and downstream projections unpack the tuples.
            return key_arity + len(specs)
        if isinstance(node, PFused):
            width = self._arity(node.children[0]) \
                if node.children else None
            for constituent in node.constituents:
                width = self._constituent_arity(constituent, width)
            return width
        # PUnion / PFixpoint / PCollect: children must be union-compatible.
        widths = {self._arity(child) for child in node.children}
        widths.discard(None)
        return widths.pop() if len(widths) == 1 else None

    def _constituent_arity(self, constituent: PNode,
                           width: Optional[int]) -> Optional[int]:
        if isinstance(constituent, PFilter):
            return width
        if isinstance(constituent, PProject):
            return self._effects(constituent.row_fn).out_arity
        if isinstance(constituent, PApply):
            udf = _instantiate(constituent.udf_factory)
            produced = (len(udf.out_types)
                        if udf is not None
                        and getattr(udf, "out_types", None) else None)
            if constituent.mode == "replace":
                return produced
            if width is None or produced is None:
                return None
            return width + produced
        return width

    # -- top-down demand --------------------------------------------------
    def eval(self, node: PNode, demand: Live, path: str = "") -> None:
        name = type(node).__name__[1:]
        here = f"{path}/{name}" if path else name
        out_arity = self._arity(node)

        if isinstance(node, PFused):
            self._eval_fused(node, demand, here, out_arity)
            return

        reads: Optional[FrozenSet[int]] = None
        reads_exact = False
        pure: Optional[bool] = None
        in_live: Optional[Live] = None

        if isinstance(node, PScan):
            # An unused scan column is not a plan defect (base tables
            # rarely match a query's shape exactly); narrowing licenses
            # (REX406) cover the case where it costs wire bytes.  REX400
            # is reserved for *computed* columns nobody reads.
            pass
        elif isinstance(node, PFeedback):
            self.observed_feedback = self.observed_feedback.join(demand)
        elif isinstance(node, PFilter):
            summary = self._effects(node.predicate)
            self._note_opaque("filter predicate", here, summary)
            reads, reads_exact = summary.reads, summary.proves_reads()
            pure = summary.pure and not summary.opaque
            in_live = demand.join(_reads_live(summary))
            self.eval(node.children[0], in_live, here)
        elif isinstance(node, PProject):
            summary = self._effects(node.row_fn)
            self._note_opaque("projection row function", here, summary)
            self._check_dead_columns("Project", here, demand, out_arity)
            reads, reads_exact = summary.reads, summary.proves_reads()
            pure = summary.pure and not summary.opaque
            in_live = _reads_live(summary)
            self.eval(node.children[0], in_live, here)
        elif isinstance(node, PApply):
            in_live = self._eval_apply(node, demand, here, out_arity)
            self.eval(node.children[0], in_live, here)
        elif isinstance(node, PRehash):
            in_live = demand
            if node.key_fn is not None:
                summary = self._effects(node.key_fn)
                self._note_opaque("rehash key function", here, summary)
                reads, reads_exact = summary.reads, summary.proves_reads()
                child_arity = self._arity(node.children[0])
                self._check_key_arity("Rehash", here, summary, child_arity)
                in_live = demand.join(_reads_live(summary))
            self.eval(node.children[0], in_live, here)
        elif isinstance(node, PJoin):
            in_live = self._eval_join(node, demand, here)
        elif isinstance(node, PGroupBy):
            in_live = self._eval_groupby(node, demand, here)
            self.eval(node.children[0], in_live, here)
        elif isinstance(node, PFixpoint):
            in_live = self._eval_fixpoint(node, demand, here)
        else:  # PUnion, PCollect, unknown passthroughs
            in_live = demand
            for child in node.children:
                self.eval(child, demand, here)

        self._record(node, NodeLineage(
            path=here, label=name, out_arity=out_arity, live=demand,
            in_live=in_live, reads=reads, reads_exact=reads_exact,
            pure=pure))

    def _eval_apply(self, node: PApply, demand: Live, here: str,
                    out_arity: Optional[int]) -> Live:
        udf = _instantiate(node.udf_factory)
        arg_summary = self._effects(node.arg_fn)
        self._note_opaque("applyFunction argument builder", here,
                          arg_summary)
        udf_fn = _udf_callable(udf) if udf is not None else None
        udf_summary = self._effects(udf_fn)
        if udf is not None:
            self._check_declared(
                f"UDF {getattr(udf, 'name', 'udf')!r}", here, udf,
                udf_summary)
        self._check_dead_columns("ApplyFunction", here, demand, out_arity)
        in_live = _reads_live(arg_summary)
        if node.mode == "extend":
            child_arity = self._arity(node.children[0])
            if demand.exact and child_arity is not None:
                passthrough = Live(
                    frozenset(c for c in demand.cols if c < child_arity),
                    True)
            else:
                passthrough = ALL
            in_live = in_live.join(passthrough)
        return in_live

    def _eval_join(self, node: PJoin, demand: Live, here: str) -> Live:
        if node.handler_factory is not None:
            handler = _instantiate(node.handler_factory)
            summary = extract_handler_effects(type(handler)) \
                if handler is not None else OPAQUE
            if handler is not None:
                self._check_declared(
                    f"join delta handler {handler.name!r}", here, handler,
                    summary)
            # Bucket rows escape whole into the handler's bucket
            # arguments: both inputs must be assumed fully read.
            for child in node.children:
                self.eval(child, ALL, here)
            return ALL
        left_arity = self._arity(node.children[0])
        left_key = self._effects(node.left_key)
        right_key = self._effects(node.right_key)
        self._check_key_arity("Join(left)", here, left_key, left_arity)
        self._check_key_arity("Join(right)", here, right_key,
                              self._arity(node.children[1]))
        if demand.exact and left_arity is not None:
            left_demand = Live(
                frozenset(c for c in demand.cols if c < left_arity), True)
            right_demand = Live(
                frozenset(c - left_arity for c in demand.cols
                          if c >= left_arity), True)
        else:
            left_demand = right_demand = ALL
        left_demand = left_demand.join(_reads_live(left_key))
        right_demand = right_demand.join(_reads_live(right_key))
        self.eval(node.children[0], left_demand, here)
        self.eval(node.children[1], right_demand, here)
        return left_demand.join(right_demand)

    def _eval_groupby(self, node: PGroupBy, demand: Live,
                      here: str) -> Live:
        key_summary = self._effects(node.key_fn)
        self._note_opaque("group-by key function", here, key_summary)
        self._check_key_arity("GroupBy", here, key_summary,
                              self._arity(node.children[0]))
        self._check_dead_columns("GroupBy", here, demand,
                                 self._arity(node))
        in_live = _reads_live(key_summary)
        specs = _instantiate(node.specs_factory)
        if specs is None:
            return ALL
        for spec in specs:
            arg_summary = self._effects(spec.arg)
            self._note_opaque(
                f"aggregate argument of {spec.aggregator.name!r}", here,
                arg_summary)
            in_live = in_live.join(_reads_live(arg_summary))
        return in_live

    def _eval_fixpoint(self, node: PFixpoint, demand: Live,
                       here: str) -> Live:
        self.fixpoint_out_arity = self._arity(node)
        body_demand = demand.join(self.feedback_demand)
        if node.key_fn is not None:
            key_summary = self._effects(node.key_fn)
            self._note_opaque("fixpoint key function", here, key_summary)
            for child in node.children:
                self._check_key_arity("Fixpoint", here, key_summary,
                                      self._arity(child))
            body_demand = body_demand.join(_reads_live(key_summary))
        if node.while_handler_factory is not None:
            handler = _instantiate(node.while_handler_factory)
            summary = extract_handler_effects(type(handler)) \
                if handler is not None else OPAQUE
            if handler is not None:
                self._check_declared(
                    f"while delta handler {handler.name!r}", here, handler,
                    summary)
            body_demand = body_demand.join(_reads_live(summary))
        for child in node.children:
            self.eval(child, body_demand, here)
        return body_demand

    def _eval_fused(self, node: PFused, demand: Live, here: str,
                    out_arity: Optional[int]) -> None:
        # Constituents are stored upstream-first; demand flows the other
        # way, so walk them reversed, recording each constituent's own
        # output-edge demand as we go.
        current = demand
        input_widths: List[Optional[int]] = []
        width = self._arity(node.children[0]) if node.children else None
        for constituent in node.constituents:
            input_widths.append(width)
            width = self._constituent_arity(constituent, width)
        for constituent, in_width in zip(reversed(node.constituents),
                                         reversed(input_widths)):
            cname = type(constituent).__name__[1:]
            cpath = f"{here}/{cname}"
            reads: Optional[FrozenSet[int]] = None
            reads_exact = False
            pure: Optional[bool] = None
            if isinstance(constituent, PFilter):
                summary = self._effects(constituent.predicate)
                reads, reads_exact = summary.reads, summary.proves_reads()
                pure = summary.pure and not summary.opaque
                in_live = current.join(_reads_live(summary))
            elif isinstance(constituent, PProject):
                summary = self._effects(constituent.row_fn)
                reads, reads_exact = summary.reads, summary.proves_reads()
                pure = summary.pure and not summary.opaque
                in_live = _reads_live(summary)
            elif isinstance(constituent, PApply):
                in_live = self._eval_apply(
                    constituent, current, cpath,
                    self._constituent_arity(constituent, in_width))
            else:
                in_live = current
            self._record(constituent, NodeLineage(
                path=cpath, label=cname,
                out_arity=self._constituent_arity(constituent, in_width),
                live=current, in_live=in_live, reads=reads,
                reads_exact=reads_exact, pure=pure))
            current = in_live
        self._record(node, NodeLineage(
            path=here, label="Fused", out_arity=out_arity, live=demand,
            in_live=current))
        for child in node.children:
            self.eval(child, current, here)


# ---------------------------------------------------------------------------
# Logical pass
# ---------------------------------------------------------------------------


class _LogicalLineage:
    """Demand propagation over a logical tree.

    Logical nodes carry schemas, so arity is always known and read-sets
    come from bound expressions (:meth:`Expr.columns`) instead of AST
    extraction — the verdicts here are exact by construction.  Pushdown
    licenses (REX404-406) are physical-plan concerns (they reference
    exchanges and compiled callables) and are not emitted here.
    """

    def __init__(self, feedback_demand: Live):
        self.feedback_demand = feedback_demand
        self.observed_feedback = NONE
        self.nodes: List[NodeLineage] = []
        self.by_id: Dict[int, NodeLineage] = {}
        self.diagnostics: List[Diagnostic] = []

    _record = _PhysicalLineage._record
    _emit = _PhysicalLineage._emit
    _check_dead_columns = _PhysicalLineage._check_dead_columns
    _check_declared = _PhysicalLineage._check_declared

    @staticmethod
    def _columns_live(exprs, schema) -> Live:
        cols = set()
        for expr in exprs:
            for name in expr.columns():
                try:
                    cols.add(schema.index_of(name))
                except Exception:  # noqa: BLE001 - REX008 owns the report
                    return ALL
        return Live(frozenset(cols), True)

    def eval(self, node: LNode, demand: Live, path: str = "") -> None:
        name = type(node).__name__[1:]
        here = f"{path}/{name}" if path else name
        out_arity = len(node.schema.fields)
        in_live: Optional[Live] = None

        if isinstance(node, LScan):
            pass  # see the physical pass: REX400 is for computed columns
        elif isinstance(node, LFeedback):
            self.observed_feedback = self.observed_feedback.join(demand)
        elif isinstance(node, LFilter):
            child = node.children[0]
            in_live = demand.join(
                self._columns_live([node.predicate], child.schema))
            self.eval(child, in_live, here)
        elif isinstance(node, LProject):
            self._check_dead_columns(node.label(), here, demand, out_arity)
            child = node.children[0]
            if demand.exact:
                exprs = [expr for i, (expr, _) in enumerate(node.items)
                         if i in demand.cols]
            else:
                exprs = [expr for expr, _ in node.items]
            in_live = self._columns_live(exprs, child.schema)
            self.eval(child, in_live, here)
        elif isinstance(node, LApply):
            child = node.children[0]
            in_live = self._columns_live(node.args, child.schema)
            if node.mode == "extend":
                child_arity = len(child.schema.fields)
                passthrough = (Live(
                    frozenset(c for c in demand.cols if c < child_arity),
                    True) if demand.exact else ALL)
                in_live = in_live.join(passthrough)
            udf_fn = _udf_callable(node.udf)
            self._check_declared(
                f"UDF {getattr(node.udf, 'name', 'udf')!r}", here,
                node.udf, extract_effects(udf_fn)
                if udf_fn is not None else OPAQUE)
            self.eval(child, in_live, here)
        elif isinstance(node, LJoin):
            in_live = self._eval_join(node, demand, here)
        elif isinstance(node, LGroupBy):
            child = node.children[0]
            self._check_dead_columns(node.label(), here, demand, out_arity)
            key_exprs_live = Live(frozenset(
                child.schema.index_of(k) for k in node.keys
                if child.schema.has(k)), True)
            in_live = key_exprs_live
            for agg in node.aggs:
                in_live = in_live.join(
                    self._columns_live(agg.args, child.schema))
            self.eval(child, in_live, here)
        elif isinstance(node, LFixpoint):
            body_demand = demand.join(self.feedback_demand)
            if node.schema.has(node.key):
                body_demand = body_demand.join(Live(
                    frozenset({node.schema.index_of(node.key)}), True))
            if node.while_handler_factory is not None:
                handler = _instantiate(node.while_handler_factory)
                summary = extract_handler_effects(type(handler)) \
                    if handler is not None else OPAQUE
                if handler is not None:
                    self._check_declared(
                        f"while delta handler {handler.name!r}", here,
                        handler, summary)
                body_demand = body_demand.join(_reads_live(summary))
            for child in node.children:
                self.eval(child, body_demand, here)
            in_live = body_demand
        elif isinstance(node, LRehash):
            child = node.children[0]
            in_live = demand
            if node.key is not None and child.schema.has(node.key):
                in_live = in_live.join(Live(
                    frozenset({child.schema.index_of(node.key)}), True))
            self.eval(child, in_live, here)
        else:
            in_live = demand
            for child in node.children:
                self.eval(child, demand, here)

        self._record(node, NodeLineage(
            path=here, label=node.label(), out_arity=out_arity,
            live=demand, in_live=in_live))

    def _eval_join(self, node: LJoin, demand: Live, here: str) -> Live:
        if node.handler_factory is not None:
            handler = _instantiate(node.handler_factory)
            if handler is not None:
                self._check_declared(
                    f"join delta handler {handler.name!r}", here, handler,
                    extract_handler_effects(type(handler)))
            for child in node.children:
                self.eval(child, ALL, here)
            return ALL
        left, right = node.children
        left_arity = len(left.schema.fields)
        if demand.exact:
            left_demand = Live(
                frozenset(c for c in demand.cols if c < left_arity), True)
            right_demand = Live(
                frozenset(c - left_arity for c in demand.cols
                          if c >= left_arity), True)
        else:
            left_demand = right_demand = ALL
        if node.condition is not None:
            lcol, rcol = node.condition
            if left.schema.has(lcol):
                left_demand = left_demand.join(Live(
                    frozenset({left.schema.index_of(lcol)}), True))
            if right.schema.has(rcol):
                right_demand = right_demand.join(Live(
                    frozenset({right.schema.index_of(rcol)}), True))
        self.eval(left, left_demand, here)
        self.eval(right, right_demand, here)
        return left_demand.join(right_demand)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def infer_lineage(plan: Union[LNode, PhysicalPlan, PNode],
                  table_arity: Optional[Dict[str, int]] = None
                  ) -> Tuple[PlanLineage, List[Diagnostic]]:
    """Run the column-lineage analysis to a fixed point over the feedback
    edge; returns (per-node lineage, REX40x diagnostics).

    ``table_arity`` maps table names to their column counts (the
    executor supplies it from the catalog); without it scans have
    unknown width and verdicts that need it are withheld.
    """
    if isinstance(plan, LNode):
        run = None
        feedback = NONE
        for _ in range(MAX_PASSES):
            run = _LogicalLineage(feedback)
            run.eval(plan, live_all(len(plan.schema.fields)))
            merged = feedback.join(run.observed_feedback)
            if merged == feedback:
                break
            feedback = merged
        return PlanLineage(run.nodes, run.by_id), run.diagnostics

    root = plan.root if isinstance(plan, PhysicalPlan) else plan
    feedback = NONE
    fixpoint_arity: Optional[int] = None
    run = None
    for _ in range(MAX_PASSES):
        run = _PhysicalLineage(table_arity, feedback, fixpoint_arity)
        run.eval(root, live_all(run._arity(root)))
        merged = feedback.join(run.observed_feedback)
        converged = (merged == feedback
                     and run.fixpoint_out_arity == fixpoint_arity)
        fixpoint_arity = run.fixpoint_out_arity
        if converged:
            break
        feedback = merged
    lineage = PlanLineage(run.nodes, run.by_id)
    _check_rewrite_licenses(root, lineage, run.diagnostics)
    return lineage, run.diagnostics


def _check_rewrite_licenses(root: PNode, lineage: PlanLineage,
                            diagnostics: List[Diagnostic]) -> None:
    """REX404/REX405/REX406: name the rewrites the facts license (or the
    effect that blocks them).  These mirror the legality rules of
    :func:`repro.optimizer.rewrite.rewrite_plan` exactly — the rewrite
    pass spends precisely the licenses published here."""
    from repro.analysis.absint import INSERT_ONLY, infer as infer_polarity

    props, _ = infer_polarity(root)

    def walk(node: PNode):
        yield node
        for child in node.children:
            yield from walk(child)

    for node in walk(root):
        lin = lineage.of(node)
        if lin is None:
            continue
        if isinstance(node, PRehash) and not node.broadcast:
            child = node.children[0]
            child_lin = lineage.of(child)
            child_arity = child_lin.out_arity if child_lin else None
            wanted = lin.in_live
            if child_arity is None or wanted is None or not wanted.exact:
                continue
            width = max(wanted.cols) + 1 if wanted.cols else 0
            if width >= child_arity:
                continue
            child_pol = props.of(child)
            if child_pol is not None \
                    and child_pol.out_polarity.proves(INSERT_ONLY):
                diagnostics.append(make(
                    "REX406",
                    f"only columns {sorted(wanted.cols)} of "
                    f"{child_arity} crossing this exchange are live "
                    "downstream; narrowing to the first "
                    f"{width} column(s) is licensed "
                    "(insert-only polarity proven)",
                    location=lin.path,
                    hint="ExecOptions(rewrite=True) inserts the "
                         "truncation project below the exchange"))
            else:
                pol_name = (child_pol.out_polarity.name
                            if child_pol is not None else "unknown")
                diagnostics.append(make(
                    "REX404",
                    f"projection narrowing through this exchange "
                    f"(live {sorted(wanted.cols)} of {child_arity}) is "
                    f"blocked: input polarity {pol_name!r} is not "
                    "proven insert-only, so delta rows may be key-only "
                    "tuples narrower than the declared width",
                    location=lin.path,
                    hint="declare an insert-only emits_polarity on the "
                         "upstream handler if the stream truly never "
                         "replaces or updates"))
        elif isinstance(node, PFilter):
            child = node.children[0]
            if not isinstance(child, (PRehash, PProject)):
                continue
            if isinstance(child, PRehash) and child.broadcast:
                continue
            below = "the exchange" if isinstance(child, PRehash) \
                else "the projection"
            if lin.pure and lin.reads_exact:
                child_pol = props.of(child)
                if child_pol is not None \
                        and child_pol.out_polarity.proves(INSERT_ONLY):
                    diagnostics.append(make(
                        "REX405",
                        f"filter pushdown below {below} is licensed: the "
                        f"predicate is pure, reads exactly "
                        f"{sorted(lin.reads or ())}, and the stream is "
                        "proven insert-only",
                        location=lin.path,
                        hint="ExecOptions(rewrite=True) applies the "
                             "pushdown"))
                else:
                    diagnostics.append(make(
                        "REX404",
                        f"filter pushdown below {below} is blocked: the "
                        "stream's polarity is not proven insert-only "
                        "(replacement straddles would route or project "
                        "differently across the move)",
                        location=lin.path))
            else:
                blocker = ("the predicate has side effects or calls "
                           "outside the pure whitelist" if lin.pure is False
                           else "the predicate's read-set could not be "
                                "proven")
                diagnostics.append(make(
                    "REX404",
                    f"filter pushdown below {below} is blocked: "
                    f"{blocker}",
                    location=lin.path,
                    hint="keep predicates as pure single-expression "
                         "lambdas over constant row positions"))


def check_lineage(root, emit,
                  table_arity: Optional[Dict[str, int]] = None) -> None:
    """Rule-pass entry point (analyzer pipeline shape): run the
    inference and emit its diagnostics."""
    _, diagnostics = infer_lineage(root, table_arity=table_arity)
    for diag in diagnostics:
        emit(diag)


def lineage_report(plan: Union[LNode, PhysicalPlan, PNode],
                   table_arity: Optional[Dict[str, int]] = None
                   ) -> List[Dict]:
    """The inferred lineage as JSON-ready dicts (what
    ``repro.cli analyze --format json`` embeds under ``"lineage"``)."""
    lineage, _ = infer_lineage(plan, table_arity=table_arity)
    return lineage.report()
