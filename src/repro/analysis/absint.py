"""Delta-polarity & monotonicity abstract interpretation (REX300-307).

The engine's deltas carry one of four annotations (Definition 1): ``+``
(insert), ``-`` (delete), ``->`` (replace), ``δ`` (value update).  Most
plan fragments can only ever produce a *subset* of those kinds — a table
scan emits pure insertions, a group-by emits insert/replace (and deletes
only when its input can retract), a declared handler emits what it says
it emits.  This module runs an abstract interpretation over logical and
physical plan trees that infers, per node:

* **delta polarity** — the set of annotation kinds the node's output
  stream can carry, as a value of the lattice::

        ⊥  <  insert-only  <  insert+replace  <  any
        (the abstraction is a subset of {+, -, ->, δ}; join = union;
        named points are the common rungs, every subset is a value)

* **monotonicity** — whether a fixpoint's body can ever shrink or
  retract the recursive relation (no ``-`` derivable anywhere in the
  loop);

* **key preservation** — whether Project/ApplyFunction/GroupBy inside a
  recursive branch keep the functional dependency on the fixpoint key
  (logical trees only: physical key functions are opaque compiled
  callables);

* **dead deltas** — annotation kinds a stateful operator's handling code
  can never observe, so the corresponding branches are provably dead.

Verdicts carry an ``exact`` bit: an undeclared handler (no
:attr:`~repro.udf.aggregates.Aggregator.emits_polarity`) widens its
output to "any" *inexactly* (REX306) and downstream monotonicity
verdicts are withheld rather than guessed.

Findings surface as REX300-REX306 diagnostics (only runtime REX307 —
"a delta contradicted a proof" — is an error; the static pass never
blocks execution).  The executor consumes the same inference to arm
proof-directed fast paths (``ExecOptions(absint=True)``); the sanitizer
downgrades shadow replay to polarity assertions on proven operators and
escalates any contradiction to REX307.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.analysis.diagnostics import Diagnostic, make
from repro.common.deltas import DeltaOp
from repro.operators.expressions import ColumnRef
from repro.optimizer.logical import (
    LApply,
    LFeedback,
    LFilter,
    LFixpoint,
    LGroupBy,
    LJoin,
    LNode,
    LProject,
    LRehash,
    LScan,
)
from repro.runtime.plan import (
    PApply,
    PFeedback,
    PFilter,
    PFixpoint,
    PFused,
    PGroupBy,
    PJoin,
    PNode,
    PProject,
    PRehash,
    PScan,
    PhysicalPlan,
)

INSERT = DeltaOp.INSERT
DELETE = DeltaOp.DELETE
REPLACE = DeltaOp.REPLACE
UPDATE = DeltaOp.UPDATE

#: Lattice constants (subsets of the four annotation kinds).
BOTTOM: frozenset = frozenset()
INSERT_ONLY: frozenset = frozenset({INSERT})
INSERT_REPLACE: frozenset = frozenset({INSERT, REPLACE})
ANY: frozenset = frozenset(DeltaOp)

#: Canonical rendering order for annotation symbols.
_SYMBOL_ORDER = (INSERT, DELETE, REPLACE, UPDATE)

#: Upper bound on feedback-polarity iterations.  The transfer functions
#: are monotone over a finite lattice (16 subsets x exactness), so the
#: loop converges in at most a handful of steps; 8 is generous.
MAX_PASSES = 8


def kind_symbols(kinds: frozenset) -> List[str]:
    """The annotation symbols of ``kinds`` in canonical ``+ - -> δ`` order."""
    return [op.value for op in _SYMBOL_ORDER if op in kinds]


def polarity_name(kinds: frozenset) -> str:
    """Human name of a lattice point (named rungs, else the symbol set)."""
    if not kinds:
        return "⊥"
    if kinds == INSERT_ONLY:
        return "insert-only"
    if kinds == INSERT_REPLACE:
        return "insert+replace"
    if kinds == ANY:
        return "any"
    return "{" + ",".join(kind_symbols(kinds)) + "}"


@dataclass(frozen=True)
class Polarity:
    """An abstract delta stream: which annotation kinds it may carry.

    ``exact=False`` marks a verdict widened past an undeclared handler —
    the kinds are a sound over-approximation but proofs must not be
    built on it.
    """

    kinds: frozenset = BOTTOM
    exact: bool = True

    def join(self, other: "Polarity") -> "Polarity":
        return Polarity(self.kinds | other.kinds, self.exact and other.exact)

    @property
    def name(self) -> str:
        return polarity_name(self.kinds)

    def proves(self, allowed: frozenset) -> bool:
        """True when this stream is *proven* to stay within ``allowed``."""
        return self.exact and bool(self.kinds) and self.kinds <= allowed

    def __repr__(self):  # pragma: no cover - cosmetic
        suffix = "" if self.exact else "?"
        return f"Polarity({self.name}{suffix})"


def join_all(pols: List[Polarity]) -> Polarity:
    out = Polarity(BOTTOM, True)
    for p in pols:
        out = out.join(p)
    return out


@dataclass
class NodeProperties:
    """Everything the interpretation inferred about one plan node."""

    path: str
    label: str
    out_polarity: Polarity
    in_polarity: Optional[Polarity] = None
    #: Per-input polarity for multi-port operators (joins), input order.
    port_polarities: Optional[Tuple[Polarity, ...]] = None
    #: Fixpoint nodes only: True/False when proven, None when unknown.
    monotone: Optional[bool] = None
    #: Logical recursive-branch nodes only; None when not applicable.
    key_preserving: Optional[bool] = None
    #: Annotation kinds this operator handles but can never observe.
    dead: frozenset = BOTTOM

    def to_dict(self) -> Dict:
        doc: Dict = {
            "path": self.path,
            "label": self.label,
            "polarity": self.out_polarity.name,
            "polarity_kinds": kind_symbols(self.out_polarity.kinds),
            "exact": self.out_polarity.exact,
        }
        if self.in_polarity is not None:
            doc["input_polarity"] = self.in_polarity.name
            doc["input_polarity_kinds"] = kind_symbols(self.in_polarity.kinds)
        if self.monotone is not None:
            doc["monotone"] = self.monotone
        if self.key_preserving is not None:
            doc["key_preserving"] = self.key_preserving
        if self.dead:
            doc["dead_kinds"] = kind_symbols(self.dead)
        return doc

    def annotation(self) -> str:
        """Compact EXPLAIN column, e.g. ``Δ=insert-only`` or
        ``Δ=insert+replace monotone``."""
        text = f"Δ={self.out_polarity.name}"
        if not self.out_polarity.exact:
            text += "?"
        if self.monotone is True:
            text += " monotone"
        elif self.monotone is False:
            text += " non-monotone"
        if self.key_preserving is False:
            text += " !key"
        return text


class PlanProperties:
    """The per-node inference results for one plan, queryable by node."""

    def __init__(self, nodes: List[NodeProperties],
                 by_id: Dict[int, NodeProperties]):
        self.nodes = nodes
        self._by_id = by_id

    def of(self, node) -> Optional[NodeProperties]:
        return self._by_id.get(id(node))

    def annotation(self, node) -> str:
        props = self.of(node)
        return props.annotation() if props is not None else ""

    def report(self) -> List[Dict]:
        """JSON-ready rows (what ``cli analyze --format json`` embeds
        under ``"properties"``)."""
        return [n.to_dict() for n in self.nodes]


def _unqualified(name: str) -> str:
    return name.rpartition(".")[2]


def _declared_polarity(obj) -> Optional[frozenset]:
    declared = getattr(obj, "emits_polarity", None)
    if declared is None:
        return None
    return frozenset(declared)


def _instantiate(factory):
    try:
        return factory()
    except Exception:  # noqa: BLE001 - factories are user code
        return None


#: Annotation kinds whose handling code exists in each stateful operator
#: (the universe REX304's dead-kind facts are computed against).
_HANDLED_GROUPBY = ANY
_HANDLED_JOIN = ANY
_HANDLED_FIXPOINT_KEYED = frozenset({INSERT, DELETE, REPLACE})
_HANDLED_FIXPOINT_SET = ANY


class _Pass:
    """One evaluation of the transfer functions over a tree, with the
    feedback leaf's polarity held constant (supplied by the outer
    iteration)."""

    def __init__(self, feedback: Polarity):
        self.feedback = feedback
        self.fixpoint_out = Polarity(BOTTOM, True)
        self.nodes: List[NodeProperties] = []
        self.by_id: Dict[int, NodeProperties] = {}
        self.diagnostics: List[Diagnostic] = []

    # -- shared helpers ---------------------------------------------------
    def _record(self, node, props: NodeProperties) -> NodeProperties:
        self.nodes.append(props)
        self.by_id[id(node)] = props
        return props

    def _emit(self, code: str, message: str, location: str,
              hint: str = "") -> None:
        self.diagnostics.append(make(code, message, location=location,
                                     hint=hint))

    def _widen(self, what: str, location: str) -> Polarity:
        self._emit("REX306",
                   f"{what} declares no emission polarity; the verdict "
                   "widens to 'any'",
                   location,
                   hint="set emits_polarity = frozenset({DeltaOp...}) on "
                        "the handler class to restore precision")
        return Polarity(ANY, False)

    def _stateful_checks(self, label: str, path: str, in_pol: Polarity,
                         handled: frozenset) -> frozenset:
        """REX300/REX304/REX305 for a stateful operator; returns the dead
        kinds."""
        if in_pol.proves(INSERT_ONLY):
            self._emit("REX300",
                       f"input to {label} is proven insert-only "
                       f"(polarity {in_pol.name})",
                       path,
                       hint="retraction and replacement bookkeeping is "
                            "skippable here; the executor fast-paths this "
                            "under ExecOptions(absint=True)")
        dead = BOTTOM
        if in_pol.exact and in_pol.kinds:
            dead = handled - in_pol.kinds
            if dead:
                self._emit("REX304",
                           f"dead delta polarity at {label}: kinds "
                           f"{{{','.join(kind_symbols(dead))}}} can never "
                           f"arrive (input polarity {in_pol.name})",
                           path,
                           hint="the operator's handling for these kinds "
                                "is provably unreachable on this plan")
        if in_pol.exact and REPLACE in in_pol.kinds \
                and INSERT not in in_pol.kinds:
            self._emit("REX305",
                       f"input to {label} carries replacements (polarity "
                       f"{in_pol.name}) with no insert polarity: a "
                       "replacement may arrive before any base row exists",
                       path,
                       hint="emit an INSERT for a key's first image, or "
                            "declare the handler's polarity accordingly")
        return dead

    def _rules_join_output(self, kinds: frozenset) -> frozenset:
        """Gupta et al. delta rules through a plain hash join, per input
        kind: ``->`` may decompose into delete+insert when the join key
        changes."""
        out = set()
        if INSERT in kinds:
            out.add(INSERT)
        if DELETE in kinds:
            out.add(DELETE)
        if REPLACE in kinds:
            out.update((REPLACE, DELETE, INSERT))
        if UPDATE in kinds:
            out.add(UPDATE)
        return frozenset(out)

    def _filter_transfer(self, p: Polarity) -> Polarity:
        """Filter (and row-count-changing apply): a ``->`` whose images
        fall on different predicate sides degrades to ``+``/``-``."""
        kinds = p.kinds
        if REPLACE in kinds:
            kinds = kinds | {INSERT, DELETE}
        return Polarity(kinds, p.exact)

    def _groupby_transfer(self, in_pol: Polarity) -> Polarity:
        # First output per group is +, changed outputs are ->; a group
        # can only empty (emit -) when contributors can retract, i.e.
        # when - or -> (straddle decompose) can arrive.  δ value-updates
        # pin groups live, so they never cause deletions.
        kinds = {INSERT, REPLACE}
        if DELETE in in_pol.kinds or REPLACE in in_pol.kinds:
            kinds.add(DELETE)
        return Polarity(frozenset(kinds), in_pol.exact)

    def _fixpoint_checks(self, path: str, body: Polarity,
                         admitted: Polarity) -> Optional[bool]:
        """REX301/REX302; returns the monotonicity verdict."""
        if not (body.exact and admitted.exact):
            return None
        loop_kinds = body.kinds | admitted.kinds
        monotone = DELETE not in loop_kinds
        if monotone:
            self._emit("REX301",
                       "fixpoint body is proven monotone (loop polarity "
                       f"{polarity_name(loop_kinds)} never retracts)",
                       path,
                       hint="the sanitizer downgrades shadow replay to a "
                            "polarity assertion on this proof")
        else:
            self._emit("REX302",
                       "fixpoint body may retract or shrink the recursive "
                       f"relation (loop polarity "
                       f"{polarity_name(loop_kinds)} includes '-')",
                       path,
                       hint="convergence now depends on runtime values; "
                            "make the while handler monotone if the "
                            "recurrence allows it")
        return monotone


class _PhysicalPass(_Pass):
    def eval(self, node: PNode, path: str = "") -> Polarity:
        name = type(node).__name__[1:]
        here = f"{path}/{name}" if path else name
        label = name

        if isinstance(node, PFused):
            return self._eval_fused(node, here)

        child_pols = [self.eval(child, here) for child in node.children]
        in_pol = join_all(child_pols) if child_pols else None

        monotone = None
        port_pols = None
        dead: frozenset = BOTTOM

        if isinstance(node, PScan):
            out = Polarity(INSERT_ONLY, True)
        elif isinstance(node, PFeedback):
            out = self.feedback
        elif isinstance(node, (PProject, PRehash)):
            out = in_pol if in_pol is not None else Polarity(BOTTOM, True)
        elif isinstance(node, PFilter):
            out = self._filter_transfer(in_pol)
        elif isinstance(node, PApply):
            out = self._eval_apply(node, in_pol, here)
        elif isinstance(node, PJoin):
            out, port_pols, dead = self._eval_join(node, child_pols,
                                                   in_pol, here)
        elif isinstance(node, PGroupBy):
            dead = self._stateful_checks("GroupBy", here, in_pol,
                                         _HANDLED_GROUPBY)
            out = self._groupby_transfer(in_pol)
        elif isinstance(node, PFixpoint):
            out, monotone, dead = self._eval_fixpoint(node, child_pols,
                                                      in_pol, here)
        else:  # PUnion, PCollect, unknown passthroughs
            out = in_pol if in_pol is not None else Polarity(BOTTOM, True)

        self._record(node, NodeProperties(
            path=here, label=label, out_polarity=out, in_polarity=in_pol,
            port_polarities=port_pols, monotone=monotone, dead=dead))
        return out

    def _eval_apply(self, node: PApply, in_pol: Polarity,
                    here: str) -> Polarity:
        udf = _instantiate(node.udf_factory)
        declared = _declared_polarity(udf)
        if node.delta_aware:
            if declared is not None:
                return Polarity(declared, True)
            return self._widen("delta-aware applyFunction "
                               f"{getattr(udf, 'name', 'udf')!r}", here)
        if getattr(udf, "table_valued", False):
            # Length-mismatched REPLACE images decompose into -/+ pairs.
            return self._filter_transfer(in_pol)
        return in_pol

    def _eval_join(self, node: PJoin, child_pols: List[Polarity],
                   in_pol: Polarity, here: str):
        out_kinds: set = set()
        exact = True
        handler = (_instantiate(node.handler_factory)
                   if node.handler_factory is not None else None)
        for port, p in enumerate(child_pols):
            uses_handler = (handler is not None
                            and (node.handler_side is None
                                 or port == node.handler_side))
            if uses_handler:
                declared = _declared_polarity(handler)
                if declared is None:
                    widened = self._widen(
                        f"join delta handler {handler.name!r}", here)
                    out_kinds |= widened.kinds
                    exact = False
                else:
                    out_kinds |= declared
            else:
                out_kinds |= self._rules_join_output(p.kinds)
                exact = exact and p.exact
        dead = BOTTOM
        if handler is None:
            dead = self._stateful_checks("HashJoin", here, in_pol,
                                         _HANDLED_JOIN)
        return (Polarity(frozenset(out_kinds), exact),
                tuple(child_pols), dead)

    def _eval_fixpoint(self, node: PFixpoint, child_pols: List[Polarity],
                       in_pol: Polarity, here: str):
        body = child_pols[1] if len(child_pols) > 1 else in_pol
        handler = (_instantiate(node.while_handler_factory)
                   if node.while_handler_factory is not None else None)
        dead: frozenset = BOTTOM
        if handler is not None:
            declared = _declared_polarity(handler)
            admitted = (Polarity(declared, True) if declared is not None
                        else self._widen(
                            f"while delta handler {handler.name!r}", here))
        elif node.semantics == "bag":
            admitted = in_pol
        elif node.semantics == "set":
            kinds = {INSERT}
            if DELETE in in_pol.kinds or REPLACE in in_pol.kinds:
                kinds.add(DELETE)
            admitted = Polarity(frozenset(kinds), in_pol.exact)
            dead = self._stateful_checks("Fixpoint", here, in_pol,
                                         _HANDLED_FIXPOINT_SET)
        else:  # keyed
            kinds = {INSERT, REPLACE}
            if DELETE in in_pol.kinds:
                kinds.add(DELETE)
            admitted = Polarity(frozenset(kinds), in_pol.exact)
            dead = self._stateful_checks("Fixpoint", here, in_pol,
                                         _HANDLED_FIXPOINT_KEYED)
            if in_pol.exact and UPDATE in in_pol.kinds:
                self._emit(
                    "REX305",
                    "δ(UPDATE) deltas reach a keyed fixpoint that has no "
                    "while delta handler; the operator rejects them at "
                    "runtime",
                    here,
                    hint="interpret the δ stream with a group-by or a "
                         "while delta handler before the fixpoint")
        monotone = self._fixpoint_checks(here, body, admitted)
        self.fixpoint_out = admitted
        return admitted, monotone, dead

    def _eval_fused(self, node: PFused, here: str) -> Polarity:
        child_pols = [self.eval(child, here) for child in node.children]
        in_pol = join_all(child_pols) if child_pols else Polarity(BOTTOM,
                                                                  True)
        chain_in = in_pol
        current = in_pol
        for constituent in node.constituents:
            cname = type(constituent).__name__[1:]
            cpath = f"{here}/{cname}"
            if isinstance(constituent, PFilter):
                out = self._filter_transfer(current)
            elif isinstance(constituent, PApply):
                out = self._eval_apply(constituent, current, cpath)
            else:  # PProject and other annotation-preserving links
                out = current
            self._record(constituent, NodeProperties(
                path=cpath, label=cname, out_polarity=out,
                in_polarity=current))
            current = out
        dead = BOTTOM
        if chain_in.exact and chain_in.kinds \
                and REPLACE not in chain_in.kinds:
            dead = frozenset({REPLACE})
            self._emit("REX304",
                       "dead delta polarity in fused chain: '->' handling "
                       "in its constituents can never run (chain input "
                       f"polarity {chain_in.name})",
                       here,
                       hint="the kernel drops replacement handling from "
                            "the chain under ExecOptions(absint=True)")
        self._record(node, NodeProperties(
            path=here, label="Fused", out_polarity=current,
            in_polarity=chain_in, dead=dead))
        return current


class _LogicalPass(_Pass):
    def eval(self, node: LNode, path: str = "") -> Polarity:
        name = type(node).__name__[1:]
        here = f"{path}/{name}" if path else name

        child_pols = [self.eval(child, here) for child in node.children]
        in_pol = join_all(child_pols) if child_pols else None

        monotone = None
        port_pols = None
        dead: frozenset = BOTTOM

        if isinstance(node, LScan):
            out = Polarity(INSERT_ONLY, True)
        elif isinstance(node, LFeedback):
            out = self.feedback
        elif isinstance(node, (LProject, LRehash)):
            out = in_pol
        elif isinstance(node, LFilter):
            out = self._filter_transfer(in_pol)
        elif isinstance(node, LApply):
            declared = _declared_polarity(node.udf)
            if declared is not None:
                out = Polarity(declared, True)
            elif getattr(node.udf, "table_valued", False):
                out = self._filter_transfer(in_pol)
            else:
                out = in_pol
        elif isinstance(node, LJoin):
            out, port_pols, dead = self._eval_join(node, child_pols,
                                                   in_pol, here)
        elif isinstance(node, LGroupBy):
            dead = self._stateful_checks("GroupBy", here, in_pol,
                                         _HANDLED_GROUPBY)
            out = self._groupby_transfer(in_pol)
        elif isinstance(node, LFixpoint):
            out, monotone, dead = self._eval_fixpoint(node, child_pols,
                                                      in_pol, here)
        else:
            out = in_pol if in_pol is not None else Polarity(BOTTOM, True)

        self._record(node, NodeProperties(
            path=here, label=node.label(), out_polarity=out,
            in_polarity=in_pol, port_polarities=port_pols,
            monotone=monotone, dead=dead))
        return out

    def _eval_join(self, node: LJoin, child_pols: List[Polarity],
                   in_pol: Polarity, here: str):
        out_kinds: set = set()
        exact = True
        handler = (_instantiate(node.handler_factory)
                   if node.handler_factory is not None else None)
        for port, p in enumerate(child_pols):
            # Logical handler joins interpret deltas from the right child.
            if handler is not None and port == 1:
                declared = _declared_polarity(handler)
                if declared is None:
                    widened = self._widen(
                        f"join delta handler {handler.name!r}", here)
                    out_kinds |= widened.kinds
                    exact = False
                else:
                    out_kinds |= declared
            else:
                out_kinds |= self._rules_join_output(p.kinds)
                exact = exact and p.exact
        dead = BOTTOM
        if handler is None:
            dead = self._stateful_checks("Join", here, in_pol,
                                         _HANDLED_JOIN)
        return (Polarity(frozenset(out_kinds), exact),
                tuple(child_pols), dead)

    def _eval_fixpoint(self, node: LFixpoint, child_pols: List[Polarity],
                       in_pol: Polarity, here: str):
        body = child_pols[1] if len(child_pols) > 1 else in_pol
        handler = (_instantiate(node.while_handler_factory)
                   if node.while_handler_factory is not None else None)
        dead: frozenset = BOTTOM
        if handler is not None:
            declared = _declared_polarity(handler)
            admitted = (Polarity(declared, True) if declared is not None
                        else self._widen(
                            f"while delta handler {handler.name!r}", here))
        elif node.union_all:
            admitted = in_pol
        else:  # keyed FIXPOINT BY k
            kinds = {INSERT, REPLACE}
            if DELETE in in_pol.kinds:
                kinds.add(DELETE)
            admitted = Polarity(frozenset(kinds), in_pol.exact)
            dead = self._stateful_checks("Fixpoint", here, in_pol,
                                         _HANDLED_FIXPOINT_KEYED)
            if in_pol.exact and UPDATE in in_pol.kinds:
                self._emit(
                    "REX305",
                    "δ(UPDATE) deltas reach a keyed fixpoint that has no "
                    "while delta handler; the operator rejects them at "
                    "runtime",
                    here,
                    hint="interpret the δ stream with a group-by or a "
                         "while delta handler before the fixpoint")
        monotone = self._fixpoint_checks(here, body, admitted)
        self.fixpoint_out = admitted
        self._check_key_preservation(node, here)
        return admitted, monotone, dead

    # -- key preservation (logical trees only) -------------------------
    def _check_key_preservation(self, fixpoint: LFixpoint,
                                fpath: str) -> None:
        """Best-effort functional-dependency tracking on the fixpoint
        key: a Project keeps the FD iff some output item passes the key
        column through as a bare column reference; a replace-mode
        applyFunction rebuilds rows from UDF output (FD lost); a GroupBy
        keeps it iff the key is among its grouping columns."""
        key_tail = _unqualified(fixpoint.key)
        recursive = fixpoint.children[1]
        for node, npath in _walk_logical_with_path(recursive, fpath):
            preserved: Optional[bool] = None
            why = ""
            if isinstance(node, LProject):
                preserved = any(
                    isinstance(expr, ColumnRef)
                    and _unqualified(expr.name) == key_tail
                    for expr, _ in node.items)
                why = (f"no projected column passes fixpoint key "
                       f"{fixpoint.key!r} through unchanged")
            elif isinstance(node, LApply) and node.mode == "replace":
                preserved = False
                why = ("replace-mode applyFunction rebuilds rows from "
                       f"UDF output; the dependency on fixpoint key "
                       f"{fixpoint.key!r} is not provable")
            elif isinstance(node, LGroupBy):
                preserved = any(_unqualified(k) == key_tail
                                for k in node.keys)
                why = (f"fixpoint key {fixpoint.key!r} is not among the "
                       f"grouping columns")
            if preserved is None:
                continue
            props = self.by_id.get(id(node))
            if props is not None:
                props.key_preserving = preserved
            if not preserved:
                self._emit("REX303",
                           f"{node.label()} inside the recursive branch "
                           f"destroys the key: {why}",
                           npath,
                           hint="carry the fixpoint key column through "
                                "the recursive branch unchanged")


def _walk_logical_with_path(node: LNode, path: str = ""):
    here = f"{path}/{type(node).__name__[1:]}" if path \
        else type(node).__name__[1:]
    yield node, here
    for child in node.children:
        yield from _walk_logical_with_path(child, here)


def infer(plan: Union[LNode, PhysicalPlan, PNode]
          ) -> Tuple[PlanProperties, List[Diagnostic]]:
    """Run the abstract interpretation to a fixed point over the feedback
    edge; returns (per-node properties, REX30x diagnostics)."""
    if isinstance(plan, LNode):
        pass_cls, root = _LogicalPass, plan
    else:
        root = plan.root if isinstance(plan, PhysicalPlan) else plan
        pass_cls = _PhysicalPass
    feedback = Polarity(BOTTOM, True)
    run = None
    for _ in range(MAX_PASSES):
        run = pass_cls(feedback)
        run.eval(root)
        if run.fixpoint_out == feedback:
            break
        feedback = run.fixpoint_out
    props = PlanProperties(run.nodes, run.by_id)
    return props, run.diagnostics


def check_polarity(root, emit) -> None:
    """Rule-pass entry point (analyzer pipeline shape): run the
    interpretation and emit its diagnostics."""
    _, diagnostics = infer(root)
    for diag in diagnostics:
        emit(diag)


def properties_report(plan: Union[LNode, PhysicalPlan, PNode]) -> List[Dict]:
    """The inferred properties as JSON-ready dicts (what
    ``repro.cli analyze --format json`` embeds under ``"properties"``)."""
    props, _ = infer(plan)
    return props.report()
