"""Simulator-invariant lint: ``ast``-based checks of this repo's own code.

The simulation's credibility rests on engineering contracts no unit test
states globally:

* **REX101** — code on a *charged* path (a function that charges
  simulated resource time via ``charge_*``) must never read the host's
  wall clock; mixing the two silently couples simulated results to host
  speed.
* **REX102** — ``time.time()`` is a civil-time read, not a duration
  source; durations must use ``time.perf_counter()`` (monotonic,
  unaffected by NTP steps).
* **REX103** — charge totals are floats; accumulating them with ``+=``
  in a loop makes the result depend on arrival order, breaking the
  bit-identical-metrics contract between execution modes.  Totals must
  go through an order-independent tally (``math.fsum`` over a collected
  multiset — see ``repro.cluster.cluster._tally_total``).  Inherently
  sequential series (prefix sums) carry a ``# noqa: REX103`` waiver.
* **REX104** — hot-path record dataclasses (deltas, punctuation,
  network messages) must declare ``slots=True`` (and the immutable ones
  ``frozen=True``): they are allocated per tuple/batch.
* **REX105** — :class:`Delta` / :class:`Punctuation` are immutable value
  objects; attribute assignment on them (including via
  ``object.__setattr__``) is a contract violation even where the frozen
  dataclass machinery would not catch it until runtime.
* **REX106** — iterating a ``set`` while routing work (``emit*``,
  ``send``, ``deposit``, ``_route``, ``_flush``) couples cross-worker
  message order — and hence emitted delta order — to hash-seed
  iteration order.  Sets are the one builtin container whose iteration
  order is genuinely unspecified (dicts preserve insertion order);
  wrap the iterable in ``sorted(...)`` or carry a list.
* **REX107** — a delta handler declaring ``reads=`` metadata whose
  ``update`` body reads a ``delta.row``/``delta.old`` position the
  declaration omits.  The column-lineage analyzer and the rewrite pass
  trust ``reads=`` as an upper bound; an under-declaration would
  license narrowing a column the handler actually needs.  Extraction
  is conservative (only constant subscripts and tuple unpacks count as
  reads), so the rule is escape-silent: an aliased or escaping row
  never fires it.
* **REX108** — per-row dict idioms inside a *columnar kernel* body (a
  function registered with
  :func:`repro.operators.blocks.columnar_kernel`): a string-keyed
  subscript (``row["col"]``) or a ``.items()``-driven loop.  Block rows
  are positional tuples and columns are integer-indexed vectors; a
  keyed access implies a per-row dict the columnar layout never
  materializes, so it either crashes or silently walks a shadow
  structure the kernel should not carry.  Use ``block.column(i)`` /
  tuple positions (``names`` exists for presentation only).

Suppression: append ``# noqa: REXnnn`` (or a bare ``# noqa``) to the
offending line.  Run as ``python -m repro.analysis.lint [paths...]`` or
``python -m repro.cli lint``.
"""

from __future__ import annotations

import ast
import os
import re
import sys
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    Severity,
    make,
)

#: Callables that read the host wall clock.
_WALL_CLOCK_ATTRS = {
    ("time", "time"), ("time", "perf_counter"), ("time", "monotonic"),
    ("time", "process_time"), ("time", "perf_counter_ns"),
    ("time", "monotonic_ns"), ("time", "time_ns"),
    ("datetime", "now"), ("datetime", "utcnow"),
}

#: Method-name prefix marking a charged simulation path.
_CHARGE_PREFIXES = ("charge_",)
_CHARGE_NAMES = {"add_state_bytes"}

#: Identifier fragments that mark a float charge total (REX103).
_CHARGE_TOTAL_RE = re.compile(
    r"(seconds|elapsed|_wall$|^wall$|wall_seconds|sim_time)", re.IGNORECASE)

#: Modules whose dataclasses are hot-path records (REX104).  Keys are
#: path suffixes (POSIX style); values say whether records there must
#: also be frozen.
_HOT_RECORD_MODULES: Dict[str, bool] = {
    "repro/common/deltas.py": True,
    "repro/common/punctuation.py": True,
    "repro/net/network.py": False,
}

#: Frozen record attributes guarded by REX105, per type-name fragment.
_IMMUTABLE_ATTRS = {
    "delta": {"op", "row", "old", "payload"},
    "punct": {"kind", "stratum"},
}

#: Files allowed to touch record internals (they define them).
_RECORD_DEFINERS = ("repro/common/deltas.py", "repro/common/punctuation.py")

#: Callee names that route deltas/messages across workers or emit them
#: downstream (REX106): iteration order at these call sites becomes
#: observable message/delta order.
_ROUTING_CALLEES = {
    "emit", "emit_batch", "emit_all", "send", "deposit",
    "route", "_route", "flush", "_flush",
}


def _posix(path: str) -> str:
    return path.replace(os.sep, "/")


def _is_columnar_kernel(node) -> bool:
    """True when ``node`` is a registered columnar kernel body — i.e. it
    carries the ``@columnar_kernel`` decorator (bare or dotted) that
    appends it to :data:`repro.operators.blocks.COLUMNAR_KERNELS`."""
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Name) and target.id == "columnar_kernel":
            return True
        if (isinstance(target, ast.Attribute)
                and target.attr == "columnar_kernel"):
            return True
    return False


def _is_items_call(expr: ast.expr) -> bool:
    return (isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "items"
            and not expr.args and not expr.keywords)


class _NoqaIndex:
    """Per-line ``# noqa`` suppression parsed from the raw source."""

    _NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?",
                          re.IGNORECASE)

    def __init__(self, source: str):
        self.by_line: Dict[int, Optional[Set[str]]] = {}
        for i, line in enumerate(source.splitlines(), start=1):
            m = self._NOQA_RE.search(line)
            if not m:
                continue
            codes = m.group("codes")
            self.by_line[i] = (None if codes is None else
                               {c.strip().upper()
                                for c in codes.split(",") if c.strip()})

    def suppressed(self, line: int, code: str) -> bool:
        if line not in self.by_line:
            return False
        codes = self.by_line[line]
        return codes is None or code in codes


def _is_wall_clock_call(call: ast.Call,
                        from_imports: Set[str]) -> Optional[str]:
    """Return a printable name if ``call`` reads the wall clock."""
    func = call.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        pair = (func.value.id, func.attr)
        if pair in _WALL_CLOCK_ATTRS:
            return f"{pair[0]}.{pair[1]}"
    if isinstance(func, ast.Name):
        # ``from time import perf_counter`` style.
        for module, attr in _WALL_CLOCK_ATTRS:
            if func.id == attr and f"{module}.{attr}" in from_imports:
                return f"{module}.{attr}"
    return None


def _is_charge_call(call: ast.Call) -> bool:
    func = call.func
    name = None
    if isinstance(func, ast.Attribute):
        name = func.attr
    elif isinstance(func, ast.Name):
        name = func.id
    if name is None:
        return False
    return name in _CHARGE_NAMES or any(
        name.startswith(p) for p in _CHARGE_PREFIXES)


def _terminal_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        return _terminal_name(node.value)
    return None


def _mentions_charge_total(node: ast.expr) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Name, ast.Attribute)):
            name = sub.id if isinstance(sub, ast.Name) else sub.attr
            if _CHARGE_TOTAL_RE.search(name):
                return True
    return False


def _is_set_expr(node: ast.expr, set_names: Set[str]) -> bool:
    """True when ``node`` evaluates to a set (literal forms, set()/
    frozenset() calls, comprehensions, set algebra, or a name/attribute
    the module-level prepass saw assigned from one)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Attribute):
        return node.attr in set_names
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
        return (_is_set_expr(node.left, set_names)
                or _is_set_expr(node.right, set_names))
    return False


def _collect_set_names(tree: ast.AST) -> Set[str]:
    """Names (and ``self.x`` attribute names) assigned from set
    expressions anywhere in the module.  Two passes so a name assigned
    from another tracked set name is caught."""
    names: Set[str] = set()
    for _ in range(2):
        for node in ast.walk(tree):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets, value = list(node.targets), node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            if not _is_set_expr(value, names):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
                elif isinstance(target, ast.Attribute):
                    names.add(target.attr)
    return names


def _routing_call_in(body: Sequence[ast.stmt]) -> Optional[str]:
    """First cross-worker routing/emission callee inside ``body``."""
    for stmt in body:
        for sub in ast.walk(stmt):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            name = (func.attr if isinstance(func, ast.Attribute)
                    else func.id if isinstance(func, ast.Name) else None)
            if name in _ROUTING_CALLEES:
                return name
    return None


class _Linter(ast.NodeVisitor):
    def __init__(self, filename: str, source: str):
        self.filename = filename
        self.posix_name = _posix(filename)
        self.findings: List[Diagnostic] = []
        self.noqa = _NoqaIndex(source)
        self.from_imports: Set[str] = set()
        self._loop_depth = 0
        self._func_stack: List[ast.AST] = []
        self._set_names: Set[str] = set()

    def visit_Module(self, node: ast.Module) -> None:
        self._set_names = _collect_set_names(node)
        self.generic_visit(node)

    # -- helpers ---------------------------------------------------------
    def emit(self, code: str, message: str, node: ast.AST,
             hint: str = "", severity: Optional[Severity] = None) -> None:
        line = getattr(node, "lineno", 0)
        if self.noqa.suppressed(line, code):
            return
        self.findings.append(make(
            code, message, location=f"{self.filename}:{line}",
            hint=hint, severity=severity))

    def _suffix_config(self, table) -> Optional[object]:
        for suffix, value in table.items():
            if self.posix_name.endswith(suffix):
                return value
        return None

    # -- imports ---------------------------------------------------------
    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module:
            for alias in node.names:
                self.from_imports.add(f"{node.module}.{alias.name}")
        self.generic_visit(node)

    # -- REX101 / REX102 / REX108 ----------------------------------------
    def _visit_function(self, node) -> None:
        if _is_columnar_kernel(node):
            self._check_columnar_kernel(node)
        calls = [n for n in ast.walk(node) if isinstance(n, ast.Call)]
        self._check_rex101(node, calls)
        self._func_stack.append(node)
        self.generic_visit(node)
        self._func_stack.pop()

    def _check_columnar_kernel(self, node) -> None:
        """REX108: per-row dict idioms on the columnar hot path.  Block
        rows are positional tuples and columns integer-indexed vectors,
        so a string-keyed subscript or an ``.items()``-driven loop in a
        kernel body means the kernel is carrying (or imagining) a
        per-row dict the block layout never materializes."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Subscript):
                index = sub.slice
                if (isinstance(index, ast.Constant)
                        and isinstance(index.value, str)):
                    self.emit(
                        "REX108",
                        f"string-keyed subscript [{index.value!r}] inside "
                        f"columnar kernel {node.name!r}: block rows are "
                        f"positional, not dicts",
                        sub,
                        hint="index columns by position — block.column(i) "
                             "or row[i]; ColumnBlock.names exists for "
                             "presentation, not per-row keyed access")
            elif isinstance(sub, ast.For) and _is_items_call(sub.iter):
                self.emit(
                    "REX108",
                    f".items() loop inside columnar kernel {node.name!r}: "
                    f"per-row dict iteration has no columnar layout",
                    sub,
                    hint="iterate the block's row tuples (or a "
                         "materialized column vector) instead of a "
                         "per-row dict view")
            elif isinstance(sub, (ast.ListComp, ast.SetComp, ast.DictComp,
                                  ast.GeneratorExp)):
                for gen in sub.generators:
                    if _is_items_call(gen.iter):
                        self.emit(
                            "REX108",
                            f".items() comprehension inside columnar "
                            f"kernel {node.name!r}: per-row dict "
                            f"iteration has no columnar layout",
                            gen.iter,
                            hint="iterate the block's row tuples (or a "
                                 "materialized column vector) instead of "
                                 "a per-row dict view")

    def _check_rex101(self, node, calls) -> None:
        charges = any(_is_charge_call(c) for c in calls)
        for call in calls:
            clock = _is_wall_clock_call(call, self.from_imports)
            if clock is None:
                continue
            if charges:
                self.emit(
                    "REX101",
                    f"{clock}() read inside {node.name!r}, which charges "
                    f"simulated resource time: wall-clock must never "
                    f"influence charged paths",
                    call,
                    hint="hoist the timing out of the charged function "
                         "or derive the duration from the cost model")

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Call(self, node: ast.Call) -> None:
        clock = _is_wall_clock_call(node, self.from_imports)
        if clock == "time.time":
            self.emit(
                "REX102",
                "time.time() measures civil time; durations must use "
                "time.perf_counter()",
                node,
                hint="use time.perf_counter() (monotonic) for intervals; "
                     "noqa only for genuine timestamps")
        self._check_setattr_mutation(node)
        self.generic_visit(node)

    # -- REX103 ----------------------------------------------------------
    def _visit_loop(self, node) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    visit_AsyncFor = _visit_loop
    visit_While = _visit_loop

    # -- REX106 ----------------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        # sorted(...) (or any other wrapping call) breaks the set-expr
        # match, so ordered iteration is exempt by construction.
        if _is_set_expr(node.iter, self._set_names):
            callee = _routing_call_in(node.body)
            if callee is not None:
                self.emit(
                    "REX106",
                    f"iteration over a set drives {callee}(): message/"
                    f"delta order inherits unspecified set iteration "
                    f"order",
                    node,
                    hint="wrap the iterable in sorted(...) or keep an "
                         "ordered list; set iteration order varies with "
                         "hash seeding and insertion history")
        self._visit_loop(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self._loop_depth and isinstance(node.op, ast.Add):
            target_name = _terminal_name(node.target) or ""
            if (_CHARGE_TOTAL_RE.search(target_name)
                    or _mentions_charge_total(node.value)):
                self.emit(
                    "REX103",
                    f"order-dependent float accumulation "
                    f"'{target_name} += ...' in a loop",
                    node,
                    hint="collect the addends and combine with math.fsum "
                         "(or a {value: count} tally); noqa for "
                         "inherently sequential prefix sums")
        self.generic_visit(node)

    # -- REX104 / REX107 -------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        must_freeze = self._suffix_config(_HOT_RECORD_MODULES)
        if must_freeze is not None:
            self._check_hot_record(node, bool(must_freeze))
        self._check_reads_declaration(node)
        self.generic_visit(node)

    def _check_reads_declaration(self, node: ast.ClassDef) -> None:
        """REX107: an ``update`` body reading delta-row positions its
        class-level ``reads=`` declaration omits."""
        declared: Optional[Set[int]] = None
        for stmt in node.body:
            target = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                target, value = stmt.target, stmt.value
            if not (isinstance(target, ast.Name) and target.id == "reads"):
                continue
            if isinstance(value, (ast.Tuple, ast.List)) and all(
                    isinstance(e, ast.Constant) and isinstance(e.value, int)
                    for e in value.elts):
                declared = {e.value for e in value.elts}
        if declared is None:
            return
        update = next(
            (s for s in node.body
             if isinstance(s, ast.FunctionDef) and s.name == "update"),
            None)
        if update is None:
            return
        params = [a.arg for a in
                  update.args.posonlyargs + update.args.args]
        if "delta" not in params:
            return
        # Reuse the effect extractor's read collector on the method AST.
        # Every collected read is a real read even when the row also
        # escapes (escapes widen exactness, they never add positions),
        # so firing on extracted-minus-declared is sound and the rule
        # stays silent on opaque/escaping bodies.
        from repro.analysis.effects import _RowReads
        visitor = _RowReads({"delta.row", "delta.old"})
        for stmt in update.body:
            visitor.visit(stmt)
        undeclared = sorted(visitor.reads - declared)
        if undeclared:
            self.emit(
                "REX107",
                f"{node.name}.update reads delta-row position"
                f"{'s' if len(undeclared) > 1 else ''} {undeclared} "
                f"not covered by its declared reads= metadata",
                update,
                hint="extend reads= to cover every position the body "
                     "touches; the lineage analyzer and narrowing "
                     "rewrites trust the declaration")

    def _check_hot_record(self, node: ast.ClassDef,
                          must_freeze: bool) -> None:
        for deco in node.decorator_list:
            name = None
            kwargs: Dict[str, object] = {}
            if isinstance(deco, ast.Name):
                name = deco.id
            elif isinstance(deco, ast.Call):
                if isinstance(deco.func, ast.Name):
                    name = deco.func.id
                kwargs = {kw.arg: getattr(kw.value, "value", None)
                          for kw in deco.keywords if kw.arg}
            if name != "dataclass":
                continue
            if not kwargs.get("slots"):
                self.emit(
                    "REX104",
                    f"hot-path record {node.name!r} is a dataclass "
                    f"without slots=True",
                    node,
                    hint="declare @dataclass(slots=True) — per-tuple "
                         "records must not carry instance dicts")
            if must_freeze and not kwargs.get("frozen"):
                self.emit(
                    "REX104",
                    f"hot-path record {node.name!r} must be frozen "
                    f"(immutable value object)",
                    node,
                    hint="declare @dataclass(frozen=True, slots=True)")

    # -- REX105 ----------------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_attr_mutation(target, node)
        self.generic_visit(node)

    def _check_attr_mutation(self, target: ast.expr,
                             node: ast.AST) -> None:
        if not isinstance(target, ast.Attribute):
            return
        base = target.value
        base_name = (base.id if isinstance(base, ast.Name) else
                     base.attr if isinstance(base, ast.Attribute) else "")
        for fragment, attrs in _IMMUTABLE_ATTRS.items():
            if fragment in base_name.lower() and target.attr in attrs:
                if any(self.posix_name.endswith(d)
                       for d in _RECORD_DEFINERS):
                    return
                self.emit(
                    "REX105",
                    f"assignment to {base_name}.{target.attr}: "
                    f"Delta/Punctuation are immutable value objects",
                    node,
                    hint="build a new record instead of mutating "
                         "(dataclasses.replace or the constructor)")

    def _check_setattr_mutation(self, call: ast.Call) -> None:
        func = call.func
        is_setattr = (
            (isinstance(func, ast.Attribute) and func.attr == "__setattr__")
            or (isinstance(func, ast.Name) and func.id == "setattr"))
        if not is_setattr or not call.args:
            return
        first = call.args[0]
        name = (first.id if isinstance(first, ast.Name) else
                first.attr if isinstance(first, ast.Attribute) else "")
        for fragment in _IMMUTABLE_ATTRS:
            if fragment in name.lower():
                if any(self.posix_name.endswith(d)
                       for d in _RECORD_DEFINERS):
                    return
                self.emit(
                    "REX105",
                    f"__setattr__ on {name!r} bypasses Delta/Punctuation "
                    f"immutability",
                    call,
                    hint="build a new record instead of mutating")


def lint_source(source: str, filename: str = "<string>"
                ) -> List[Diagnostic]:
    """Lint one module's source text."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [make("REX100", f"could not parse: {exc.msg}",
                     location=f"{filename}:{exc.lineno or 0}")]
    linter = _Linter(filename, source)
    linter.visit(tree)
    return linter.findings


def _python_files(paths: Sequence[str]) -> Iterable[str]:
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = [d for d in dirnames
                           if d not in ("__pycache__", ".git")]
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


def lint_paths(paths: Sequence[str]) -> DiagnosticReport:
    """Lint every ``.py`` file under the given files/directories."""
    report = DiagnosticReport()
    for path in _python_files(paths):
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
        report.extend(lint_source(source, path))
    return report


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Run the simulator-invariant linter.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories (default: src)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    args = parser.parse_args(argv)
    report = lint_paths(args.paths or ["src"])
    if args.format == "json":
        print(report.to_json(indent=2))
    else:
        print(report.format())
    return 1 if report else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
