"""RexSan: runtime delta-invariant sanitizer (the REX200 series).

The static analyzer (REX0xx/REX1xx) can only prove what is visible in the
plan and source text.  The paper's core correctness claims are *runtime*
invariants: in-place delta revision of stateful operators must be
equivalent to naive refresh (Section 3, Definition 1), stratified
punctuation must advance monotonically (Section 4.2), exchanges must
conserve deltas at stratum barriers, and incremental recovery must restore
exactly the checkpointed Δ-sets (Section 4.3).  This module checks those
invariants while a query executes.

Activation is ``ExecOptions(sanitize=...)``:

* ``"off"``    — no sanitizer object is created at all; the simulated
  metrics fingerprint is bit-identical to an uninstrumented run (and so is
  the wall clock, to the extent Python allows).
* ``"sample"`` — per-key checks cover a deterministic 1-in-16 key sample
  (seeded by ``sanitize_seed``); barrier-level checks (punctuation,
  exchange conservation) always run.  Budgeted for <10% wall overhead.
* ``"full"``   — every key, every delta.

The sanitizer mirrors :class:`repro.obs.ObsContext`'s instrumentation
idiom: instance-attribute method wrapping installed at ``Operator.open``,
purely passive — it never charges simulated resources, so any ``sanitize``
level keeps ``QueryMetrics.fingerprint`` identical.

Findings are :class:`repro.analysis.diagnostics.Diagnostic` objects
(REX200-REX204) collected into the report attached to ``QueryResult``.
The schedule-perturbation race detector (REX205/REX206) lives in
:mod:`repro.analysis.determinism`.

The delta-polarity abstract interpretation (:mod:`repro.analysis.absint`)
changes the sanitizer's economics: operators carrying static proofs
(``proof_polarity`` / ``proof_monotone`` / ``proof_insert_only_ports``)
are *downgraded* from the heavy invariant machinery — shadow replay for
group-by, the per-delta legality pass for fixpoints — to assertion mode:
one kind-set probe per batch checking that the deltas actually flowing
match what was proven.  A contradiction is a hard :data:`REX307` error
("runtime delta violated a static proof"), strictly worse than any
REX200-series warning, because it means either an operator emitted an
undeclared delta kind or a UDF's ``emits_polarity`` declaration lies.
Observed per-port kind sets are kept for every instrumented stateful
operator (proof or not) and exposed via :meth:`Sanitizer.observed_polarities`
so tests can check static verdicts against full runtime observation.
"""

from __future__ import annotations

import math
from collections import Counter
from time import perf_counter
from typing import Any, Dict, List, Optional

from repro.analysis.diagnostics import DiagnosticReport, make
from repro.common.deltas import Delta, DeltaOp

LEVELS = ("off", "sample", "full")

#: 1-in-SAMPLE_MOD keys are checked at ``sample`` level.
SAMPLE_MOD = 16

#: At most this many diagnostics are recorded per code (violations beyond
#: the cap are still counted in ``Sanitizer.violations``).
MAX_DIAGNOSTICS_PER_CODE = 16

#: Per-key shadow multisets stop growing past this many rows; saturated
#: keys are excluded from re-aggregation instead of producing false
#: positives.
SHADOW_CAP = 4096

#: Per-operator row -> (key, sampled) memo entries; past this the memo
#: stops admitting new rows (existing entries keep serving hits).
ROW_MEMO_CAP = 65536

_MISSING = object()


def _values_close(a: Any, b: Any) -> bool:
    """Equality with float tolerance: a shadow refold may reassociate a
    float reduction, so compare numerics to ~9 significant digits."""
    if a is b:
        return True
    if isinstance(a, float) and isinstance(b, (int, float)):
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)
    if isinstance(b, float) and isinstance(a, (int, float)):
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)
    if isinstance(a, tuple) and isinstance(b, tuple):
        return (len(a) == len(b)
                and all(_values_close(x, y) for x, y in zip(a, b)))
    return a == b


class _ShadowGroup:
    """Per-key shadow for one sampled group-by group.

    ``pure`` keys (only INSERT/DELETE/REPLACE ever seen) are verified by
    *differential re-aggregation*: the sanitizer maintains the group's
    logical row multiset and refolds it from scratch, so a delta handler
    that forgets to retract an old image diverges from the refold.  Keys
    that receive δ value-updates have no multiset interpretation; they are
    verified by *replaying* the same delta stream into fresh aggregate
    state, which catches handlers with hidden self-state.
    """

    __slots__ = ("multiset", "states", "pure", "saturated")

    def __init__(self):
        self.multiset: Counter = Counter()
        self.states: Optional[List[Any]] = None
        self.pure = True
        self.saturated = False


class _OpShadow:
    """Sanitizer-side state for one instrumented stateful operator."""

    __slots__ = ("node_id", "batches", "groups", "dirty", "punct_last",
                 "punct_final", "row_memo", "batch_counter", "observed")

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.batches: List[list] = []       # recorded (list-of-Delta) refs
        self.groups: Dict[tuple, _ShadowGroup] = {}
        self.dirty: Dict[tuple, None] = {}  # keys replayed this stratum
        self.punct_last: Dict[int, int] = {}    # port -> last stratum seen
        self.punct_final: Dict[int, bool] = {}  # port -> saw end-of-query
        # row -> (key, sampled): group-by input rows repeat heavily across
        # strata (δ-update targets especially), so the per-delta
        # key_fn + hash work folds into one dict probe on repeats.
        self.row_memo: Dict[tuple, tuple] = {}
        self.batch_counter = 0              # sample-level batch striding
        self.observed: Dict[int, set] = {}  # port -> delta kinds seen


class _NetworkTee:
    """Composes the sanitizer's passive network taps with an existing
    observer (the obs layer), preserving its behaviour exactly."""

    __slots__ = ("sanitizer", "inner")

    def __init__(self, sanitizer: "Sanitizer", inner):
        self.sanitizer = sanitizer
        self.inner = inner

    def on_send(self, msg, nbytes: int) -> None:
        self.sanitizer._on_send(msg)
        if self.inner is not None:
            self.inner.on_send(msg, nbytes)

    def on_deliver(self, msg) -> None:
        self.sanitizer._on_deliver(msg)
        if self.inner is not None:
            self.inner.on_deliver(msg)

    def on_drop(self, msg) -> None:
        self.sanitizer._on_drop(msg)
        inner_drop = getattr(self.inner, "on_drop", None)
        if inner_drop is not None:
            inner_drop(msg)


class Sanitizer:
    """Runtime invariant checker for one query execution.

    Created by the executor when ``ExecOptions.sanitize`` is ``"sample"``
    or ``"full"``; instruments operators as they open, tees the simulated
    network, and receives barrier/checkpoint callbacks from the driver.
    """

    def __init__(self, level: str = "full", seed: int = 0):
        if level not in LEVELS or level == "off":
            raise ValueError(f"sanitize level must be 'sample' or 'full', "
                             f"got {level!r}")
        self.level = level
        self.seed = seed
        self._full = level == "full"
        self._seed_mix = hash(("rexsan", seed))
        self.report = DiagnosticReport()
        self.checks = 0
        self.violations = 0
        self.overhead_seconds = 0.0
        self._code_counts: Dict[str, int] = {}
        self._shadows: Dict[int, _OpShadow] = {}      # id(op) -> shadow
        self._ops: Dict[int, object] = {}             # id(op) -> op
        self._senders: List[object] = []
        # Exchange conservation (REX203): cumulative delta counts.
        self._sent: Counter = Counter()
        self._delivered: Counter = Counter()
        self._dropped: Counter = Counter()
        # Checkpoint fingerprints (REX204): fixpoint key -> row image as
        # last replicated.
        self._ckpt: Dict[tuple, tuple] = {}

    # ------------------------------------------------------------------
    # Diagnostics plumbing
    # ------------------------------------------------------------------
    def _emit(self, code: str, message: str, location: str = "",
              hint: str = "") -> None:
        self.violations += 1
        n = self._code_counts.get(code, 0)
        if n < MAX_DIAGNOSTICS_PER_CODE:
            self._code_counts[code] = n + 1
            self.report.add(make(code, message, location=location, hint=hint))

    def _sampled(self, key) -> bool:
        if self._full:
            return True
        try:
            return (hash(key) ^ self._seed_mix) % SAMPLE_MOD == 0
        except TypeError:
            return False

    def _node_sampled(self, node_id: int) -> bool:
        """Whether a node's group-by shadows run at ``sample`` level.

        Exchanges partition group keys across nodes, so every key's
        *complete* delta stream lives on its owner — sampling whole nodes
        is as stream-preserving as sampling keys, and it removes the
        per-delta key pass from un-sampled nodes entirely.  Node 0 is
        always in so a single-node cluster still gets coverage.
        """
        if self._full:
            return True
        return node_id == 0 or (node_id ^ self._seed_mix) % 4 == 0

    # ------------------------------------------------------------------
    # Network tee (REX203)
    # ------------------------------------------------------------------
    def install_network(self, network) -> None:
        if isinstance(network.observer, _NetworkTee):
            return
        network.observer = _NetworkTee(self, network.observer)

    def _on_send(self, msg) -> None:
        if msg.deltas:
            self._sent[msg.exchange] += len(msg.deltas)

    def _on_deliver(self, msg) -> None:
        if msg.deltas:
            self._delivered[msg.exchange] += len(msg.deltas)

    def _on_drop(self, msg) -> None:
        if msg.deltas:
            self._dropped[msg.exchange] += len(msg.deltas)

    # ------------------------------------------------------------------
    # Operator instrumentation (installed from Operator.open)
    # ------------------------------------------------------------------
    def instrument_operator(self, op, ctx) -> None:
        if getattr(op, "_rexsan", None) is self:
            return
        op._rexsan = self
        shadow = _OpShadow(ctx.node_id)
        self._shadows[id(op)] = shadow
        self._ops[id(op)] = op
        self._wrap_punctuation(op, shadow)

        # Late imports keep repro.analysis importable without dragging the
        # operator layer in for purely static users.
        from repro.operators.exchange import RehashSender
        from repro.operators.fixpoint import Fixpoint
        from repro.operators.groupby import GroupBy
        from repro.operators.join import HashJoin

        if isinstance(op, GroupBy):
            covered = self._wrap_polarity(op, shadow, ctx.batch)
            if not covered and self._node_sampled(ctx.node_id):
                self._wrap_groupby(op, shadow, ctx.batch)
        elif isinstance(op, Fixpoint):
            covered = (self._wrap_polarity(op, shadow, ctx.batch)
                       and getattr(op, "proof_monotone", False))
            if not covered:
                self._wrap_fixpoint(op, shadow, ctx.batch)
        elif isinstance(op, HashJoin):
            self._wrap_polarity(op, shadow, ctx.batch)
            ports = getattr(op, "proof_insert_only_ports", None) or ()
            covered = all(p in ports for p in (0, 1)
                          if not op._uses_handler(p))
            if not covered:
                self._wrap_join(op, shadow, ctx.batch)
        elif isinstance(op, RehashSender):
            self._senders.append(op)
            self._wrap_sender(op, shadow)

    def reset_operator(self, op) -> None:
        """The executor rebuilt this operator's state (checkpoint-resume
        recovery); discard the shadow so re-derived state isn't diffed
        against pre-failure history."""
        shadow = self._shadows.get(id(op))
        if shadow is not None:
            # Clear in place: the push_batch wrapper holds a bound
            # ``append`` to this exact list.
            shadow.batches.clear()
            shadow.groups = {}
            shadow.dirty = {}

    # -- static-proof assertions (REX307) -------------------------------
    def _wrap_polarity(self, op, shadow: _OpShadow, batch: bool) -> bool:
        """Observe each arriving delta kind per input port and assert it
        against the static polarity proof.

        Installed on every instrumented stateful operator (proof or not)
        so :meth:`observed_polarities` always reflects what actually
        flowed.  The per-batch cost is one kind-set scan plus a set
        difference — once a port's kinds have all been seen, the probe
        short-circuits.  A delta kind outside the proven set is a hard
        REX307 error.

        Returns True when the operator carries an exact polarity proof
        (``proof_polarity``), i.e. the caller may downgrade the heavy
        invariant machinery to this assertion mode — the proof-directed
        payoff item (2).
        """
        allowed = getattr(op, "proof_polarity", None)
        insert_ports = getattr(op, "proof_insert_only_ports", None) or ()
        observed = shadow.observed
        loc = f"{op.name}@n{shadow.node_id}"
        insert_only = frozenset((DeltaOp.INSERT,))

        def check(deltas, port):
            kinds = {d.op for d in deltas}
            seen = observed.get(port)
            if seen is None:
                seen = observed[port] = set()
            fresh = kinds - seen
            if not fresh:
                return
            seen |= fresh
            self.checks += 1
            limit = insert_only if port in insert_ports else allowed
            if limit is None:
                return
            bad = fresh - limit
            if bad:
                syms = ",".join(sorted(k.value for k in bad))
                proven = ",".join(sorted(k.value for k in limit))
                self._emit(
                    "REX307",
                    f"runtime delta kind(s) {{{syms}}} on port {port} "
                    f"contradict the static polarity proof {{{proven}}}",
                    location=loc,
                    hint="either an operator emitted an undeclared delta "
                         "kind or a UDF's emits_polarity declaration is "
                         "wrong; rerun with ExecOptions(absint=False) and "
                         "sanitize='full' to localize the source")

        if batch:
            orig_push = op.push_batch

            def push_batch(deltas, port: int = 0):
                if deltas:
                    check(deltas, port)
                return orig_push(deltas, port)

            op.push_batch = push_batch
        else:
            orig_process = op.process

            def process(d, port: int):
                check((d,), port)
                return orig_process(d, port)

            op.process = process
        return allowed is not None

    def observed_polarities(self) -> Dict[str, Dict[int, frozenset]]:
        """Runtime-observed delta kinds per stateful operator and input
        port (instances with the same name on the same node are unioned).
        This is the hook the property suite uses to check that static
        polarity verdicts are never contradicted by real executions."""
        out: Dict[str, Dict[int, frozenset]] = {}
        for op_id, shadow in self._shadows.items():
            if not shadow.observed:
                continue
            op = self._ops[op_id]
            entry = out.setdefault(f"{op.name}@n{shadow.node_id}", {})
            for port, kinds in shadow.observed.items():
                entry[port] = entry.get(port, frozenset()) | frozenset(kinds)
        return out

    # -- punctuation monotonicity (REX202) ------------------------------
    def _wrap_punctuation(self, op, shadow: _OpShadow) -> None:
        orig = op.on_punctuation
        last = shadow.punct_last
        final = shadow.punct_final

        def on_punctuation(punct, port: int = 0):
            self.checks += 1
            if final.get(port):
                self._emit(
                    "REX202",
                    f"punctuation {punct!r} arrived on port {port} after "
                    "end-of-query",
                    location=f"{op.name}@n{shadow.node_id}",
                    hint="a source kept emitting after the final stratum")
            prev = last.get(port, -1)
            if punct.stratum < prev:
                self._emit(
                    "REX202",
                    f"stratum marker regressed on port {port}: "
                    f"{punct.stratum} after {prev}",
                    location=f"{op.name}@n{shadow.node_id}",
                    hint="stratum punctuation must be non-decreasing")
            else:
                last[port] = punct.stratum
            if punct.is_final:
                final[port] = True
            return orig(punct, port)

        op.on_punctuation = on_punctuation

    # -- group-by re-aggregation (REX201) and legality (REX200) ---------
    def _wrap_groupby(self, op, shadow: _OpShadow, batch: bool) -> None:
        record = shadow.batches.append
        if batch:
            orig_push = op.push_batch

            def push_batch(deltas, port: int = 0):
                if deltas:
                    record(deltas)
                return orig_push(deltas, port)

            op.push_batch = push_batch
        else:
            orig_process = op.process

            def process(delta, port: int):
                record((delta,))
                return orig_process(delta, port)

            op.process = process

        orig_end = op.on_stratum_end

        def on_stratum_end(punct):
            t0 = perf_counter()
            self._groupby_replay(op, shadow)
            self.overhead_seconds += perf_counter() - t0
            result = orig_end(punct)
            t0 = perf_counter()
            self._groupby_verify(op, shadow)
            if op.clear_states_each_stratum or op.reset_emissions_each_stratum:
                shadow.groups.clear()
            self.overhead_seconds += perf_counter() - t0
            return result

        op.on_stratum_end = on_stratum_end

    def _groupby_replay(self, op, shadow: _OpShadow) -> None:
        """Fold the recorded delta stream into per-key shadows, mirroring
        GroupBy.process's key handling (REPLACE straddles decompose)."""
        # Copy-and-clear in place: the push_batch wrapper holds a bound
        # ``append`` to this exact list, so rebinding would orphan it.
        batches = shadow.batches[:]
        shadow.batches.clear()
        if not batches:
            return
        key_fn = op.key_fn
        groups = shadow.groups
        sampled = self._sampled
        loc = f"{op.name}@n{shadow.node_id}"
        insert, delete = DeltaOp.INSERT, DeltaOp.DELETE
        replace, update = DeltaOp.REPLACE, DeltaOp.UPDATE
        row_memo = shadow.row_memo
        work: List[tuple] = []  # (key, op, row, old_row, delta)
        for deltas in batches:
            for d in deltas:
                dop = d.op
                if dop is replace:
                    old_key = key_fn(d.old)
                    new_key = key_fn(d.row)
                    if old_key != new_key:
                        if sampled(old_key):
                            work.append((old_key, delete, d.old, None, d))
                        if sampled(new_key):
                            work.append((new_key, insert, d.row, None, d))
                        continue
                    if sampled(new_key):
                        work.append((new_key, replace, d.row, d.old, d))
                    continue
                row = d.row
                try:
                    key, is_sampled = row_memo[row]
                except KeyError:
                    key = key_fn(row)
                    is_sampled = sampled(key)
                    if len(row_memo) < ROW_MEMO_CAP:
                        row_memo[row] = (key, is_sampled)
                except TypeError:  # unhashable row: uncacheable lookup
                    key = key_fn(row)
                    is_sampled = sampled(key)
                if is_sampled:
                    work.append((key, dop, row, d.old, d))
        dirty = shadow.dirty
        for key, dop, row, old_row, d in work:
            self.checks += 1
            dirty[key] = None
            sg = groups.get(key)
            if sg is None:
                sg = groups[key] = _ShadowGroup()
            if sg.saturated:
                continue
            try:
                if dop is update:
                    if sg.pure:
                        sg.pure = False
                        sg.states = self._refold_states(op, sg.multiset)
                    self._replay_into_states(op, sg.states, d)
                    continue
                if not sg.pure:
                    self._replay_into_states(op, sg.states, d)
                    continue
            except Exception:
                # The aggregator rejects the shadow's synthetic fold
                # (e.g. a δ-only UDA offered a refold INSERT); exclude the
                # key rather than crash the query from inside a check.
                sg.saturated = True
                continue
            ms = sg.multiset
            if dop is insert:
                ms[row] += 1
                if len(ms) > SHADOW_CAP:
                    sg.saturated = True
            elif dop is delete:
                if ms[row] <= 0:
                    self._emit(
                        "REX200",
                        f"DELETE of a row never inserted into group "
                        f"{key!r}: {row!r}",
                        location=loc,
                        hint="upstream emitted a deletion for state that "
                             "does not exist (Definition 1)")
                ms[row] -= 1
            else:  # same-key REPLACE
                if ms[old_row] <= 0:
                    self._emit(
                        "REX200",
                        f"REPLACE in group {key!r} retracts an image that "
                        f"is not in the group: {old_row!r}",
                        location=loc,
                        hint="the old image of a replacement must match "
                             "existing state (Definition 1)")
                ms[old_row] -= 1
                ms[row] += 1

    @staticmethod
    def _refold_states(op, multiset: Counter) -> List[Any]:
        states = [spec.aggregator.init_state() for spec in op.specs]
        for row, n in multiset.items():
            if n <= 0:
                continue
            d = Delta(DeltaOp.INSERT, row)
            for i, spec in enumerate(op.specs):
                value = spec.arg(row)
                for _ in range(n):
                    states[i] = spec.aggregator.agg_state(
                        states[i], d, value, None)
        return states

    @staticmethod
    def _replay_into_states(op, states: List[Any], d: Delta) -> None:
        is_update = d.op is DeltaOp.UPDATE
        is_replace = d.op is DeltaOp.REPLACE
        for i, spec in enumerate(op.specs):
            value = None if is_update else spec.arg(d.row)
            old_value = spec.arg(d.old) if is_replace else None
            states[i] = spec.aggregator.agg_state(states[i], d, value,
                                                  old_value)

    def _groupby_verify(self, op, shadow: _OpShadow) -> None:
        """After the stratum flush, each sampled group's emitted aggregate
        must equal the shadow's independent re-aggregation."""
        loc = f"{op.name}@n{shadow.node_id}"
        for key, group in op.groups.items():
            if group.live < 0 and self._sampled(key):
                self.checks += 1
                self._emit(
                    "REX200",
                    f"group {key!r} has negative live count "
                    f"({group.live}): more deletions than insertions",
                    location=loc,
                    hint="UPDATE/DELETE deltas must hit existing state "
                         "rows (Definition 1)")
        dirty = shadow.dirty
        shadow.dirty = {}
        for key in dirty:
            sg = shadow.groups.get(key)
            if sg is None or sg.saturated:
                continue
            self.checks += 1
            try:
                if sg.pure:
                    states = self._refold_states(op, sg.multiset)
                    total = sum(n for n in sg.multiset.values() if n > 0)
                else:
                    states = sg.states
                    total = None  # δ streams have no row-count notion
                expected = tuple(spec.aggregator.agg_result(state)
                                 for spec, state in zip(op.specs, states))
            except Exception:
                sg.saturated = True
                continue
            group = op.groups.get(key)
            if group is None:
                empty = ((total is None or total <= 0)
                         and all(v is None for v in expected))
                if not empty:
                    self._emit(
                        "REX201",
                        f"group {key!r} was flushed away but re-aggregation "
                        f"of its delta stream yields {expected!r}",
                        location=loc,
                        hint="the aggregate state lost contributions its "
                             "delta stream still contains")
                continue
            if group.last is None:
                continue  # never emitted this stratum; nothing to diff
            emitted = tuple(group.last[len(key):])
            if not _values_close(emitted, expected):
                self._emit(
                    "REX201",
                    f"group {key!r} emitted {emitted!r} but differential "
                    f"re-aggregation of its delta stream yields "
                    f"{expected!r}",
                    location=loc,
                    hint="the delta handler's incremental state update is "
                         "not equivalent to refresh (check its "
                         "DELETE/REPLACE retraction rules)")

    # -- fixpoint annotation legality (REX200) --------------------------
    def _wrap_fixpoint(self, op, shadow: _OpShadow, batch: bool) -> None:
        if op.semantics not in ("keyed",) and op.while_handler is None:
            return  # set/bag semantics absorb duplicates by construction
        key_fn = op.key_fn
        if key_fn is None:
            return

        loc = f"{op.name}@n{shadow.node_id}"
        sampled = self._sampled
        state = op.state
        insert, delete = DeltaOp.INSERT, DeltaOp.DELETE
        replace = DeltaOp.REPLACE

        def prepare(deltas):
            """Pre-state snapshot for sampled keys occurring exactly once
            in the batch (multi-occurrence keys would need interleaved
            snapshots; skip them)."""
            counts: Counter = Counter()
            keys = []
            for d in deltas:
                try:
                    k = key_fn(d.row)
                except Exception:
                    keys.append(None)
                    counts[None] += 1
                    continue
                keys.append(k)
                counts[k] += 1
            pre = {}
            for d, k in zip(deltas, keys):
                if k is None or counts[k] != 1 or not sampled(k):
                    continue
                pre[k] = state.get(k)
                self.checks += 1
                if d.op is delete and pre[k] is None:
                    self._emit(
                        "REX200",
                        f"DELETE for key {k!r} hit no existing fixpoint "
                        f"row: {d.row!r}",
                        location=loc,
                        hint="upstream retracted a row that was never "
                             "derived (Definition 1)")
            return pre

        def check_admitted(admitted, pre):
            for d in admitted:
                try:
                    k = key_fn(d.row)
                except Exception:
                    continue
                p = pre.get(k, _MISSING)
                if p is _MISSING:
                    continue
                self.checks += 1
                if d.op is insert:
                    if p == d.row and p is not None and not op.admit_unchanged:
                        self._emit(
                            "REX200",
                            f"duplicate derivation admitted for key {k!r}: "
                            f"{d.row!r} equals existing state",
                            location=loc,
                            hint="duplicate inserts must be eliminated, "
                                 "not re-admitted (Definition 1)")
                elif d.op is replace:
                    if p is None:
                        self._emit(
                            "REX200",
                            f"REPLACE admitted for key {k!r} with no "
                            f"pre-existing row",
                            location=loc,
                            hint="a replacement needs an existing image "
                                 "to retract")
                    elif d.old != p:
                        self._emit(
                            "REX200",
                            f"REPLACE for key {k!r} retracts {d.old!r} but "
                            f"the pre-state row was {p!r}",
                            location=loc,
                            hint="stale old image: the handler disagrees "
                                 "with the operator's stored state")
                elif d.op is delete and p is None:
                    self._emit(
                        "REX200",
                        f"DELETE admitted for key {k!r} with no "
                        f"pre-existing row",
                        location=loc,
                        hint="upstream retracted a row that was never "
                             "derived (Definition 1)")

        # The legality check is batch-local (pre-state snapshot and the
        # admitted deltas of one push), so at sample level striding over
        # whole batches is as sound as striding over keys — and far
        # cheaper, since it skips the per-delta key pass entirely.
        full = self._full

        def skip_this_batch() -> bool:
            if full:
                return False
            shadow.batch_counter += 1
            return shadow.batch_counter % SAMPLE_MOD != 0

        if batch:
            orig_push = op.push_batch

            def push_batch(deltas, port: int = 0):
                if not deltas or skip_this_batch():
                    return orig_push(deltas, port)
                t0 = perf_counter()
                pre = prepare(deltas)
                self.overhead_seconds += perf_counter() - t0
                n0 = len(op.pending)
                result = orig_push(deltas, port)
                t0 = perf_counter()
                check_admitted(op.pending[n0:], pre)
                self.overhead_seconds += perf_counter() - t0
                return result

            op.push_batch = push_batch
        else:
            orig_process = op.process

            def process(d, port: int):
                if skip_this_batch():
                    return orig_process(d, port)
                t0 = perf_counter()
                pre = prepare((d,))
                self.overhead_seconds += perf_counter() - t0
                n0 = len(op.pending)
                result = orig_process(d, port)
                t0 = perf_counter()
                check_admitted(op.pending[n0:], pre)
                self.overhead_seconds += perf_counter() - t0
                return result

            op.process = process

    # -- join bucket legality (REX200) ----------------------------------
    def _wrap_join(self, op, shadow: _OpShadow, batch: bool) -> None:
        if op.handler is not None:
            # Handler-managed buckets have user-defined semantics; their
            # outputs are checked downstream (group-by / fixpoint shadows).
            return
        loc = f"{op.name}@n{shadow.node_id}"
        sampled = self._sampled

        def precheck(deltas, port):
            keys = op.keys[port]
            for d in deltas:
                if d.op is DeltaOp.INSERT:
                    continue
                target = d.old if d.op is DeltaOp.REPLACE else d.row
                try:
                    k = keys(target)
                except Exception:
                    continue
                if not sampled(k):
                    continue
                self.checks += 1
                bucket = op.buckets.get(k)
                side = bucket[port] if bucket is not None else ()
                if target not in side:
                    self._emit(
                        "REX200",
                        f"{d.op.name} on join input {port} targets a row "
                        f"absent from bucket {k!r}: {target!r}",
                        location=loc,
                        hint="UPDATE/DELETE must hit existing state rows "
                             "(Definition 1)")

        if batch:
            orig_push = op.push_batch

            def push_batch(deltas, port: int = 0):
                if deltas:
                    t0 = perf_counter()
                    precheck(deltas, port)
                    self.overhead_seconds += perf_counter() - t0
                return orig_push(deltas, port)

            op.push_batch = push_batch
        else:
            orig_process = op.process

            def process(d, port: int):
                t0 = perf_counter()
                precheck((d,), port)
                self.overhead_seconds += perf_counter() - t0
                return orig_process(d, port)

            op.process = process

    # -- sender barrier residue (REX203) --------------------------------
    def _wrap_sender(self, op, shadow: _OpShadow) -> None:
        orig = op.on_punctuation

        def on_punctuation(punct, port: int = 0):
            result = orig(punct, port)
            t0 = perf_counter()
            self.checks += 1
            residue = sum(len(b) for b in op._buffers.values())
            if residue:
                self._emit(
                    "REX203",
                    f"{residue} delta(s) left in exchange "
                    f"{op.exchange!r} send buffers at a stratum barrier",
                    location=f"{op.name}@n{shadow.node_id}",
                    hint="a sender must flush every destination buffer "
                         "when punctuation passes")
            self.overhead_seconds += perf_counter() - t0
            return result

        op.on_punctuation = on_punctuation

    # ------------------------------------------------------------------
    # Driver callbacks
    # ------------------------------------------------------------------
    def end_stratum(self, stratum: int) -> None:
        """Barrier check: with the network drained, every exchange must
        conserve deltas (sent == delivered + dropped-at-dead-nodes)."""
        t0 = perf_counter()
        for exchange, sent in self._sent.items():
            self.checks += 1
            seen = self._delivered[exchange] + self._dropped[exchange]
            if sent != seen:
                self._emit(
                    "REX203",
                    f"exchange {exchange!r} lost deltas by stratum "
                    f"{stratum}: {sent} sent vs {seen} delivered+dropped",
                    location=f"exchange {exchange}",
                    hint="deltas in flight across a drained barrier "
                         "indicate a delivery or registration bug")
        self.overhead_seconds += perf_counter() - t0

    def record_checkpoint(self, key, delta: Delta) -> None:
        """Fingerprint a replicated Δ-set entry (pre-failure image)."""
        if not self._sampled(key):
            return
        if delta.op is DeltaOp.DELETE:
            self._ckpt.pop(key, None)
        else:
            self._ckpt[key] = delta.row

    def verify_restored(self, key, row: tuple) -> None:
        """REX204: a recovered row must equal its checkpoint fingerprint."""
        expected = self._ckpt.get(key, _MISSING)
        if expected is _MISSING:
            return
        self.checks += 1
        if row != expected:
            self._emit(
                "REX204",
                f"recovery restored {row!r} for key {key!r} but the "
                f"checkpointed pre-failure image was {expected!r}",
                location="(recovery)",
                hint="a checkpoint replica diverged from the Δ-set that "
                     "was replicated (corruption or missed update)")

    def publish(self, registry) -> None:
        """Surface check/violation counts in the obs metrics registry."""
        registry.counter("sanitizer.checks").value = self.checks
        registry.counter("sanitizer.violations").value = self.violations
        registry.gauge("sanitizer.overhead_seconds").set(
            self.overhead_seconds)
