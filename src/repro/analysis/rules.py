"""Rule passes over logical plans (Layer 1 of the plan analyzer).

Each pass walks an :class:`~repro.optimizer.logical.LNode` tree and
appends :class:`~repro.analysis.diagnostics.Diagnostic` findings to a
report.  Passes are pure — they never mutate the plan — and every
finding carries the path of plan-node labels from the root so the user
can locate the offending operator in ``explain`` output.

The invariants come straight from the paper: stratified recursion and
exactly one feedback point (Section 3), pre-aggregation only for
composable UDAs with ``multiply`` compensation under multiplicative
joins (Section 5.2), hash co-location for every stateful operator
(Section 4.2), and delta streams only into operators that can interpret
them (Section 3.3).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity, make
from repro.operators.expressions import (
    BinaryOp,
    BoolOp,
    ColumnRef,
    Expr,
    FuncCall,
    Literal,
    TupleField,
)
from repro.optimizer.logical import (
    LAggCall,
    LApply,
    LFeedback,
    LFilter,
    LFixpoint,
    LGroupBy,
    LJoin,
    LNode,
    LProject,
    LRehash,
    LScan,
)
from repro.common.schema import Schema, SQLType

#: Signature of a rule pass: (root, emit) -> None.
RulePass = Callable[[LNode, Callable[[Diagnostic], None]], None]

BROADCAST = "broadcast"


# ---------------------------------------------------------------------------
# Tree walking with paths
# ---------------------------------------------------------------------------

def _walk_with_path(node: LNode, path: str = ""):
    """Yield (node, path) pairs; the path is '/'-joined operator labels."""
    here = f"{path}/{node.label()}" if path else node.label()
    yield node, here
    for child in node.children:
        yield from _walk_with_path(child, here)


def _subtree_has(node: LNode, kind) -> bool:
    return any(isinstance(n, kind) for n in node.walk())


def _feedbacks(node: LNode) -> List[LFeedback]:
    return [n for n in node.walk() if isinstance(n, LFeedback)]


# ---------------------------------------------------------------------------
# REX001 — stratification
# ---------------------------------------------------------------------------

def check_stratification(root: LNode, emit) -> None:
    """Aggregation/negation inside recursion must be stratum-separated.

    * A fixpoint nested inside another fixpoint's recursive branch is not
      stratified (the engine evaluates one fixpoint per plan; inner
      recursion would interleave two delta streams).
    * A NOT over columns of the recursive relation, applied inside the
      recursive branch, is non-monotone: a tuple derived in stratum *i*
      can invalidate derivations of stratum *i-1*.
    """
    for node, path in _walk_with_path(root):
        if not isinstance(node, LFixpoint):
            continue
        recursive = node.children[1]
        for inner, ipath in _walk_with_path(recursive, path):
            if isinstance(inner, LFixpoint):
                emit(make(
                    "REX001",
                    f"fixpoint {inner.cte_name!r} is nested inside the "
                    f"recursive branch of fixpoint {node.cte_name!r}",
                    location=ipath,
                    hint="split the query into two stratified fixpoints "
                         "(materialize the inner one first)"))
            if isinstance(inner, LFilter):
                _check_negation(inner, node, ipath, emit)


def _check_negation(filt: LFilter, fixpoint: LFixpoint, path: str,
                    emit) -> None:
    recursive_schema = fixpoint.schema

    def scan(expr: Expr, negated: bool) -> None:
        if isinstance(expr, BoolOp):
            inner_negated = negated or expr.op == "not"
            for operand in expr.operands:
                scan(operand, inner_negated)
            return
        if negated:
            over_recursive = [c for c in expr.columns()
                              if recursive_schema.has(c)]
            if over_recursive:
                emit(make(
                    "REX001",
                    f"negation over recursive column(s) "
                    f"{sorted(set(over_recursive))} of "
                    f"{fixpoint.cte_name!r} inside its own recursive "
                    f"branch is not stratified",
                    location=path,
                    hint="move the negated test out of the recursion or "
                         "restate it monotonically (e.g. via a while-state "
                         "handler)"))

    scan(filt.predicate, negated=False)


# ---------------------------------------------------------------------------
# REX002 — fixpoint shape and termination
# ---------------------------------------------------------------------------

def check_fixpoint_termination(root: LNode, emit) -> None:
    for node, path in _walk_with_path(root):
        if not isinstance(node, LFixpoint):
            continue
        base, recursive = node.children
        n_feedback = len(_feedbacks(recursive))
        if n_feedback != 1:
            emit(make(
                "REX002",
                f"recursive branch of {node.cte_name!r} references the "
                f"recursive relation {n_feedback} times (exactly one "
                f"feedback point is required)",
                location=path,
                hint="rewrite the recursive case to read the WITH "
                     "relation exactly once"))
        if _feedbacks(base):
            emit(make(
                "REX002",
                f"base case of {node.cte_name!r} references the recursive "
                f"relation (the base case must be non-recursive)",
                location=path,
                hint="seed the fixpoint from catalog tables only"))
        if node.union_all and not _has_contraction(recursive, node):
            emit(make(
                "REX002",
                f"fixpoint {node.cte_name!r} uses UNION ALL semantics and "
                f"its recursive branch has no contraction mechanism "
                f"(no filter, aggregation, or while-state handler): "
                f"termination relies entirely on the stratum cap",
                location=path,
                severity=Severity.WARNING,
                hint="add a convergence filter or a monotone while-state "
                     "handler, or run with an explicit --max-strata bound"))


def _has_contraction(recursive: LNode, fixpoint: LFixpoint) -> bool:
    """Anything that can shrink or refine the per-stratum delta set."""
    if fixpoint.while_handler_factory is not None:
        return True
    for n in recursive.walk():
        if isinstance(n, (LFilter, LGroupBy)):
            return True
        if isinstance(n, LJoin) and n.handler_factory is not None:
            return True
    return False


# ---------------------------------------------------------------------------
# REX003 / REX004 — UDA pre-aggregation pushdown legality
# ---------------------------------------------------------------------------

def check_preaggregation(root: LNode, emit) -> None:
    parents = _parent_map(root)
    for node, path in _walk_with_path(root):
        if not isinstance(node, LGroupBy) or not node.pre_aggregated:
            continue
        for agg in node.aggs:
            template = _template(agg)
            if template is None:
                continue
            if not getattr(template, "composable", False):
                emit(make(
                    "REX003",
                    f"pre-aggregated group-by applies non-composable "
                    f"aggregate {agg.name!r}: its partial results cannot "
                    f"be unioned and finally aggregated",
                    location=path,
                    hint="mark the UDA composable (and supply a "
                         "pre_aggregator) or remove the pushdown"))
        if not _has_final_aggregation(node, parents):
            emit(make(
                "REX003",
                f"partial (combiner) group-by on keys {node.keys} has no "
                f"final group-by above it: partial aggregates would "
                f"escape as query results",
                location=path,
                hint="place a final group-by on the same keys above the "
                     "repartitioning exchange"))
    _check_multiplicative_joins(root, emit)


def _template(agg: LAggCall):
    try:
        return agg.aggregator_factory()
    except Exception:
        return None


def _parent_map(root: LNode):
    parents = {}
    for node in root.walk():
        for child in node.children:
            parents[id(child)] = node
    return parents


def _has_final_aggregation(partial: LGroupBy, parents) -> bool:
    """A partial group-by is sound iff some ancestor re-aggregates it
    (directly, or after a join in the multiplicative-join rewrite where
    the compensation projection plays the finalizer)."""
    node = parents.get(id(partial))
    while node is not None:
        if isinstance(node, LGroupBy):
            return True
        if isinstance(node, LProject) and _has_multiply_compensation(node):
            return True
        node = parents.get(id(node))
    return False


def _has_multiply_compensation(project: LProject) -> bool:
    return any(isinstance(expr, FuncCall)
               and getattr(expr.udf, "name", "").startswith("multiply")
               for expr, _ in project.items)


def _check_multiplicative_joins(root: LNode, emit) -> None:
    """The Section 5.2 special case: pre-aggregation on *both* inputs of
    a non key-FK join under-counts group cardinalities and must be
    compensated with each UDA's ``multiply`` function.

    The optimizer's rewrite marks its side pre-aggregations with
    synthetic ``_cnt_*`` count columns; any join exhibiting that shape is
    checked for (a) ``multiply`` on every side aggregate and (b) a
    compensation projection above the join.
    """
    parents = _parent_map(root)
    for node, path in _walk_with_path(root):
        if not isinstance(node, LJoin) or node.handler_factory is not None:
            continue
        left, right = node.left, node.right
        if not (isinstance(left, LGroupBy) and isinstance(right, LGroupBy)):
            continue
        if not (_is_side_preagg(left) and _is_side_preagg(right)):
            continue
        for side in (left, right):
            for agg in side.aggs:
                template = _template(agg)
                if template is None or agg.name == "count":
                    continue
                if getattr(template, "multiply", None) is None:
                    emit(make(
                        "REX004",
                        f"aggregate {agg.name!r} is pre-aggregated on one "
                        f"input of a multiplicative join but supplies no "
                        f"multiply function",
                        location=path,
                        hint="define multiply(value, n) on the UDA or "
                             "disable both-sides pre-aggregation"))
        parent = parents.get(id(node))
        if not (isinstance(parent, LProject)
                and _has_multiply_compensation(parent)):
            emit(make(
                "REX004",
                "both inputs of a join are pre-aggregated but no multiply "
                "compensation projection sits above the join: group "
                "cardinalities would be under-counted",
                location=path,
                hint="project each partial through multiply(partial, "
                     "count_of_opposite_group) above the join"))


def _is_side_preagg(gb: LGroupBy) -> bool:
    """The rewrite's side group-bys carry a synthetic count column named
    ``_cnt_*`` (added 'transparently by the optimizer')."""
    return any(f.name.startswith("_cnt_") for f in gb.schema)


# ---------------------------------------------------------------------------
# REX005 / REX006 — partitioning soundness
# ---------------------------------------------------------------------------

Partitioning = Optional[Tuple[int, ...]]


def check_partitioning(root: LNode, emit, *,
                       missing_severity: Severity = Severity.ERROR) -> None:
    """Track hash-partitioning positionally through the tree; flag every
    stateful operator whose input does not arrive partitioned on its key
    (missing rehash) and every rehash that re-shuffles an already
    correctly partitioned stream (redundant exchange).

    ``missing_severity`` is downgraded to INFO by callers analyzing
    pre-exchange-placement trees, where the physical lowering will insert
    the missing exchanges itself.
    """
    _partitioning_of(root, "", emit, missing_severity)


def _require_part(part: Partitioning, wanted: Tuple[int, ...], node: LNode,
                  path: str, what: str, emit,
                  severity: Severity) -> Partitioning:
    if part == wanted:
        return wanted
    cols = ", ".join(node.schema[p].name for p in wanted) if wanted \
        else "<gather>"
    if part is None:
        have = "unknown"
    elif part == BROADCAST:
        have = "broadcast"
    else:
        have = ", ".join(str(p) for p in part) or "<gather>"
    emit(make(
        "REX005",
        f"{what} requires input partitioned on ({cols}) but the stream "
        f"arrives with partitioning [{have}] and no rehash in between",
        location=path,
        severity=severity,
        hint="insert a Rehash exchange on the operator's key (the "
             "optimizer's exchange placement does this automatically)"))
    return wanted


def _partitioning_of(node: LNode, path: str, emit,
                     severity: Severity) -> Partitioning:
    here = f"{path}/{node.label()}" if path else node.label()

    if isinstance(node, LScan):
        if node.partition_key is None:
            return None
        return (node.schema.index_of(node.partition_key),)

    if isinstance(node, LFeedback):
        return (node.schema.index_of(node.fixpoint_key),)

    if isinstance(node, (LFilter,)):
        return _partitioning_of(node.children[0], here, emit, severity)

    if isinstance(node, LApply):
        part = _partitioning_of(node.children[0], here, emit, severity)
        return part if node.mode == "extend" else None

    if isinstance(node, LProject):
        part = _partitioning_of(node.children[0], here, emit, severity)
        return _through_project(node, part)

    if isinstance(node, LRehash):
        child_part = _partitioning_of(node.children[0], here, emit, severity)
        if node.broadcast:
            if child_part == BROADCAST:
                emit(make("REX006",
                          "broadcast of an already-broadcast stream",
                          location=here,
                          hint="drop the inner broadcast exchange"))
            return BROADCAST
        if node.key is None:
            if child_part == ():
                emit(make("REX006",
                          "gather of an already-gathered stream",
                          location=here,
                          hint="drop the redundant gather exchange"))
            return ()
        wanted = (node.schema.index_of(node.key),)
        if child_part == wanted:
            emit(make(
                "REX006",
                f"rehash on {node.key!r} over a stream already "
                f"partitioned on that column",
                location=here,
                hint="drop the exchange; the input's partitioning "
                     "already satisfies the consumer"))
        return wanted

    if isinstance(node, LJoin):
        lpart = _partitioning_of(node.left, here, emit, severity)
        rpart = _partitioning_of(node.right, here, emit, severity)
        if node.condition is None:
            if rpart is not BROADCAST:
                emit(make(
                    "REX005",
                    "cross/handler join without a join condition needs "
                    "its mutable side broadcast to every worker",
                    location=here,
                    severity=severity,
                    hint="broadcast the smaller (mutable) input"))
            return None
        lcol, rcol = node.condition
        lpos = (node.left.schema.index_of(lcol),)
        rpos = (node.right.schema.index_of(rcol),)
        _require_part(lpart, lpos, node.left, here,
                      f"join input (left, key {lcol!r})", emit, severity)
        _require_part(rpart, rpos, node.right, here,
                      f"join input (right, key {rcol!r})", emit, severity)
        return lpos if node.handler_factory is None else None

    if isinstance(node, LGroupBy):
        part = _partitioning_of(node.children[0], here, emit, severity)
        if node.pre_aggregated:
            # A combiner aggregates whatever its worker holds locally.
            return part
        child_schema = node.children[0].schema
        if node.keys:
            wanted = tuple(child_schema.index_of(k) for k in node.keys)
            _require_part(part, wanted, node.children[0], here,
                          f"group-by on {node.keys}", emit, severity)
            return tuple(range(len(node.keys)))
        _require_part(part, (), node.children[0], here,
                      "global (keyless) aggregate", emit, severity)
        return ()

    if isinstance(node, LFixpoint):
        key_pos = node.schema.index_of(node.key)
        bpart = _partitioning_of(node.children[0], here, emit, severity)
        rpart = _partitioning_of(node.children[1], here, emit, severity)
        _require_part(bpart, (key_pos,), node.children[0], here,
                      f"fixpoint base case (key {node.key!r})", emit,
                      severity)
        _require_part(rpart, (key_pos,), node.children[1], here,
                      f"fixpoint recursive case (key {node.key!r})", emit,
                      severity)
        return (key_pos,)

    for child in node.children:
        _partitioning_of(child, here, emit, severity)
    return None


def _through_project(node: LProject, part: Partitioning) -> Partitioning:
    if part in (None, BROADCAST) or part == ():
        return part
    in_schema = node.children[0].schema
    out = []
    for pos in part:
        hit = None
        for i, (expr, _) in enumerate(node.items):
            if isinstance(expr, ColumnRef) \
                    and in_schema.has(expr.name) \
                    and in_schema.index_of(expr.name) == pos:
                hit = i
                break
        if hit is None:
            return None
        out.append(hit)
    return tuple(out)


# ---------------------------------------------------------------------------
# REX007 — delta-annotation soundness
# ---------------------------------------------------------------------------

def check_delta_soundness(root: LNode, emit) -> None:
    """Handler joins are the producers of programmable ``δ(E)`` deltas;
    their payloads are only meaningful to an interpreting stateful
    consumer (an aggregation, or the fixpoint's while-state handler).
    A handler join whose output reaches the fixpoint with neither in
    between would feed raw payloads into keyed replacement semantics.

    Conversely a handler join placed inside a recursive branch but not
    fed by the feedback never sees the recursion's deltas.
    """
    parents = _parent_map(root)
    for node, path in _walk_with_path(root):
        if not isinstance(node, LFixpoint):
            continue
        recursive = node.children[1]
        for inner, ipath in _walk_with_path(recursive, path):
            if not isinstance(inner, LJoin) \
                    or inner.handler_factory is None:
                continue
            if not _feedbacks(inner):
                emit(make(
                    "REX007",
                    "join delta handler inside the recursive branch is "
                    "not fed by the recursive relation: it will never "
                    "observe the recursion's deltas",
                    location=ipath,
                    hint="join the handler's mutable side with the WITH "
                         "relation (the fixpoint receiver)"))
            if not _payload_interpreted(inner, node, parents):
                emit(make(
                    "REX007",
                    "join delta handler output flows into the fixpoint "
                    "with no aggregation or while-state handler to "
                    "interpret its value-update (δ) payloads",
                    location=ipath,
                    hint="aggregate the handler's output (GROUP BY) or "
                         "attach a while-state delta handler to the "
                         "fixpoint"))


def _payload_interpreted(handler_join: LJoin, fixpoint: LFixpoint,
                         parents) -> bool:
    if fixpoint.while_handler_factory is not None:
        return True
    node = parents.get(id(handler_join))
    while node is not None and node is not fixpoint:
        if isinstance(node, LGroupBy):
            return True
        node = parents.get(id(node))
    return False


# ---------------------------------------------------------------------------
# REX008 — schema / arity / type inference
# ---------------------------------------------------------------------------

_NUMERIC = (SQLType.INTEGER, SQLType.DOUBLE, SQLType.ANY)
_ARITH_OPS = ("+", "-", "*", "/", "%")


def check_schemas(root: LNode, emit) -> None:
    for node, path in _walk_with_path(root):
        if isinstance(node, LFilter):
            child_schema = node.children[0].schema
            _check_expr(node.predicate, child_schema, path, emit)
            out = node.predicate.output_type(child_schema)
            if out not in (SQLType.BOOLEAN, SQLType.ANY):
                emit(make(
                    "REX008",
                    f"filter predicate has type {out.value}, expected "
                    f"Boolean",
                    location=path,
                    hint="wrap the expression in a comparison"))
        elif isinstance(node, LProject):
            child_schema = node.children[0].schema
            for expr, _field in node.items:
                _check_expr(expr, child_schema, path, emit)
        elif isinstance(node, LApply):
            child_schema = node.children[0].schema
            for arg in node.args:
                _check_expr(arg, child_schema, path, emit)
            declared = getattr(node.udf, "input_fields", ())
            if declared and len(node.args) != len(declared):
                emit(make(
                    "REX008",
                    f"UDF {node.udf.name!r} declares {len(declared)} "
                    f"input(s) but is applied to {len(node.args)} "
                    f"argument(s)",
                    location=path))
        elif isinstance(node, LJoin):
            _check_join_schema(node, path, emit)
        elif isinstance(node, LGroupBy):
            _check_groupby_schema(node, path, emit)
        elif isinstance(node, LFixpoint):
            _check_fixpoint_schema(node, path, emit)
        elif isinstance(node, LRehash):
            if node.key is not None and not node.schema.has(node.key):
                emit(make(
                    "REX008",
                    f"rehash key {node.key!r} is not a column of its "
                    f"input schema",
                    location=path))


def _check_expr(expr: Expr, schema: Schema, path: str, emit) -> None:
    if isinstance(expr, ColumnRef):
        if not schema.has(expr.name):
            emit(make(
                "REX008",
                f"column {expr.name!r} not found in input schema "
                f"({', '.join(f.name for f in schema)})",
                location=path,
                hint="check spelling and relation qualifiers"))
        return
    if isinstance(expr, Literal):
        return
    if isinstance(expr, BinaryOp):
        _check_expr(expr.left, schema, path, emit)
        _check_expr(expr.right, schema, path, emit)
        if expr.op in _ARITH_OPS:
            for side in (expr.left, expr.right):
                t = side.output_type(schema)
                if t not in _NUMERIC:
                    emit(make(
                        "REX008",
                        f"arithmetic {expr.op!r} over non-numeric operand "
                        f"{side!r} of type {t.value}",
                        location=path,
                        hint="cast the operand or fix the column type"))
        return
    if isinstance(expr, BoolOp):
        for operand in expr.operands:
            _check_expr(operand, schema, path, emit)
        return
    if isinstance(expr, FuncCall):
        for arg in expr.args:
            _check_expr(arg, schema, path, emit)
        declared = getattr(expr.udf, "input_fields", ())
        if declared and len(expr.args) != len(declared):
            emit(make(
                "REX008",
                f"UDF {expr.udf.name!r} expects {len(declared)} "
                f"argument(s), got {len(expr.args)}",
                location=path))
        return
    if isinstance(expr, TupleField):
        _check_expr(expr.base, schema, path, emit)


def _check_join_schema(node: LJoin, path: str, emit) -> None:
    if node.condition is None:
        return
    lcol, rcol = node.condition
    ok = True
    if not node.left.schema.has(lcol):
        emit(make("REX008",
                  f"join key {lcol!r} is not a column of the left input",
                  location=path))
        ok = False
    if not node.right.schema.has(rcol):
        emit(make("REX008",
                  f"join key {rcol!r} is not a column of the right input",
                  location=path))
        ok = False
    if ok:
        lt = node.left.schema.field(lcol).type
        rt = node.right.schema.field(rcol).type
        if not _types_joinable(lt, rt):
            emit(make(
                "REX008",
                f"join keys {lcol!r} ({lt.value}) and {rcol!r} "
                f"({rt.value}) have incompatible types",
                location=path,
                hint="equality across these types never matches"))


def _types_joinable(a: SQLType, b: SQLType) -> bool:
    if SQLType.ANY in (a, b) or a is b:
        return True
    return a.is_numeric() and b.is_numeric()


def _check_groupby_schema(node: LGroupBy, path: str, emit) -> None:
    child_schema = node.children[0].schema
    for key in node.keys:
        if not child_schema.has(key):
            emit(make("REX008",
                      f"GROUP BY key {key!r} is not a column of the input",
                      location=path))
    for agg in node.aggs:
        for arg in agg.args:
            _check_expr(arg, child_schema, path, emit)
        template = _template(agg)
        declared = getattr(template, "input_fields", ()) if template else ()
        if declared and agg.args and len(agg.args) != len(declared):
            emit(make(
                "REX008",
                f"aggregate {agg.name!r} expects {len(declared)} "
                f"argument(s), got {len(agg.args)}",
                location=path))


def _check_fixpoint_schema(node: LFixpoint, path: str, emit) -> None:
    base, recursive = node.children
    if len(base.schema) != len(recursive.schema):
        emit(make(
            "REX008",
            f"fixpoint {node.cte_name!r}: base case produces "
            f"{len(base.schema)} column(s) but the recursive case "
            f"produces {len(recursive.schema)}",
            location=path,
            hint="the two cases must be union-compatible"))
    if not node.schema.has(node.key):
        emit(make(
            "REX008",
            f"fixpoint key {node.key!r} is not a column of "
            f"{node.cte_name!r}",
            location=path))


#: All logical passes in catalog order.
LOGICAL_PASSES: List[RulePass] = [
    check_stratification,
    check_fixpoint_termination,
    check_preaggregation,
    check_delta_soundness,
    check_schemas,
]
