"""Determinism checking: schedule perturbation and result diffing.

A REX query is supposed to be a *function* of its inputs: stratified
execution makes every stratum a barrier, so the set of deltas produced in a
stratum must not depend on the order in which the fabric happens to deliver
messages, nor on the order workers are driven.  Order-dependent UDAs and
delta handlers (``first value wins'' aggregators, handlers reading dict
iteration order) silently break this — the query returns *an* answer, just
not a reproducible one.

The checker re-executes the same plan under K seeded perturbations of

* message delivery order (:class:`Perturbation` wraps the simulated
  network's ``pop`` and picks among the FIFO *heads* of each (src, dst)
  link — every schedule it generates is one a real asynchronous network
  could produce), and
* per-stratum worker iteration order (``worker_order``),

then diffs each run against the unperturbed baseline:

* result rows differ (as multisets, floats canonicalized to 9 significant
  digits so reordered-float-summation noise is not a race) → **REX205**,
  a result race (error);
* rows agree but :meth:`QueryMetrics.fingerprint` diverges beyond float
  canonicalization → **REX206**, a metrics-only race (warning).

On a result race the checker *minimizes*: it re-runs the divergent seed
with the perturbation scoped to one exchange at a time, reporting which
exchange's delivery order flips the result — that names the plan edge
(and hence the operator pair) hosting the race.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.analysis.diagnostics import DiagnosticReport, make

#: How far into the queue a perturbation looks for reorderable link heads.
#: Bounded so the choice scan stays O(window) per delivery.
WINDOW = 64


def exchange_base(exchange: str) -> str:
    """Strip the per-attempt suffix: ``'x0.a7' -> 'x0'``.  Attempt counters
    differ between runs; the base names the plan edge stably."""
    return exchange.split(".a", 1)[0]


class Perturbation:
    """A seeded, valid-schedule reordering of message delivery.

    Installed on a :class:`~repro.net.network.SimulatedNetwork`, it replaces
    ``pop`` with a choice among the current FIFO heads of each (src, dst)
    link inside a bounded window — per-link FIFO is preserved (real
    transports guarantee it), cross-link interleaving is randomized (real
    transports do not).  With ``scope`` set to an exchange base, only that
    exchange's messages are reordered; the first out-of-scope message acts
    as a barrier (it may be delivered, but nothing behind it may overtake
    it) — this is the minimization mode.
    """

    def __init__(self, seed: int = 0, scope: Optional[str] = None):
        self.seed = seed
        self.scope = scope
        self._rng = random.Random(1000003 * seed + 12345)
        #: Exchange bases observed flowing through the fabric — the scope
        #: candidates for minimization.
        self.exchanges_seen: set = set()
        #: Number of deliveries where more than one candidate existed.
        self.choices = 0

    # -- network hook ---------------------------------------------------
    def install(self, network) -> None:
        """Replace ``network.pop`` (idempotent per network instance)."""
        if getattr(network, "_rex_perturb", None) is self:
            return
        network._rex_perturb = self
        network.pop = lambda: self._pop(network)

    def _pop(self, network):
        queue = network._queue
        while queue:
            idx = self._choose(queue)
            msg = queue[idx]
            del queue[idx]
            if msg.dst in network._dead:
                observer = network.observer
                if observer is not None:
                    on_drop = getattr(observer, "on_drop", None)
                    if on_drop is not None:
                        on_drop(msg)
                continue
            return msg
        return None

    def _choose(self, queue) -> int:
        eligible: List[int] = []
        seen_links: set = set()
        scope = self.scope
        for i, msg in enumerate(queue):
            if i >= WINDOW:
                break
            base = exchange_base(msg.exchange)
            self.exchanges_seen.add(base)
            if scope is not None and base != scope:
                # Out-of-scope barrier: deliverable in place, not passable.
                eligible.append(i)
                break
            link = (msg.src, msg.dst)
            if link not in seen_links:
                seen_links.add(link)
                eligible.append(i)
        if not eligible:
            return 0
        if len(eligible) == 1:
            return eligible[0]
        self.choices += 1
        return self._rng.choice(eligible)

    # -- driver hook ----------------------------------------------------
    def worker_order(self, plans: List[Any], stratum: int) -> List[Any]:
        """A seeded shuffle of the per-stratum worker drive order."""
        plans = list(plans)
        rng = random.Random(1000003 * (self.seed + 1) + 31 * stratum)
        rng.shuffle(plans)
        return plans


# ---------------------------------------------------------------------------
# Result canonicalization and diffing
# ---------------------------------------------------------------------------

def canonical_value(v):
    """Floats to 9 significant digits (reordered summation is not a race);
    containers recursively; everything else unchanged."""
    if isinstance(v, float):
        if v != v:
            return "nan"
        if v == 0.0:
            return 0.0
        return float(f"{v:.9g}")
    if isinstance(v, tuple):
        return tuple(canonical_value(x) for x in v)
    return v


def canonical_rows(rows) -> Counter:
    """Order-insensitive (multiset) canonical form of a result set."""
    return Counter(tuple(canonical_value(v) for v in row) for row in rows)


def canonical_fingerprint(fp):
    return canonical_value(fp) if isinstance(fp, tuple) else fp


def _diff_sample(baseline: Counter, perturbed: Counter,
                 limit: int = 3) -> str:
    only_base = list((baseline - perturbed).elements())[:limit]
    only_pert = list((perturbed - baseline).elements())[:limit]
    parts = []
    if only_base:
        parts.append("baseline-only rows "
                     + ", ".join(repr(r) for r in only_base))
    if only_pert:
        parts.append("perturbed-only rows "
                     + ", ".join(repr(r) for r in only_pert))
    return "; ".join(parts) if parts else "row multiplicities differ"


# ---------------------------------------------------------------------------
# The checker
# ---------------------------------------------------------------------------

@dataclass
class RunOutcome:
    """One perturbed run's comparison against the baseline."""

    index: int
    seed: int
    rows_diverged: bool
    fingerprint_diverged: bool


@dataclass
class DeterminismReport:
    """Outcome of :func:`check_determinism`."""

    runs: int
    report: DiagnosticReport
    outcomes: List[RunOutcome] = field(default_factory=list)
    #: Exchange bases whose isolated reordering reproduces the divergence
    #: (empty when no result race, or when minimization could not pin one).
    suspects: List[str] = field(default_factory=list)
    #: Path of the flight-recorder bundle written for a finding (None when
    #: no finding, or no bundle directory resolved).
    flight_path: Optional[str] = None

    @property
    def has_races(self) -> bool:
        return self.report.has_errors()

    def to_json(self) -> dict:
        import json

        return {
            "runs": self.runs,
            "races": self.has_races,
            "suspects": list(self.suspects),
            "flight_path": self.flight_path,
            "outcomes": [
                {"index": o.index, "seed": o.seed,
                 "rows_diverged": o.rows_diverged,
                 "fingerprint_diverged": o.fingerprint_diverged}
                for o in self.outcomes
            ],
            "diagnostics": json.loads(self.report.to_json()),
        }


def check_determinism(run_query: Callable[[Optional[Perturbation]], Any],
                      perturbations: int = 3, seed: int = 0,
                      minimize: bool = True,
                      flight_dir: Optional[str] = None
                      ) -> DeterminismReport:
    """Execute ``run_query`` once unperturbed and ``perturbations`` times
    under seeded schedule perturbations; diff the results.

    ``run_query(perturb)`` must build a **fresh** cluster and plan each
    call (state must not leak between runs), pass ``perturb`` through as
    ``ExecOptions.perturb``, and return the :class:`QueryResult`.

    On a REX205/REX206 finding a flight-recorder post-mortem bundle is
    written (reason ``determinism``) when a directory resolves from
    ``flight_dir`` or ``REX_FLIGHT_DIR``, carrying the checker's outcomes
    and diagnostics alongside the divergent run's breadcrumbs.
    """
    report = DiagnosticReport()
    baseline = run_query(None)
    base_rows = canonical_rows(baseline.rows)
    base_fp = canonical_fingerprint(baseline.metrics.fingerprint())

    outcomes: List[RunOutcome] = []
    exchanges_seen: set = set()
    first_divergent: Optional[Tuple[int, Counter]] = None
    divergent_flight = None
    for k in range(perturbations):
        run_seed = 1 + seed * perturbations + k
        perturb = Perturbation(seed=run_seed)
        result = run_query(perturb)
        exchanges_seen |= perturb.exchanges_seen
        rows = canonical_rows(result.rows)
        fp = canonical_fingerprint(result.metrics.fingerprint())
        rows_diverged = rows != base_rows
        fp_diverged = fp != base_fp
        outcomes.append(RunOutcome(k, run_seed, rows_diverged, fp_diverged))
        if (rows_diverged or fp_diverged) and divergent_flight is None:
            divergent_flight = getattr(result, "flight", None)
        if rows_diverged and first_divergent is None:
            first_divergent = (run_seed, rows)
        elif fp_diverged and not rows_diverged:
            report.add(make(
                "REX206",
                f"metrics fingerprint diverges under perturbed delivery "
                f"order (seed {run_seed}) while result rows agree — "
                "per-stratum accounting depends on the schedule",
                location="(schedule)",
                hint="look for batching or counting keyed on arrival "
                     "order; results are safe but EXPLAIN ANALYZE and "
                     "benchmark numbers are not reproducible",
            ))

    suspects: List[str] = []
    if first_divergent is not None:
        bad_seed, bad_rows = first_divergent
        if minimize:
            for base in sorted(exchanges_seen):
                scoped = Perturbation(seed=bad_seed, scope=base)
                result = run_query(scoped)
                if canonical_rows(result.rows) != base_rows:
                    suspects.append(base)
        where = (", ".join(f"exchange {s!r}" for s in suspects)
                 if suspects else "(could not isolate a single exchange)")
        report.add(make(
            "REX205",
            f"query result diverges under perturbed message delivery "
            f"order (seed {bad_seed}): {_diff_sample(base_rows, bad_rows)}; "
            f"minimized to {where}",
            location=suspects[0] if suspects else "(schedule)",
            hint="an operator fed by this exchange is order-dependent — "
                 "check UDAs/delta handlers for first-wins state, "
                 "non-commutative folds, or unordered iteration",
        ))

    out = DeterminismReport(runs=perturbations, report=report,
                            outcomes=outcomes, suspects=suspects)
    if len(report):
        out.flight_path = _dump_flight(out, divergent_flight, flight_dir)
    return out


def _dump_flight(result: DeterminismReport, recorder,
                 flight_dir: Optional[str]) -> Optional[str]:
    """Write a ``determinism`` flight bundle for a REX205/206 finding.

    ``recorder`` is the first divergent run's own
    :class:`~repro.obs.flight.FlightRecorder` when that run kept one
    (``ExecOptions.flight``, the default) so the bundle carries its
    stratum breadcrumbs; a fresh recorder otherwise.
    """
    import os

    from repro.obs.flight import ENV_DIR, FlightRecorder

    directory = flight_dir or os.environ.get(ENV_DIR)
    if not directory:
        return None
    if recorder is None:
        recorder = FlightRecorder()
    recorder.directory = directory
    recorder.note(
        "determinism", races=result.has_races,
        suspects=list(result.suspects),
        outcomes=[{"seed": o.seed, "rows": o.rows_diverged,
                   "fingerprint": o.fingerprint_diverged}
                  for o in result.outcomes])
    return recorder.dump("determinism", diagnostics=result.report)
