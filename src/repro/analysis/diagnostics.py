"""Diagnostic objects: stable codes, severities, locations, fix hints.

Every finding either layer produces is a :class:`Diagnostic`; a
:class:`DiagnosticReport` is an ordered collection with the filtering,
rendering and JSON serialization the CLI and CI consume.  Codes are
stable API: once published in ``docs/analysis.md`` a code keeps its
meaning forever (retired codes are never reused).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings make a plan unexecutable (the session refuses to
    run it without ``--force``); ``WARNING`` findings flag likely
    performance or robustness problems; ``INFO`` findings are advisory.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 2, "warning": 1, "info": 0}[self.value]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: The published catalog: code -> (default severity, one-line title).
#: ``REX0xx`` are plan-analyzer codes, ``REX1xx`` are lint codes,
#: ``REX2xx`` are runtime sanitizer / determinism-checker codes,
#: ``REX3xx`` are abstract-interpretation (delta-polarity /
#: monotonicity) codes, ``REX4xx`` are column-lineage / UDF-effect
#: codes.
CODES: Dict[str, Tuple[Severity, str]] = {
    "REX001": (Severity.ERROR,
               "non-stratified recursion (nested fixpoint or negation "
               "over the recursive relation)"),
    "REX002": (Severity.ERROR,
               "malformed or non-terminating fixpoint"),
    "REX003": (Severity.ERROR,
               "illegal UDA pre-aggregation (non-composable aggregate or "
               "partial result escaping without final aggregation)"),
    "REX004": (Severity.ERROR,
               "multiplicative-join pre-aggregation without multiply "
               "compensation"),
    "REX005": (Severity.ERROR,
               "stateful operator input not partitioned on its key "
               "(missing rehash exchange)"),
    "REX006": (Severity.WARNING,
               "redundant rehash exchange (input already partitioned)"),
    "REX007": (Severity.WARNING,
               "unsound delta handling (handler output uninterpreted or "
               "handler starved of deltas)"),
    "REX008": (Severity.ERROR,
               "schema, arity, or type inconsistency"),
    "REX100": (Severity.ERROR,
               "source file could not be parsed"),
    "REX101": (Severity.ERROR,
               "wall-clock read inside a charged simulation path"),
    "REX102": (Severity.WARNING,
               "time.time() used for a duration (use perf_counter)"),
    "REX103": (Severity.WARNING,
               "order-dependent float accumulation of charge totals "
               "(use an fsum-style tally)"),
    "REX104": (Severity.ERROR,
               "hot-path record dataclass not frozen with slots=True"),
    "REX105": (Severity.ERROR,
               "mutation of an immutable Delta/Punctuation record"),
    "REX106": (Severity.WARNING,
               "unordered set iteration feeding cross-worker routing or "
               "emitted delta order"),
    "REX107": (Severity.WARNING,
               "UDF/predicate/handler body reads a row attribute outside "
               "its declared reads= metadata"),
    "REX108": (Severity.WARNING,
               "per-row dict idiom (string-keyed subscript or .items() "
               "loop) inside a registered columnar kernel body"),
    "REX200": (Severity.ERROR,
               "illegal delta annotation against operator state "
               "(UPDATE/DELETE of absent rows, duplicate insert, or "
               "stale REPLACE image; Definition 1)"),
    "REX201": (Severity.ERROR,
               "group-by state diverges from differential re-aggregation "
               "of its delta stream"),
    "REX202": (Severity.ERROR,
               "punctuation monotonicity violation (stratum marker "
               "regressed or arrived after end-of-query)"),
    "REX203": (Severity.ERROR,
               "exchange conservation violation (deltas sent != received "
               "+ dropped at a stratum barrier, or unflushed sender "
               "buffers)"),
    "REX204": (Severity.ERROR,
               "checkpoint/recovery delta-set inequivalence (restored row "
               "does not match its pre-failure fingerprint)"),
    "REX205": (Severity.ERROR,
               "result race: query rows change under schedule "
               "perturbation"),
    "REX206": (Severity.WARNING,
               "metrics-only race: simulated-metrics fingerprint changes "
               "under schedule perturbation while rows stay identical"),
    "REX300": (Severity.INFO,
               "stateful operator input proven insert-only "
               "(retraction/replacement bookkeeping is skippable)"),
    "REX301": (Severity.INFO,
               "fixpoint body proven monotone (the recursive relation "
               "never shrinks and never retracts)"),
    "REX302": (Severity.WARNING,
               "fixpoint body may retract or shrink (non-monotone "
               "recursion; convergence depends on runtime values)"),
    "REX303": (Severity.WARNING,
               "key-destroying Project/ApplyFunction inside a recursive "
               "branch (functional dependency on the fixpoint key is "
               "lost)"),
    "REX304": (Severity.INFO,
               "dead delta polarity (a downstream operator can never "
               "observe these delta kinds; their handling is removable)"),
    "REX305": (Severity.WARNING,
               "replacement/update stream without a preceding insert "
               "polarity (an update may arrive before its base row)"),
    "REX306": (Severity.INFO,
               "polarity unknown: a handler or aggregator declares no "
               "emission polarity, so the verdict widens to 'any'"),
    "REX307": (Severity.ERROR,
               "runtime delta violated a static polarity/monotonicity "
               "proof (abstract interpretation was unsound for this "
               "plan — report this)"),
    "REX400": (Severity.WARNING,
               "dead column: a produced column is never read by any "
               "downstream operator"),
    "REX401": (Severity.WARNING,
               "UDF/predicate/handler body reads a row attribute not "
               "covered by its declared reads= metadata"),
    "REX402": (Severity.WARNING,
               "effect-declaration contradiction: declared reads= names "
               "an attribute the body provably never reads"),
    "REX403": (Severity.ERROR,
               "key column projected away before a Rehash/GroupBy/"
               "Fixpoint whose key function needs it"),
    "REX404": (Severity.INFO,
               "pushdown-blocking effect: a rewrite was declined because "
               "an effect (impurity, unknown reads, or non-insert "
               "polarity) could not be proven away"),
    "REX405": (Severity.INFO,
               "filter pushdown licensed: the predicate's read-set is "
               "preserved below this operator"),
    "REX406": (Severity.INFO,
               "projection narrowing licensed: only a prefix of the "
               "columns crossing this exchange is live downstream"),
    "REX407": (Severity.INFO,
               "lineage widened: an opaque callable (no retrievable "
               "source) forced the column analysis to assume it reads "
               "and produces everything"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding.

    ``location`` is a plan-node path (``Fixpoint/Join[PRAgg]``) for plan
    diagnostics, or ``file:line`` for lint diagnostics.  ``hint`` says how
    to fix it; ``detail`` says what exactly was found.
    """

    code: str
    message: str
    severity: Severity = Severity.ERROR
    location: str = ""
    hint: str = ""

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}; "
                             f"register it in repro.analysis.diagnostics")

    @property
    def title(self) -> str:
        return CODES[self.code][1]

    def format(self) -> str:
        loc = f" at {self.location}" if self.location else ""
        hint = f"\n    hint: {self.hint}" if self.hint else ""
        return f"{self.code} {self.severity}{loc}: {self.message}{hint}"

    def to_dict(self) -> Dict[str, str]:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "location": self.location,
            "hint": self.hint,
        }


def make(code: str, message: str, location: str = "", hint: str = "",
         severity: Optional[Severity] = None) -> Diagnostic:
    """Build a diagnostic with the code's default severity unless
    overridden (rules downgrade, e.g. a structural error to a warning
    when the evidence is circumstantial)."""
    return Diagnostic(code, message,
                      severity=severity or CODES[code][0],
                      location=location, hint=hint)


@dataclass
class DiagnosticReport:
    """An ordered list of findings with the common queries over it.

    Identical ``(code, location, message)`` triples are collapsed: the
    logical and physical passes often fire the same finding on the same
    node when both run over one plan, and one copy carries all the
    information.  First occurrence wins (its severity and hint are
    kept).
    """

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> None:
        key = (diag.code, diag.location, diag.message)
        for existing in self.diagnostics:
            if (existing.code, existing.location, existing.message) == key:
                return
        self.diagnostics.append(diag)

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        for diag in diags:
            self.add(diag)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.WARNING]

    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def codes(self) -> List[str]:
        return sorted({d.code for d in self.diagnostics})

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def sorted(self) -> "DiagnosticReport":
        """Errors first, then warnings, then infos; stable within a tier."""
        return DiagnosticReport(sorted(
            self.diagnostics, key=lambda d: -d.severity.rank))

    def format(self) -> str:
        if not self.diagnostics:
            return "no diagnostics"
        lines = [d.format() for d in self.sorted()]
        n_err, n_warn = len(self.errors), len(self.warnings)
        lines.append(f"{len(self.diagnostics)} diagnostic(s): "
                     f"{n_err} error(s), {n_warn} warning(s)")
        return "\n".join(lines)

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps({
            "diagnostics": [d.to_dict() for d in self.sorted()],
            "summary": {
                "total": len(self.diagnostics),
                "errors": len(self.errors),
                "warnings": len(self.warnings),
            },
        }, indent=indent)


#: SARIF severity levels for each :class:`Severity` tier.
_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def to_sarif(report: DiagnosticReport, *, tool_name: str = "repro-analyze",
             indent: Optional[int] = 2) -> str:
    """Serialize a report as a SARIF 2.1.0 log (one run).

    Plan-node locations have no file, so they are carried as logical
    locations (``fullyQualifiedName`` = the plan-node path); lint
    locations of the form ``file:line`` become physical locations.  The
    rule catalog lists the full published code set, each with its title
    and default severity level, so SARIF consumers can surface rules
    that did not fire on this run.
    """
    rules: Dict[str, Dict] = {
        code: {
            "id": code,
            "shortDescription": {"text": title},
            "defaultConfiguration": {"level": _SARIF_LEVELS[severity]},
        }
        for code, (severity, title) in CODES.items()
    }
    results: List[Dict] = []
    for diag in report.sorted():
        result: Dict = {
            "ruleId": diag.code,
            "level": _SARIF_LEVELS[diag.severity],
            "message": {"text": diag.message},
        }
        if diag.hint:
            result["properties"] = {"hint": diag.hint}
        if diag.location:
            head, sep, tail = diag.location.rpartition(":")
            if sep and tail.isdigit():
                result["locations"] = [{
                    "physicalLocation": {
                        "artifactLocation": {"uri": head},
                        "region": {"startLine": int(tail)},
                    },
                }]
            else:
                result["locations"] = [{
                    "logicalLocations": [{
                        "fullyQualifiedName": diag.location,
                        "kind": "member",
                    }],
                }]
        results.append(result)
    log = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": tool_name,
                    "informationUri":
                        "https://example.invalid/repro/docs/analysis.md",
                    "rules": sorted(rules.values(),
                                    key=lambda r: r["id"]),
                },
            },
            "results": results,
        }],
    }
    return json.dumps(log, indent=indent)
