"""Static analysis for REX plans and for this repository's own code.

Two layers (see ``docs/analysis.md``):

* **Plan analyzer** (:mod:`repro.analysis.analyzer`) — rule passes over
  RQL logical plans and physical plans that check the invariants REX's
  correctness rests on *before* execution: stratification, fixpoint
  termination, UDA pre-aggregation legality, partitioning soundness,
  delta-annotation soundness, and schema/arity/type consistency.
  Diagnostics carry stable ``REX0xx`` codes.
* **Simulator-invariant lint** (:mod:`repro.analysis.lint`) — a Python
  ``ast``-based linter enforcing this repo's engineering contracts across
  ``src/``: no wall-clock reads inside charged simulation paths,
  order-independent (fsum-style) accumulation of charge floats,
  ``slots=True`` frozen dataclasses for hot-path records, and no mutation
  of :class:`~repro.common.deltas.Delta` /
  :class:`~repro.common.punctuation.Punctuation`.  Codes are ``REX1xx``.
"""

from repro.analysis.diagnostics import (
    CODES,
    Diagnostic,
    DiagnosticReport,
    Severity,
)
from repro.analysis.analyzer import analyze, analyze_logical, analyze_physical
from repro.analysis.lint import lint_paths, lint_source

__all__ = [
    "CODES",
    "Diagnostic",
    "DiagnosticReport",
    "Severity",
    "analyze",
    "analyze_logical",
    "analyze_physical",
    "lint_paths",
    "lint_source",
]
