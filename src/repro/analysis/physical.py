"""Rule passes over physical plans.

Physical nodes carry opaque compiled callables (key functions, factories)
rather than named columns, so the checkable surface is structural: the
fixpoint/feedback topology, pre-aggregation pairing, handler wiring, and
delta-interpretation placement.  Hand-built plans (the ``repro.algorithms``
builders, tests) get the same soundness screen RQL-compiled plans get from
the logical rules.
"""

from __future__ import annotations

from typing import Callable, List

from repro.analysis.diagnostics import Diagnostic, Severity, make
from repro.runtime.plan import (
    PApply,
    PFeedback,
    PFixpoint,
    PGroupBy,
    PJoin,
    PNode,
    PRehash,
)

PhysicalRulePass = Callable[[PNode, Callable[[Diagnostic], None]], None]


def _walk_with_path(node: PNode, path: str = ""):
    here = f"{path}/{type(node).__name__[1:]}" if path \
        else type(node).__name__[1:]
    yield node, here
    for child in node.children:
        yield from _walk_with_path(child, here)


def _count(node: PNode, kind) -> int:
    return sum(1 for n in node.walk() if isinstance(n, kind))


def check_fixpoint_structure(root: PNode, emit) -> None:
    """Mirror of :meth:`PhysicalPlan._validate`, reported as diagnostics
    (so ``repro analyze`` can explain a plan the constructor would
    reject) plus the nesting/base-case checks the constructor skips."""
    fixpoints = [(n, p) for n, p in _walk_with_path(root)
                 if isinstance(n, PFixpoint)]
    n_feedbacks = _count(root, PFeedback)
    if len(fixpoints) > 1:
        emit(make("REX001",
                  f"plan contains {len(fixpoints)} fixpoints; the engine "
                  f"executes at most one per plan",
                  location=fixpoints[1][1],
                  hint="stratify: run the inner fixpoint as its own "
                       "query and feed its result in as a table"))
    if not fixpoints:
        if n_feedbacks:
            emit(make("REX002",
                      "feedback leaf present but the plan has no fixpoint",
                      location="Collect",
                      hint="wrap the recursion in a PFixpoint"))
        return
    fp, path = fixpoints[0]
    if len(fp.children) != 2:
        emit(make("REX002",
                  f"fixpoint has {len(fp.children)} child(ren); "
                  f"(base, recursive) required",
                  location=path))
        return
    base, recursive = fp.children
    in_base = _count(base, PFeedback)
    in_recursive = _count(recursive, PFeedback)
    if in_recursive != 1:
        emit(make("REX002",
                  f"recursive branch contains {in_recursive} feedback "
                  f"leaves (exactly one required)",
                  location=path))
    if in_base:
        emit(make("REX002",
                  "base case reads the recursive relation",
                  location=path,
                  hint="the base case must be non-recursive"))
    if n_feedbacks > in_base + in_recursive:
        emit(make("REX002",
                  "feedback leaf outside the fixpoint's branches",
                  location=path))
    if fp.key_fn is None and fp.while_handler_factory is None \
            and fp.semantics == "keyed":
        emit(make("REX002",
                  "keyed fixpoint without a key function or while-state "
                  "handler cannot deduplicate derivations",
                  location=path,
                  hint="supply key_fn or a while handler"))


def check_handler_wiring(root: PNode, emit) -> None:
    """Handler joins inside recursion must see the feedback stream, and
    their δ-payload outputs must be interpreted before the fixpoint."""
    parents = {}
    for n in root.walk():
        for c in n.children:
            parents[id(c)] = n
    for fp, fpath in _walk_with_path(root):
        if not isinstance(fp, PFixpoint) or len(fp.children) != 2:
            continue
        recursive = fp.children[1]
        for node, path in _walk_with_path(recursive, fpath):
            if not isinstance(node, PJoin) or node.handler_factory is None:
                continue
            if not _count(node, PFeedback):
                emit(make(
                    "REX007",
                    "join delta handler inside the recursive branch is "
                    "not fed by the feedback leaf",
                    location=path,
                    hint="route the fixpoint receiver into the handler's "
                         "mutable side"))
            if not _interpreted(node, fp, parents):
                emit(make(
                    "REX007",
                    "join delta handler output reaches the fixpoint with "
                    "no group-by or while-state handler to interpret its "
                    "δ payloads",
                    location=path,
                    hint="aggregate the handler output or attach a while "
                         "handler to the fixpoint"))


def _interpreted(join: PJoin, fp: PFixpoint, parents) -> bool:
    if fp.while_handler_factory is not None:
        return True
    node = parents.get(id(join))
    while node is not None and node is not fp:
        if isinstance(node, PGroupBy):
            return True
        node = parents.get(id(node))
    return False


def check_redundant_broadcast(root: PNode, emit) -> None:
    for node, path in _walk_with_path(root):
        if isinstance(node, PRehash) and node.broadcast \
                and node.children \
                and isinstance(node.children[0], PRehash) \
                and node.children[0].broadcast:
            emit(make("REX006",
                      "broadcast of an already-broadcast stream",
                      location=path,
                      hint="drop the inner broadcast exchange"))


def check_delta_aware_apply(root: PNode, emit) -> None:
    """Inside a recursive branch, replace/update deltas flow on every
    stratum; a non-delta-aware applyFunction silently re-derives from the
    new row only, which is fine for pure row transforms but wrong for
    UDFs that must see annotations — advisory only."""
    for fp, fpath in _walk_with_path(root):
        if not isinstance(fp, PFixpoint) or len(fp.children) != 2:
            continue
        for node, path in _walk_with_path(fp.children[1], fpath):
            if isinstance(node, PApply) and not node.delta_aware \
                    and getattr(node, "mode", "extend") == "replace":
                emit(make(
                    "REX007",
                    "row-replacing applyFunction inside the recursive "
                    "branch is not delta-aware: REPLACE annotations lose "
                    "their old rows through it",
                    location=path,
                    severity=Severity.INFO,
                    hint="set delta_aware=True if the UDF must see "
                         "annotations"))


PHYSICAL_PASSES: List[PhysicalRulePass] = [
    check_fixpoint_structure,
    check_handler_wiring,
    check_redundant_broadcast,
    check_delta_aware_apply,
]
