"""Synthetic directed graphs with the structure the experiments rely on.

``dbpedia_like``
    A preferential-attachment (power-law in-degree) directed graph like an
    encyclopedia link graph: moderate average out-degree (~14 for DBPedia:
    48M edges / 3.3M vertices), every vertex has at least one out-edge and
    one in-edge (so PageRank is well-defined under Listing 1's recurrence),
    modest diameter with a long reachability tail (the paper's shortest-path
    run needs 75 iterations for full reachability while 6 cover 99%).

``twitter_like``
    Heavier skew (celebrity hubs), denser (~34 edges/vertex for the Twitter
    crawl: 1.4B / 41M), plus a designated start vertex placed at the end of
    a short periphery chain so the single-source reachability frontier
    explodes around hop 7 — the spike Figure 9(b) shows.

Both are seeded and deterministic.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

Edge = Tuple[int, int]


def _attach_tail(edges: List[Edge], rng, n_vertices: int,
                 source_pool=None) -> List[Edge]:
    """Guarantee in-degree >= 1 and out-degree >= 1 for every vertex.

    ``source_pool`` restricts where repair in-edges originate (so repairs
    cannot create shortcuts out of structurally protected regions such as
    the twitter generator's periphery chain).
    """
    has_out = np.zeros(n_vertices, dtype=bool)
    has_in = np.zeros(n_vertices, dtype=bool)
    for s, d in edges:
        has_out[s] = True
        has_in[d] = True
    extra: List[Edge] = []
    for v in np.nonzero(~has_out)[0]:
        target = int(rng.integers(0, n_vertices - 1))
        if target >= v:
            target += 1
        extra.append((int(v), target))
        has_in[target] = True
    for v in np.nonzero(~has_in)[0]:
        if source_pool is not None:
            source = int(rng.choice(source_pool))
            if source == v:
                continue
        else:
            source = int(rng.integers(0, n_vertices - 1))
            if source >= v:
                source += 1
        extra.append((source, int(v)))
    return edges + extra


def dbpedia_like(n_vertices: int = 3000, avg_out_degree: float = 14.0,
                 seed: int = 7, communities: Optional[int] = None,
                 tail_length: Optional[int] = None) -> List[Edge]:
    """A power-law directed graph shaped like the DBPedia link graph.

    Two structural properties of real link graphs matter to the paper's
    experiments and are engineered in deliberately:

    * **Slow mixing** — articles cluster into topical communities with few
      cross-links, arranged in a ring, so PageRank needs tens of
      iterations to converge (Figure 2 shows ~15+, with per-page
      convergence staggered).  A uniform random graph would mix in a
      handful of iterations and leave no Δ-shrink window to measure.
    * **A long reachability tail** — the paper notes 6 SSSP iterations
      reach 99% of DBPedia but *75* are needed for full reachability.
      ``tail_length`` chain vertices hang off the main body to recreate
      that regime.
    """
    rng = np.random.default_rng(seed)
    if communities is None:
        communities = max(8, n_vertices // 150)
    if tail_length is None:
        tail_length = min(69, max(0, n_vertices // 40))
    body = n_vertices - tail_length
    n_edges = int(body * avg_out_degree)
    members: List[np.ndarray] = []
    community_of = rng.integers(0, communities, size=body)
    for c in range(communities):
        mine = np.nonzero(community_of == c)[0]
        if len(mine) == 0:
            mine = np.array([c % body])
        members.append(mine)

    # Zipf popularity within each community (hub articles).
    sources = rng.integers(0, body, size=n_edges)
    kind = rng.random(n_edges)
    edges = set()
    for s, k in zip(sources, kind):
        c = community_of[s]
        if k < 0.80:          # intra-community link
            pool = members[c]
        elif k < 0.95:        # link to the next community on the ring
            pool = members[(c + 1) % communities]
        else:                 # long-range link
            pool = None
        if pool is None:
            t = int(rng.integers(0, body))
        else:
            # Zipf-ish choice: square a uniform to favour low indices.
            idx = int(len(pool) * rng.random() ** 2.5)
            t = int(pool[min(idx, len(pool) - 1)])
        if t != int(s):
            edges.add((int(s), t))

    # The reachability tail: a chain hanging off the body.
    if tail_length:
        anchor = int(members[0][0])
        chain = [anchor] + list(range(body, n_vertices))
        for a, b in zip(chain, chain[1:]):
            edges.add((a, b))
        edges.add((chain[-1], anchor))  # tail vertices need out-edges too
    out = sorted(edges)
    return _attach_tail(out, rng, n_vertices,
                        source_pool=members[0] if tail_length else None)


def twitter_like(n_vertices: int = 3000, avg_out_degree: float = 20.0,
                 seed: int = 13, start_vertex: int = 0,
                 chain_hops: int = 6) -> List[Edge]:
    """A celebrity-skew follower graph with a periphery chain.

    ``start_vertex`` reaches a dense core only after ``chain_hops`` hops, so
    a BFS/SSSP frontier stays tiny for the first hops and then explodes —
    reproducing Figure 9(b)'s per-iteration runtime spike at hops 7-8.
    """
    rng = np.random.default_rng(seed)
    n_edges = int(n_vertices * avg_out_degree)
    core_size = max(8, n_vertices // 100)
    chain = list(range(start_vertex, start_vertex + chain_hops + 1))
    core_start = chain[-1] + 1
    core = list(range(core_start, core_start + core_size))

    edges = set()
    # The periphery chain into the core.
    for a, b in zip(chain, chain[1:]):
        edges.add((a, b))
    edges.add((chain[-1], core[0]))
    # Dense core: each core member follows several others.
    for v in core:
        for u in rng.choice(core, size=min(6, core_size - 1), replace=False):
            if int(u) != v:
                edges.add((v, int(u)))
    # Celebrity skew for the remaining population: most follows target the
    # core and a Zipf tail of semi-popular accounts.
    others = np.array([v for v in range(n_vertices)
                       if v not in set(chain) | set(core)])
    zipf = 1.0 / (np.arange(1, n_vertices + 1) ** 1.1)
    zipf /= zipf.sum()
    popular = rng.permutation(n_vertices)
    sources = rng.choice(others, size=n_edges)
    to_core = rng.random(n_edges) < 0.4
    targets = np.where(
        to_core,
        rng.choice(core, size=n_edges),
        popular[rng.choice(n_vertices, size=n_edges, p=zipf)],
    )
    # The core follows back into the population, so the frontier keeps
    # expanding beyond the core after the explosion.
    for v in core:
        for u in rng.choice(others, size=8, replace=False):
            edges.add((v, int(u)))
    for s, t in zip(sources, targets):
        if int(s) != int(t):
            edges.add((int(s), int(t)))
    out = sorted(edges)
    # Repair in-edges only from the core so the periphery chain remains the
    # unique short route from the start vertex.
    return _attach_tail(out, rng, n_vertices, source_pool=np.array(core))
