"""Two-dimensional point sets for K-means (geo-coordinate stand-in).

The paper clusters longitude/latitude of 328k DBPedia articles, enlarged up
to 382M by "simulating up to 1000 additional points around each original
coordinate".  :func:`geo_points` mirrors that: a Gaussian-mixture base set
plus optional jittered replication.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

Point = Tuple[int, float, float]


def geo_points(n: int = 2000, n_clusters: int = 8, seed: int = 21,
               spread: float = 1.0, replicate: int = 1) -> List[Point]:
    """``n`` base points from a ``n_clusters``-component Gaussian mixture,
    each replicated ``replicate`` times with small jitter (the paper's
    enlargement).  Rows are ``(pointId, x, y)``."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-50, 50, size=(n_clusters, 2))
    assignment = rng.integers(0, n_clusters, size=n)
    base = centers[assignment] + rng.normal(0, spread, size=(n, 2))
    if replicate > 1:
        jitter = rng.normal(0, spread * 0.1, size=(n * replicate, 2))
        base = np.repeat(base, replicate, axis=0) + jitter
    return [(i, float(x), float(y)) for i, (x, y) in enumerate(base)]


def sample_centroids(points: List[Point], k: int, seed: int = 33
                     ) -> List[Tuple[int, float, float]]:
    """Sample ``k`` initial centroids from the point coordinates.

    Plays the role of the paper's ``KMSampleAgg`` (whose definition the
    paper omits for brevity): initial centroid coordinates are drawn
    randomly among the coordinates of the given points.  Rows are
    ``(centroidId, x, y)``.
    """
    rng = np.random.default_rng(seed)
    chosen = rng.choice(len(points), size=min(k, len(points)), replace=False)
    return [(cid, points[i][1], points[i][2])
            for cid, i in enumerate(sorted(int(c) for c in chosen))]
