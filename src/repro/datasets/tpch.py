"""A seeded TPC-H ``lineitem`` stand-in for the Figure 4 aggregation query.

The experiment only touches ``linenumber`` (selection) and ``tax``
(aggregation), but we generate the familiar column set so the table is
usable by other ad hoc queries too.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

LINEITEM_SCHEMA = [
    "orderkey:Integer",
    "linenumber:Integer",
    "quantity:Integer",
    "extendedprice:Double",
    "discount:Double",
    "tax:Double",
]


def lineitem(n: int = 10_000, seed: int = 42) -> List[Tuple]:
    """``n`` lineitem-shaped rows; TPC-H gives each order 1..7 lines and
    draws tax from {0.00 .. 0.08}."""
    rng = np.random.default_rng(seed)
    rows: List[Tuple] = []
    orderkey = 0
    produced = 0
    while produced < n:
        orderkey += 1
        lines = int(rng.integers(1, 8))
        for linenumber in range(1, lines + 1):
            if produced >= n:
                break
            rows.append((
                orderkey,
                linenumber,
                int(rng.integers(1, 51)),
                float(np.round(rng.uniform(900.0, 105_000.0), 2)),
                float(np.round(rng.integers(0, 11) / 100.0, 2)),
                float(np.round(rng.integers(0, 9) / 100.0, 2)),
            ))
            produced += 1
    return rows
