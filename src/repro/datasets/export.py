"""Export the synthetic datasets to CSV (for the CLI and external tools).

Usage::

    python -m repro.datasets.export dbpedia edges.csv --vertices 3000
    python -m repro.datasets.export twitter follows.csv
    python -m repro.datasets.export geo points.csv --points 5000
    python -m repro.datasets.export lineitem lineitem.csv --rows 20000
"""

from __future__ import annotations

import argparse
import csv
import sys
from typing import List, Optional

from repro.datasets.graphs import dbpedia_like, twitter_like
from repro.datasets.points import geo_points
from repro.datasets.tpch import LINEITEM_SCHEMA, lineitem


def write_csv(path: str, header: List[str], rows) -> int:
    count = 0
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(header)
        for row in rows:
            writer.writerow(row)
            count += 1
    return count


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.datasets.export",
        description="Generate a seeded synthetic dataset as CSV.")
    parser.add_argument("dataset",
                        choices=["dbpedia", "twitter", "geo", "lineitem"])
    parser.add_argument("output", help="destination CSV path")
    parser.add_argument("--vertices", type=int, default=3000)
    parser.add_argument("--degree", type=float, default=None)
    parser.add_argument("--points", type=int, default=3000)
    parser.add_argument("--clusters", type=int, default=8)
    parser.add_argument("--rows", type=int, default=20_000)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    if args.dataset == "dbpedia":
        degree = args.degree if args.degree is not None else 12.0
        rows = dbpedia_like(args.vertices, avg_out_degree=degree,
                            seed=args.seed)
        n = write_csv(args.output, ["srcId:Integer", "destId:Integer"], rows)
    elif args.dataset == "twitter":
        degree = args.degree if args.degree is not None else 18.0
        rows = twitter_like(args.vertices, avg_out_degree=degree,
                            seed=args.seed)
        n = write_csv(args.output, ["srcId:Integer", "destId:Integer"], rows)
    elif args.dataset == "geo":
        rows = geo_points(args.points, n_clusters=args.clusters,
                          seed=args.seed)
        n = write_csv(args.output,
                      ["pid:Integer", "x:Double", "y:Double"], rows)
    else:
        rows = lineitem(args.rows, seed=args.seed)
        n = write_csv(args.output, LINEITEM_SCHEMA, rows)
    print(f"wrote {n} rows to {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
