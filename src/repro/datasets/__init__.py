"""Seeded synthetic dataset generators standing in for the paper's data.

The paper evaluates on DBPedia's article-link graph, a Twitter
follower crawl, DBPedia geo-coordinates, and TPC-H lineitem.  None of those
are shippable here, so each generator reproduces the *structural properties
the experiments depend on* (degree skew, diameter, frontier growth, cluster
structure, column distributions) at configurable scale — see DESIGN.md's
substitution table.
"""

from repro.datasets.graphs import dbpedia_like, twitter_like
from repro.datasets.points import geo_points, sample_centroids
from repro.datasets.tpch import lineitem

__all__ = [
    "dbpedia_like",
    "twitter_like",
    "geo_points",
    "sample_centroids",
    "lineitem",
]
