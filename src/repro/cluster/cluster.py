"""The simulated shared-nothing cluster: workers, ring, catalog, network.

A :class:`Cluster` is the substrate every platform in this repo runs on —
REX itself (:mod:`repro.runtime`), the Hadoop/HaLoop simulator
(:mod:`repro.hadoop`), and recovery experiments.  Workers execute real
operator logic over real tuples; the cluster charges resource time through
the shared :class:`~repro.cluster.costs.CostModel` and converts each
stratum's per-node resource vectors into simulated wall time.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.cluster.costs import CostModel, ResourceUsage


def _tally_total(tally: Dict[float, int]) -> float:
    """Exact, order-independent total of a {seconds: count} tally.

    Charges are accumulated as value -> count instead of a running float
    sum, then combined here with ``math.fsum`` over a sorted view.  The
    result depends only on the *multiset* of charges, never on the order
    they arrived — which is what lets batch execution charge the same
    costs as per-tuple execution in a different order and still produce
    bit-identical simulated wall times.
    """
    if not tally:
        return 0.0
    return math.fsum(seconds * count for seconds, count in sorted(tally.items()))
from repro.common.errors import ExecutionError, ReproError
from repro.common.schema import Schema
from repro.net.network import SimulatedNetwork
from repro.storage.hashing import HashRing
from repro.storage.tables import Catalog, PartitionedTable


class Worker:
    """One node: resource accounting plus liveness.

    Operators hold a reference to their worker and charge costs through it.
    ``stratum_usage`` is reset at each stratum boundary so the driver can
    compute per-iteration wall time as the max over workers.
    """

    def __init__(self, node_id: int, cost_model: CostModel):
        self.id = node_id
        self.cost = cost_model
        self.alive = True
        # Per-resource charge tallies ({seconds: count}); the stratum_usage
        # property materializes them order-independently (see _tally_total).
        self._cpu_tally: Dict[float, int] = {}
        self._disk_tally: Dict[float, int] = {}
        self._net_in_tally: Dict[float, int] = {}
        self._net_out_tally: Dict[float, int] = {}
        self._base_usage = ResourceUsage()
        self.total_usage = ResourceUsage()
        self.state_bytes = 0  # operator state held, for spill accounting

    @property
    def stratum_usage(self) -> ResourceUsage:
        """The resource vector consumed so far in the current stratum."""
        base = self._base_usage
        return ResourceUsage(
            base.cpu + _tally_total(self._cpu_tally),
            base.disk + _tally_total(self._disk_tally),
            base.net_in + _tally_total(self._net_in_tally),
            base.net_out + _tally_total(self._net_out_tally),
        )

    @stratum_usage.setter
    def stratum_usage(self, usage: ResourceUsage) -> None:
        self._base_usage = usage
        self._cpu_tally.clear()
        self._disk_tally.clear()
        self._net_in_tally.clear()
        self._net_out_tally.clear()

    # -- charging -------------------------------------------------------
    # Every charge_* method returns the total seconds it charged.  The
    # simulation ignores the return value; the observability layer
    # (repro.obs.context) wraps these methods to attribute charged time to
    # the operator whose frame is active.
    def charge_cpu(self, seconds: float, n: int = 1) -> float:
        """Charge ``n`` identical CPU costs of ``seconds`` each."""
        seconds /= self.cost.cpu_factor(self.id)
        tally = self._cpu_tally
        tally[seconds] = tally.get(seconds, 0) + n
        return seconds * n

    def charge_tuples(self, n: int, per_tuple: Optional[float] = None) -> float:
        cost = self.cost.cpu_tuple_cost if per_tuple is None else per_tuple
        seconds = cost / self.cost.cpu_factor(self.id)
        tally = self._cpu_tally
        tally[seconds] = tally.get(seconds, 0) + n
        return seconds * n

    def charge_disk_bytes(self, nbytes: int) -> float:
        seconds = nbytes / self.cost.disk_bandwidth
        tally = self._disk_tally
        tally[seconds] = tally.get(seconds, 0) + 1
        return seconds

    def charge_disk_seek(self, count: int = 1) -> float:
        tally = self._disk_tally
        seconds = self.cost.disk_seek
        tally[seconds] = tally.get(seconds, 0) + count
        return seconds * count

    def charge_net_out(self, nbytes: int, messages: int = 1) -> float:
        seconds = (nbytes / self.cost.net_bandwidth
                   + messages * self.cost.net_latency)
        tally = self._net_out_tally
        tally[seconds] = tally.get(seconds, 0) + 1
        return seconds

    def charge_net_in(self, nbytes: int) -> float:
        seconds = nbytes / self.cost.net_bandwidth
        tally = self._net_in_tally
        tally[seconds] = tally.get(seconds, 0) + 1
        return seconds

    def charge_net_out_fanout(self, nbytes: int, count: int) -> float:
        """Charge ``count`` identical single-message net-out costs of
        ``nbytes`` each in one tally update.  The tally is a charge
        *multiset*, so this is exactly ``count`` calls to
        :meth:`charge_net_out` — the fast punctuation fanout uses it to
        collapse a broadcast's bookkeeping without moving a bit of
        simulated time."""
        seconds = nbytes / self.cost.net_bandwidth + self.cost.net_latency
        tally = self._net_out_tally
        tally[seconds] = tally.get(seconds, 0) + count
        return seconds * count

    def add_state_bytes(self, nbytes: int) -> None:
        """Track operator state growth; beyond the memory budget, the
        overflow is written out (the engine "spills overflow state to
        local disks as necessary", Section 4)."""
        self.state_bytes += nbytes
        if self.state_bytes > self.cost.worker_memory_bytes:
            self.charge_disk_bytes(max(0, nbytes))

    def spilled_fraction(self) -> float:
        """Fraction of operator state currently resident on disk."""
        if self.state_bytes <= self.cost.worker_memory_bytes:
            return 0.0
        return 1.0 - self.cost.worker_memory_bytes / self.state_bytes

    def charge_state_access(self, nbytes: int = 64) -> float:
        """Probe/lookup against operator state: free in memory, disk time
        proportional to the spilled fraction otherwise ("repeatedly scan
        or probe against disk-based storage", Section 4)."""
        fraction = self.spilled_fraction()
        if fraction > 0.0:
            seconds = fraction * (nbytes / self.cost.disk_bandwidth
                                  + self.cost.disk_seek / 256.0)
            tally = self._disk_tally
            tally[seconds] = tally.get(seconds, 0) + 1
            return seconds
        return 0.0

    def end_stratum(self) -> ResourceUsage:
        """Roll the stratum usage into totals and return it."""
        usage = self.stratum_usage  # materializes the charge tallies
        self.total_usage.add(usage)
        self.stratum_usage = ResourceUsage()
        return usage

    def __repr__(self):
        status = "up" if self.alive else "DOWN"
        return f"Worker({self.id}, {status})"


class Cluster:
    """A set of workers joined by a consistent-hash ring and a network."""

    def __init__(self, num_nodes: int, cost_model: Optional[CostModel] = None,
                 virtual_nodes: int = 64):
        if num_nodes < 1:
            raise ReproError("cluster needs at least one node")
        self.cost = cost_model or CostModel()
        self.workers: Dict[int, Worker] = {
            n: Worker(n, self.cost) for n in range(num_nodes)
        }
        self.ring = HashRing(list(self.workers), virtual_nodes=virtual_nodes)
        self.catalog = Catalog()
        self.network = SimulatedNetwork(on_bytes=self._charge_link,
                                        on_bytes_fanout=self._charge_link_fanout)

    # -- topology ---------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.workers)

    def node_ids(self) -> List[int]:
        return sorted(self.workers)

    def alive_workers(self) -> List[Worker]:
        return [w for _, w in sorted(self.workers.items()) if w.alive]

    def worker(self, node_id: int) -> Worker:
        return self.workers[node_id]

    def fail_node(self, node_id: int) -> None:
        """Inject a crash failure: the node stops sending, receiving and
        being charged; its ranges will be recovered from replicas."""
        worker = self.workers[node_id]
        if not worker.alive:
            raise ExecutionError(f"node {node_id} is already down")
        worker.alive = False
        self.network.unregister_node(node_id)

    # -- data ---------------------------------------------------------------
    def create_table(self, name: str,
                     schema: Union[Schema, Sequence[str]],
                     rows: Iterable[Sequence[Any]],
                     partition_key: Optional[str] = None,
                     replication: int = 1) -> PartitionedTable:
        """Create, load, and register a partitioned table."""
        if not isinstance(schema, Schema):
            schema = Schema.of(*schema)
        table = PartitionedTable(name, schema, partition_key,
                                 replication=replication)
        table.load(rows, self.ring)
        return self.catalog.register(table)

    # -- accounting -----------------------------------------------------------
    def _charge_link(self, src: int, dst: int, nbytes: int) -> None:
        sender = self.workers.get(src)
        receiver = self.workers.get(dst)
        if sender is not None and sender.alive:
            sender.charge_net_out(nbytes)
        if receiver is not None and receiver.alive:
            receiver.charge_net_in(nbytes)

    def _charge_link_fanout(self, src: int, dsts: List[int],
                            nbytes: int) -> None:
        """Bulk form of :meth:`_charge_link` for ``len(dsts)`` equal-size
        sends from one node: per-endpoint charge multisets are identical
        to charging each link individually."""
        workers = self.workers
        for dst in dsts:
            receiver = workers.get(dst)
            if receiver is not None and receiver.alive:
                receiver.charge_net_in(nbytes)
        sender = workers.get(src)
        if sender is not None and sender.alive and dsts:
            sender.charge_net_out_fanout(nbytes, len(dsts))

    def end_stratum_wall_time(self, per_node: Optional[Dict[int, float]]
                              = None) -> float:
        """Close the current stratum on every live worker and return its
        simulated wall time: the slowest node's overlap-combined resource
        vector (execution is barrier-synchronised between strata).

        With ``per_node`` given (a dict), each live node's own combined
        time is recorded into it — the skew view the telemetry sampler
        publishes as ``telemetry.node.n<K>.stratum_seconds``."""
        best = 0.0
        for w in self.workers.values():
            if not w.alive:
                continue
            t = w.end_stratum().combined_time(self.cost.overlap)
            if per_node is not None:
                per_node[w.id] = t
            if t > best:
                best = t
        return best

    def reset_usage(self) -> None:
        for w in self.workers.values():
            w.stratum_usage = ResourceUsage()
            w.total_usage = ResourceUsage()
            w.state_bytes = 0
