"""Simulated shared-nothing cluster runtime (Section 4 of the paper)."""

from repro.cluster.cluster import Cluster, Worker
from repro.cluster.costs import CostModel, ResourceUsage
from repro.cluster.metrics import IterationMetrics, QueryMetrics

__all__ = [
    "Cluster",
    "Worker",
    "CostModel",
    "ResourceUsage",
    "IterationMetrics",
    "QueryMetrics",
]
