"""Per-query execution metrics.

Everything the paper's evaluation section plots is derived from these
records: per-iteration and cumulative runtime (Figures 6–9), Δ-set sizes
(Figures 2–3), bytes on the wire and average per-node bandwidth (Figure 11),
and total runtimes (Figures 4, 5, 10, 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class IterationMetrics:
    """What happened during one stratum (iteration) of a query."""

    stratum: int
    seconds: float = 0.0
    bytes_sent: int = 0
    tuples_processed: int = 0
    delta_count: int = 0
    """Size of the Δᵢ set: newly derived tuples admitted by fixpoints."""
    mutable_size: int = 0
    """Size of the mutable set held in fixpoint state after the stratum."""


@dataclass
class QueryMetrics:
    """Aggregated over a whole query execution."""

    startup_seconds: float = 0.0
    iterations: List[IterationMetrics] = field(default_factory=list)
    recovery_seconds: float = 0.0
    num_nodes: int = 1
    result_rows: int = 0

    def begin_iteration(self, stratum: int) -> IterationMetrics:
        it = IterationMetrics(stratum)
        self.iterations.append(it)
        return it

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    def total_seconds(self) -> float:
        return (self.startup_seconds + self.recovery_seconds
                + sum(it.seconds for it in self.iterations))

    def total_bytes(self) -> int:
        return sum(it.bytes_sent for it in self.iterations)

    def total_tuples(self) -> int:
        return sum(it.tuples_processed for it in self.iterations)

    def per_iteration_seconds(self) -> List[float]:
        return [it.seconds for it in self.iterations]

    def cumulative_seconds(self) -> List[float]:
        """Cumulative runtime series as plotted in Figures 6a–9a (startup
        folded into the first iteration, as the paper folds data loading)."""
        out: List[float] = []
        acc = self.startup_seconds + self.recovery_seconds
        for it in self.iterations:
            acc += it.seconds  # noqa: REX103 — prefix sum, inherently sequential
            out.append(acc)
        return out

    def delta_series(self) -> List[int]:
        return [it.delta_count for it in self.iterations]

    def avg_bandwidth_per_node(self) -> float:
        """Average bytes/second/node over the query (Figure 11's metric):
        total data sent divided by node count and query duration."""
        duration = self.total_seconds()
        if duration <= 0 or self.num_nodes == 0:
            return 0.0
        return self.total_bytes() / self.num_nodes / duration

    def fingerprint(self) -> tuple:
        """Everything the simulator decides, as a hashable digest.

        Two runs of the same query must fingerprint identically across
        execution modes (batch vs per-tuple) and with or without
        observability instrumentation attached — the engine's
        bit-identical-simulation contract."""
        return (
            self.num_iterations,
            tuple((it.seconds, it.bytes_sent, it.delta_count,
                   it.tuples_processed, it.mutable_size)
                  for it in self.iterations),
            self.total_seconds(),
        )
