"""The calibrated cost model shared by every simulated platform.

The paper evaluates on a 28-node cluster of quad-core Xeons; we replace
wall-clock measurement with *cost accounting*: operators process real tuples
(results are exact) and charge CPU, disk, and network resource time through
the constants below.  All platforms — REX (delta / no-delta / wrap), Hadoop,
HaLoop, and DBMS X — are measured with the same constants, so the relative
shapes the paper reports are preserved while absolute values depend only on
the calibration.

Section 5 ("Accounting for CPU-I/O overlap"): REX models pipelined operations
as a vector of resource-utilization levels and combines them so overlapping
resources do not add serially; :class:`ResourceUsage.combined_time`
implements exactly that rule and is used both for optimizer estimates and
for charging simulated wall time per stratum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Optional


@dataclass(frozen=True)
class CostModel:
    """All tunable constants of the simulation, in seconds and bytes.

    Defaults are calibrated loosely to 2012-era hardware (the paper's quad
    2.4 GHz Xeons, 1 GigE, single SATA disk) so the reproduced figures land
    in the same minutes-scale ballpark once dataset sizes are scaled.
    """

    # --- CPU ----------------------------------------------------------
    cpu_tuple_cost: float = 2.0e-6
    """Seconds of CPU to push one tuple through one pipelined operator."""

    hash_op_cost: float = 1.0e-6
    """Extra CPU per hash-table insert or probe (join/group-by/rehash)."""

    compare_cost: float = 0.2e-6
    """CPU per comparison inside sorts (Hadoop's sort-merge shuffle)."""

    udf_call_cost: float = 4.0e-6
    """Invocation overhead of user-defined code (the paper's Java
    reflection cost), charged per call *before* batch amortization."""

    udf_batch_size: int = 64
    """Input batching for UDC (Section 4.2) divides ``udf_call_cost``."""

    wrap_format_cost: float = 3.0e-6
    """Per-tuple text/binary conversion cost of the Hadoop ``wrap`` mode."""

    # --- Disk ---------------------------------------------------------
    disk_bandwidth: float = 80e6
    """Sequential bytes/second of local disk."""

    disk_seek: float = 5e-3
    """Seconds per random-access batch (spill, DFS open)."""

    # --- Network ------------------------------------------------------
    net_bandwidth: float = 110e6
    """Bytes/second per node NIC (~1 GigE minus overhead)."""

    net_latency: float = 1.0e-4
    """Per-message fixed latency charged to the sender."""

    # --- REX control plane --------------------------------------------
    rex_query_startup: float = 1.0
    """Seconds to optimize + disseminate a plan to workers (Section 4)."""

    rex_stratum_overhead: float = 0.15
    """Barrier/coordination seconds per stratum (punctuation votes)."""

    # --- Hadoop / HaLoop control plane ---------------------------------
    hadoop_record_cost: float = 12.0e-6
    """Per-record framework overhead in map and reduce tasks (text
    parsing, Writable (de)serialization, context plumbing) — the tax that
    makes Hadoop's per-record path several times heavier than an in-engine
    pipelined operator hop."""

    hadoop_job_startup: float = 18.0
    """Per-MapReduce-job start + teardown (JVM launch, scheduling).  The
    paper repeatedly attributes Hadoop's iteration penalty to this."""

    hadoop_task_overhead: float = 1.0
    """Per-wave task scheduling overhead inside a job."""

    dfs_replication: int = 3
    """HDFS-style replication factor for job outputs."""

    # --- Failure handling -----------------------------------------------
    failure_detection: float = 3.0
    """Seconds from a crash to cluster-wide detection (heartbeat timeout)."""

    # --- Memory -------------------------------------------------------
    worker_memory_bytes: int = 512 * 1024 * 1024
    """Per-worker state budget before operators spill to disk."""

    # --- Combination --------------------------------------------------
    overlap: float = 0.85
    """How well CPU, disk and network overlap inside one node: 1.0 means
    perfectly pipelined (time = max of resources), 0.0 means serial
    (time = sum).  REX "uses both pipelining and multiple threads"."""

    # --- Per-node heterogeneity (calibration, Section 5) ---------------
    cpu_speed: Dict[int, float] = field(default_factory=dict)
    """Relative CPU speed multiplier per node id (1.0 = baseline).  The
    optimizer's calibration pass fills this; missing nodes default to 1.0."""

    def cpu_factor(self, node: int) -> float:
        return self.cpu_speed.get(node, 1.0)

    def udf_cost_per_tuple(self, batched: bool = True) -> float:
        """Effective UDC invocation cost per tuple given input batching.

        Batched calls amortize the reflection cost across the batch and pay
        only light argument marshalling; unbatched calls pay the full
        reflection cost plus per-tuple handling.
        """
        if batched and self.udf_batch_size > 1:
            return (self.udf_call_cost / self.udf_batch_size
                    + 0.25 * self.cpu_tuple_cost)
        return self.udf_call_cost + self.cpu_tuple_cost

    def sort_time(self, n_tuples: int) -> float:
        """CPU seconds for an n log n sort of ``n_tuples`` items."""
        if n_tuples <= 1:
            return 0.0
        return self.compare_cost * n_tuples * math.log2(n_tuples)

    def scaled(self, **overrides) -> "CostModel":
        """A copy with some constants replaced (ablation benches use this)."""
        return replace(self, **overrides)


@dataclass
class ResourceUsage:
    """A vector of resource-seconds consumed by one node in one window."""

    cpu: float = 0.0
    disk: float = 0.0
    net_in: float = 0.0
    net_out: float = 0.0

    def add(self, other: "ResourceUsage") -> None:
        self.cpu += other.cpu
        self.disk += other.disk
        self.net_in += other.net_in
        self.net_out += other.net_out

    def copy(self) -> "ResourceUsage":
        return ResourceUsage(self.cpu, self.disk, self.net_in, self.net_out)

    def total(self) -> float:
        return self.cpu + self.disk + self.net_in + self.net_out

    def peak(self) -> float:
        return max(self.cpu, self.disk, self.net_in, self.net_out)

    def combined_time(self, overlap: float) -> float:
        """Wall time under the paper's overlap rule.

        The result is the lowest runtime keeping every resource under 100%
        utilisation: never less than the busiest single resource, never more
        than fully serial execution, interpolated by ``overlap``.
        """
        peak = self.peak()
        total = self.total()
        return peak + (1.0 - overlap) * (total - peak)

    def __repr__(self):
        return (f"ResourceUsage(cpu={self.cpu:.4f}, disk={self.disk:.4f}, "
                f"net_in={self.net_in:.4f}, net_out={self.net_out:.4f})")
