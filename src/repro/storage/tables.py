"""Partitioned, replicated local storage.

Section 4: "The input data resides on partitioned replicated local storage."
A :class:`PartitionedTable` hash-partitions its rows over the cluster's ring
by a key column, keeping each partition on its primary node and mirroring it
to ``replication - 1`` replica nodes.  Table scans read the local primary
partition; after a node failure, the replicas holding its ranges serve the
data (Section 4.1).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.common.deltas import Row
from repro.common.errors import RecoveryError, ReproError, SchemaError
from repro.common.schema import Schema
from repro.common.sizes import row_bytes
from repro.storage.hashing import HashRing, RingSnapshot


class Partition:
    """Rows of one table held by one node, with byte accounting."""

    __slots__ = ("rows", "bytes")

    def __init__(self):
        self.rows: List[Row] = []
        self.bytes = 0

    def append(self, row: Row) -> None:
        self.rows.append(row)
        self.bytes += row_bytes(row)

    def __len__(self):
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


class PartitionedTable:
    """A named relation hash-partitioned by one column across nodes."""

    def __init__(self, name: str, schema: Schema, partition_key: Optional[str],
                 replication: int = 1):
        if partition_key is not None and not schema.has(partition_key):
            raise SchemaError(
                f"partition key {partition_key!r} not in schema of {name}"
            )
        self.name = name
        self.schema = schema
        self.partition_key = partition_key
        self.replication = max(1, replication)
        self._key_index = (
            schema.index_of(partition_key) if partition_key is not None else None
        )
        # node id -> primary partition; node id -> replica partition
        self.primaries: Dict[int, Partition] = {}
        self.replicas: Dict[int, Partition] = {}
        self._loaded = False

    def load(self, rows: Iterable[Sequence[Any]], ring: HashRing) -> None:
        """Distribute ``rows`` across the ring (primary + replicas).

        Rows without a partition key round-robin across nodes.
        """
        if self._loaded:
            raise ReproError(f"table {self.name} already loaded")
        nodes = ring.nodes
        for node in nodes:
            self.primaries[node] = Partition()
            self.replicas[node] = Partition()
        rr = 0
        for raw in rows:
            row = tuple(raw)
            if self._key_index is not None:
                owners = ring.replicas(row[self._key_index], self.replication)
            else:
                owners = [nodes[rr % len(nodes)]]
                rr += 1
            self.primaries[owners[0]].append(row)
            for replica_node in owners[1:]:
                self.replicas[replica_node].append(row)
        self._loaded = True

    def partition(self, node: int) -> Partition:
        """The primary partition stored on ``node`` (empty if none)."""
        return self.primaries.get(node) or Partition()

    def replica_partition(self, node: int) -> Partition:
        return self.replicas.get(node) or Partition()

    def rows_for_recovery(self, failed_node: int, snapshot: RingSnapshot) -> Dict[int, List[Row]]:
        """Re-route the failed node's primary rows to live takeover nodes.

        Returns a map of takeover node -> rows it must now serve.  Raises
        :class:`ReproError` if the table is unreplicated (data lost).
        """
        lost = self.primaries.get(failed_node)
        if lost is None or len(lost) == 0:
            return {}
        if self.replication < 2:
            raise RecoveryError(
                f"table {self.name} has no replicas; data on node "
                f"{failed_node} is unrecoverable"
            )
        out: Dict[int, List[Row]] = {}
        for row in lost:
            key = row[self._key_index] if self._key_index is not None else None
            takeover = snapshot.replicas(key, 1)[0]
            out.setdefault(takeover, []).append(row)
        return out

    def all_rows(self) -> List[Row]:
        """Every row in the table (primary copies only), in node order."""
        rows: List[Row] = []
        for node in sorted(self.primaries):
            rows.extend(self.primaries[node].rows)
        return rows

    def total_rows(self) -> int:
        return sum(len(p) for p in self.primaries.values())

    def total_bytes(self) -> int:
        return sum(p.bytes for p in self.primaries.values())

    def __repr__(self):
        return (f"PartitionedTable({self.name}, key={self.partition_key}, "
                f"rows={self.total_rows()}, nodes={len(self.primaries)})")


class Catalog:
    """Name -> table registry shared by the planner and the executor."""

    def __init__(self):
        self._tables: Dict[str, PartitionedTable] = {}

    def register(self, table: PartitionedTable) -> PartitionedTable:
        if table.name in self._tables:
            raise ReproError(f"table {table.name!r} already registered")
        self._tables[table.name] = table
        return table

    def get(self, name: str) -> PartitionedTable:
        try:
            return self._tables[name]
        except KeyError:
            raise ReproError(f"unknown table: {name!r}") from None

    def has(self, name: str) -> bool:
        return name in self._tables

    def drop(self, name: str) -> None:
        self._tables.pop(name, None)

    def names(self) -> List[str]:
        return sorted(self._tables)
