"""Deterministic hashing and the consistent-hash ring.

Section 4.1: "Data partitioning is based on keys rather than pages, and
partitions are chosen using a consistent hashing and data replication scheme
known to all nodes. ... every query in REX is distributed along with a
snapshot of the data partitions across the machines as seen by the query
requestor."

Python's builtin ``hash`` is salted per process for strings, so we use a
stable 64-bit hash (blake2b) that is identical across processes and runs —
partitioning must be reproducible for the benchmarks and for recovery
snapshots to make sense.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Any, Dict, List, Sequence, Tuple

from repro.common.errors import ReproError

_RING_SPACE = 1 << 64


def stable_hash(value: Any) -> int:
    """A deterministic 64-bit hash of a key value.

    Supports the scalar carrier types plus tuples of them.  Integers and the
    equal-valued float hash identically (SQL key semantics: ``1 = 1.0``).
    """
    if isinstance(value, bool):
        data = b"b" + (b"1" if value else b"0")
    elif isinstance(value, float) and value.is_integer():
        data = b"i" + str(int(value)).encode()
    elif isinstance(value, (int, float)):
        data = (b"i" if isinstance(value, int) else b"f") + repr(value).encode()
    elif isinstance(value, str):
        data = b"s" + value.encode("utf-8")
    elif value is None:
        data = b"n"
    elif isinstance(value, tuple):
        digest = hashlib.blake2b(digest_size=8)
        digest.update(b"t")
        for item in value:
            digest.update(stable_hash(item).to_bytes(8, "little"))
        return int.from_bytes(digest.digest(), "little")
    else:
        data = b"o" + repr(value).encode()
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "little")


def normalize_key(key: Any) -> Any:
    """Collapse 1-tuples to their scalar so key-function output ``(v,)``
    partitions identically to a table loaded with partition key ``v``."""
    if isinstance(key, tuple) and len(key) == 1:
        return key[0]
    return key


class HashRing:
    """Consistent-hash ring with virtual nodes and replica placement.

    Every node is mapped to ``virtual_nodes`` points on a 64-bit ring; a key
    is owned by the first node clockwise of its hash.  Replicas are the next
    ``n - 1`` *distinct* nodes clockwise, so losing a node transfers each of
    its ranges to an existing replica (incremental recovery relies on this).
    """

    def __init__(self, nodes: Sequence[int], virtual_nodes: int = 64):
        if not nodes:
            raise ReproError("HashRing requires at least one node")
        self.virtual_nodes = virtual_nodes
        self._nodes: List[int] = []
        self._points: List[int] = []
        self._owners: List[int] = []
        for node in nodes:
            self._insert(node)

    def _insert(self, node: int) -> None:
        if node in self._nodes:
            raise ReproError(f"node {node} already on ring")
        self._nodes.append(node)
        for v in range(self.virtual_nodes):
            point = stable_hash(("vnode", node, v))
            idx = bisect.bisect(self._points, point)
            self._points.insert(idx, point)
            self._owners.insert(idx, node)

    @property
    def nodes(self) -> List[int]:
        return sorted(self._nodes)

    def add_node(self, node: int) -> None:
        """Add a node (used when a replacement machine joins after failure)."""
        self._insert(node)

    def remove_node(self, node: int) -> None:
        """Remove a failed node; its ranges fall to clockwise successors."""
        if node not in self._nodes:
            raise ReproError(f"node {node} not on ring")
        self._nodes.remove(node)
        keep = [(p, o) for p, o in zip(self._points, self._owners) if o != node]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    def primary(self, key: Any) -> int:
        """The node owning ``key``."""
        return self.replicas(key, 1)[0]

    def replicas(self, key: Any, n: int) -> List[int]:
        """The first ``n`` distinct nodes clockwise of ``key``'s hash.

        The first entry is the primary.  ``n`` is clipped to the cluster
        size, so a replication factor larger than the cluster still works.
        """
        n = min(n, len(self._nodes))
        point = stable_hash(key) % _RING_SPACE
        start = bisect.bisect(self._points, point)
        result: List[int] = []
        seen = set()
        for i in range(len(self._points)):
            owner = self._owners[(start + i) % len(self._points)]
            if owner not in seen:
                seen.add(owner)
                result.append(owner)
                if len(result) == n:
                    break
        return result

    def snapshot(self) -> "RingSnapshot":
        """Freeze the current partitioning for the lifetime of one query.

        "All data will be routed according to this set of partitions,
        guaranteeing that even as the network changes, data will be
        delivered to the same place." (Section 4.1)
        """
        return RingSnapshot(tuple(self._points), tuple(self._owners),
                            tuple(sorted(self._nodes)))


class RingSnapshot:
    """An immutable view of ring state taken at query-request time."""

    __slots__ = ("_points", "_owners", "nodes", "_live")

    def __init__(self, points: Tuple[int, ...], owners: Tuple[int, ...],
                 nodes: Tuple[int, ...]):
        self._points = points
        self._owners = owners
        self.nodes = nodes
        # Nodes marked dead during recovery; routing skips them but the
        # snapshot remembers original ownership for checkpoint hand-off.
        self._live: Dict[int, bool] = {n: True for n in nodes}

    def mark_failed(self, node: int) -> None:
        self._live[node] = False

    def live_nodes(self) -> List[int]:
        return [n for n in self.nodes if self._live[n]]

    def primary(self, key: Any) -> int:
        return self.replicas(key, 1)[0]

    def replicas(self, key: Any, n: int) -> List[int]:
        """Distinct live nodes clockwise of ``key`` (post-failure routing)."""
        live = [node for node in self.nodes if self._live[node]]
        n = min(n, len(live))
        if n == 0:
            raise ReproError("no live nodes remain in partition snapshot")
        point = stable_hash(key) % _RING_SPACE
        start = bisect.bisect(self._points, point)
        result: List[int] = []
        seen = set()
        for i in range(len(self._points)):
            owner = self._owners[(start + i) % len(self._points)]
            if owner in seen or not self._live[owner]:
                continue
            seen.add(owner)
            result.append(owner)
            if len(result) == n:
                break
        return result

    def original_replicas(self, key: Any, n: int) -> List[int]:
        """Replica set ignoring failures — who *held* the checkpoints."""
        n = min(n, len(self.nodes))
        point = stable_hash(key) % _RING_SPACE
        start = bisect.bisect(self._points, point)
        result: List[int] = []
        seen = set()
        for i in range(len(self._points)):
            owner = self._owners[(start + i) % len(self._points)]
            if owner not in seen:
                seen.add(owner)
                result.append(owner)
                if len(result) == n:
                    break
        return result
