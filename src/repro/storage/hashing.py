"""Deterministic hashing and the consistent-hash ring.

Section 4.1: "Data partitioning is based on keys rather than pages, and
partitions are chosen using a consistent hashing and data replication scheme
known to all nodes. ... every query in REX is distributed along with a
snapshot of the data partitions across the machines as seen by the query
requestor."

Python's builtin ``hash`` is salted per process for strings, so we use a
stable 64-bit hash (blake2b) that is identical across processes and runs —
partitioning must be reproducible for the benchmarks and for recovery
snapshots to make sense.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Any, Dict, List, Sequence, Tuple

from repro.common.errors import ReproError

_RING_SPACE = 1 << 64
_blake2b = hashlib.blake2b


def stable_hash(value: Any) -> int:
    """A deterministic 64-bit hash of a key value.

    Supports the scalar carrier types plus tuples of them.  Integers and the
    equal-valued float hash identically (SQL key semantics: ``1 = 1.0``).
    """
    if isinstance(value, bool):
        data = b"b" + (b"1" if value else b"0")
    elif isinstance(value, float) and value.is_integer():
        data = b"i" + str(int(value)).encode()
    elif isinstance(value, (int, float)):
        data = (b"i" if isinstance(value, int) else b"f") + repr(value).encode()
    elif isinstance(value, str):
        data = b"s" + value.encode("utf-8")
    elif value is None:
        data = b"n"
    elif isinstance(value, tuple):
        digest = _blake2b(digest_size=8)
        digest.update(b"t")
        for item in value:
            digest.update(stable_hash(item).to_bytes(8, "little"))
        return int.from_bytes(digest.digest(), "little")
    else:
        data = b"o" + repr(value).encode()
    return int.from_bytes(_blake2b(data, digest_size=8).digest(), "little")


def normalize_key(key: Any) -> Any:
    """Collapse 1-tuples to their scalar so key-function output ``(v,)``
    partitions identically to a table loaded with partition key ``v``."""
    if isinstance(key, tuple) and len(key) == 1:
        return key[0]
    return key


class HashRing:
    """Consistent-hash ring with virtual nodes and replica placement.

    Every node is mapped to ``virtual_nodes`` points on a 64-bit ring; a key
    is owned by the first node clockwise of its hash.  Replicas are the next
    ``n - 1`` *distinct* nodes clockwise, so losing a node transfers each of
    its ranges to an existing replica (incremental recovery relies on this).
    """

    def __init__(self, nodes: Sequence[int], virtual_nodes: int = 64):
        if not nodes:
            raise ReproError("HashRing requires at least one node")
        self.virtual_nodes = virtual_nodes
        self._nodes: List[int] = []
        self._points: List[int] = []
        self._owners: List[int] = []
        for node in nodes:
            self._insert(node)

    def _insert(self, node: int) -> None:
        if node in self._nodes:
            raise ReproError(f"node {node} already on ring")
        self._nodes.append(node)
        for v in range(self.virtual_nodes):
            point = stable_hash(("vnode", node, v))
            idx = bisect.bisect(self._points, point)
            self._points.insert(idx, point)
            self._owners.insert(idx, node)

    @property
    def nodes(self) -> List[int]:
        return sorted(self._nodes)

    def add_node(self, node: int) -> None:
        """Add a node (used when a replacement machine joins after failure)."""
        self._insert(node)

    def remove_node(self, node: int) -> None:
        """Remove a failed node; its ranges fall to clockwise successors."""
        if node not in self._nodes:
            raise ReproError(f"node {node} not on ring")
        self._nodes.remove(node)
        keep = [(p, o) for p, o in zip(self._points, self._owners) if o != node]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    def primary(self, key: Any) -> int:
        """The node owning ``key``."""
        return self.replicas(key, 1)[0]

    def replicas(self, key: Any, n: int) -> List[int]:
        """The first ``n`` distinct nodes clockwise of ``key``'s hash.

        The first entry is the primary.  ``n`` is clipped to the cluster
        size, so a replication factor larger than the cluster still works.
        """
        n = min(n, len(self._nodes))
        point = stable_hash(key) % _RING_SPACE
        start = bisect.bisect(self._points, point)
        result: List[int] = []
        seen = set()
        for i in range(len(self._points)):
            owner = self._owners[(start + i) % len(self._points)]
            if owner not in seen:
                seen.add(owner)
                result.append(owner)
                if len(result) == n:
                    break
        return result

    def snapshot(self) -> "RingSnapshot":
        """Freeze the current partitioning for the lifetime of one query.

        "All data will be routed according to this set of partitions,
        guaranteeing that even as the network changes, data will be
        delivered to the same place." (Section 4.1)
        """
        return RingSnapshot(tuple(self._points), tuple(self._owners),
                            tuple(sorted(self._nodes)))


class RingSnapshot:
    """An immutable view of ring state taken at query-request time."""

    __slots__ = ("_points", "_owners", "nodes", "_live", "_primary_cache",
                 "_original_cache", "version")

    def __init__(self, points: Tuple[int, ...], owners: Tuple[int, ...],
                 nodes: Tuple[int, ...]):
        self._points = points
        self._owners = owners
        self.nodes = nodes
        # Nodes marked dead during recovery; routing skips them but the
        # snapshot remembers original ownership for checkpoint hand-off.
        self._live: Dict[int, bool] = {n: True for n in nodes}
        # key -> primary node, for scalar keys routed over and over by
        # rehash senders.  Invalidated when the live set changes.
        self._primary_cache: Dict[Any, int] = {}
        # (key, n) -> original replica list; ownership ignores failures,
        # so this cache never needs invalidation.
        self._original_cache: Dict[Any, List[int]] = {}
        # Bumped on every liveness change so routing caches held outside
        # the snapshot (e.g. RehashSender) know to invalidate.
        self.version = 0

    def mark_failed(self, node: int) -> None:
        self._live[node] = False
        self._primary_cache.clear()
        self.version += 1

    def live_nodes(self) -> List[int]:
        return [n for n in self.nodes if self._live[n]]

    def primary(self, key: Any) -> int:
        # Cache only plain int/float/str keys: bools and tuples nesting
        # them are ==/hash-equal to ints yet hash differently on the ring
        # (stable_hash tags types), so they would collide in the memo.
        # An int and its equal float share a ring point, so that collision
        # is harmless.
        cls = key.__class__
        if cls is int or cls is str or cls is float:
            cache = self._primary_cache
            node = cache.get(key)
            if node is None:
                node = self.replicas(key, 1)[0]
                cache[key] = node
            return node
        return self.replicas(key, 1)[0]

    def replicas(self, key: Any, n: int) -> List[int]:
        """Distinct live nodes clockwise of ``key`` (post-failure routing)."""
        points = self._points
        owners = self._owners
        live = self._live
        n = min(n, sum(1 for node in self.nodes if live[node]))
        if n == 0:
            raise ReproError("no live nodes remain in partition snapshot")
        point = stable_hash(key) % _RING_SPACE
        npoints = len(points)
        start = bisect.bisect(points, point)
        result: List[int] = []
        seen = set()
        for i in range(npoints):
            owner = owners[(start + i) % npoints]
            if owner in seen or not live[owner]:
                continue
            seen.add(owner)
            result.append(owner)
            if len(result) == n:
                break
        return result

    def original_replicas(self, key: Any, n: int) -> List[int]:
        """Replica set ignoring failures — who *held* the checkpoints."""
        cls = key.__class__
        cacheable = cls is int or cls is str or cls is float
        if cacheable:
            cached = self._original_cache.get((key, n))
            if cached is not None:
                return cached
        result = self._original_replicas(key, n)
        if cacheable:
            self._original_cache[(key, n)] = result
        return result

    def _original_replicas(self, key: Any, n: int) -> List[int]:
        n = min(n, len(self.nodes))
        point = stable_hash(key) % _RING_SPACE
        start = bisect.bisect(self._points, point)
        result: List[int] = []
        seen = set()
        for i in range(len(self._points)):
            owner = self._owners[(start + i) % len(self._points)]
            if owner not in seen:
                seen.add(owner)
                result.append(owner)
                if len(result) == n:
                    break
        return result
