"""Partitioned, replicated storage substrate (Section 4.1 of the paper)."""

from repro.storage.hashing import HashRing, RingSnapshot, stable_hash
from repro.storage.tables import Catalog, Partition, PartitionedTable

__all__ = [
    "HashRing",
    "RingSnapshot",
    "stable_hash",
    "Catalog",
    "Partition",
    "PartitionedTable",
]
