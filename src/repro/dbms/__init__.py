"""The commercial-DBMS comparator ("DBMS X", Section 6.4)."""

from repro.dbms.engine import DBMSXEngine

__all__ = ["DBMSXEngine"]
