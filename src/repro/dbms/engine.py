""""DBMS X": a single-node RDBMS evaluating recursive SQL (Section 6.4).

The paper compares REX against a commercial DBMS running PageRank as a
recursive query on one machine, plus a *lower bound* line assuming perfect
linear speedup.  This simulator captures the two properties the paper
attributes to the recursive-SQL approach:

* **No delta refinement** — every iteration recomputes every vertex's score
  from the full rank relation (a recursive CTE cannot update rows in
  place);
* **State accumulation** — each iteration's full result is *appended* to
  the recursive result spool ("recursive SQL accumulates state and does
  not allow it to be incrementally updated and replaced"), paying growing
  storage and index-maintenance costs; the final answer selects the last
  iteration's rows.

Computation is real (Jacobi iteration over the edges), so results are
verifiable against the same oracle as REX's.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

from repro.cluster.costs import CostModel, ResourceUsage
from repro.cluster.metrics import QueryMetrics
from repro.common.sizes import row_bytes

Edge = Tuple[int, int]


class DBMSXEngine:
    """Cost-accounted single-node recursive-SQL execution."""

    def __init__(self, cost_model: Optional[CostModel] = None):
        self.cost = cost_model or CostModel()

    def pagerank(self, edges: Iterable[Edge], iterations: int,
                 tol: float = 0.01, stop_on_convergence: bool = True
                 ) -> Tuple[Dict[int, float], QueryMetrics]:
        """PageRank via WITH RECURSIVE semantics on one machine."""
        edges = list(edges)
        adjacency: Dict[int, List[int]] = {}
        for s, d in edges:
            adjacency.setdefault(s, []).append(d)
        vertices = sorted({v for e in edges for v in e})
        ranks = {v: 1.0 for v in vertices}
        spool_rows = len(ranks)  # the base case is materialized too
        n_edges = len(edges)
        metrics = QueryMetrics(num_nodes=1)
        metrics.startup_seconds = self.cost.rex_query_startup

        for i in range(iterations):
            usage = ResourceUsage()
            # Join full rank relation with edges (hash build + probe) and
            # aggregate contributions: every edge produces one contribution
            # regardless of whether its source changed — no Δ awareness.
            per_tuple = self.cost.cpu_tuple_cost + self.cost.hash_op_cost
            usage.cpu += (len(ranks) + 2 * n_edges) * per_tuple
            contributions: Dict[int, float] = {}
            for v, out in adjacency.items():
                share = ranks[v] / len(out)
                for nbr in out:
                    contributions[nbr] = contributions.get(nbr, 0.0) + share
            new_ranks = dict(ranks)
            changed = 0
            for v, total in contributions.items():
                updated = 0.15 + 0.85 * total
                if abs(updated - ranks.get(v, 1.0)) > tol * abs(ranks.get(v, 1.0)):
                    changed += 1
                new_ranks[v] = updated
            # Accumulation: append this iteration's FULL result to the
            # recursive spool; index maintenance grows with spool size.
            appended = len(new_ranks)
            spool_rows += appended
            sample_bytes = row_bytes((0, i, 1.0))
            usage.disk += appended * sample_bytes / self.cost.disk_bandwidth
            usage.cpu += (appended * math.log2(max(spool_rows, 2))
                          * self.cost.compare_cost)
            it = metrics.begin_iteration(i)
            # Recursive-step setup (temp spool management, executor reentry)
            # costs at least what REX's stratum barrier does; charging the
            # same constant keeps the comparison one-ruler.
            it.seconds = (usage.combined_time(self.cost.overlap)
                          + self.cost.rex_stratum_overhead)
            it.tuples_processed = len(ranks) + n_edges + len(contributions)
            it.delta_count = changed
            it.mutable_size = spool_rows
            ranks = new_ranks
            if stop_on_convergence and changed == 0:
                break
        metrics.result_rows = len(ranks)
        return ranks, metrics

    @staticmethod
    def linear_speedup_lower_bound(metrics: QueryMetrics,
                                   nodes: int) -> float:
        """The paper's idealized multi-node DBMS X line: single-machine
        runtime divided by the node count (license limits prevented real
        multi-node runs; this is a lower bound in their favour)."""
        return metrics.total_seconds() / max(1, nodes)
