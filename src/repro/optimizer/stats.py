"""Statistics and calibration feeding the cost model (Section 5).

"We assume that each node has run an initial calibration that provides the
optimizer with information about its relative CPU and disk speeds, and all
pairwise network bandwidths."  Our calibration reads the cost model's
per-node factors; table statistics (cardinality, per-column distinct
counts, average row width) are computed from the loaded data itself —
sampled beyond a size cap, like an ANALYZE pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.common.sizes import row_bytes
from repro.storage.tables import Catalog, PartitionedTable

_SAMPLE_CAP = 20_000


@dataclass
class TableStats:
    rows: int
    avg_row_bytes: float
    distinct: Dict[str, int] = field(default_factory=dict)

    def distinct_of(self, column: str) -> int:
        """Distinct count for a column (defaults to row count — the
        key-ish assumption — when the column was never analyzed)."""
        return self.distinct.get(column, max(1, self.rows))


def analyze_table(table: PartitionedTable) -> TableStats:
    """Compute (sampled) statistics for one table."""
    rows = table.all_rows()
    total = len(rows)
    sample = rows[:_SAMPLE_CAP]
    if not sample:
        return TableStats(rows=0, avg_row_bytes=16.0)
    avg_bytes = sum(row_bytes(r) for r in sample) / len(sample)
    scale = total / len(sample)
    distinct = {}
    for i, fld in enumerate(table.schema):
        seen = len({r[i] for r in sample})
        if len(sample) < total and seen > 0.9 * len(sample):
            # Looks unique in the sample: extrapolate.
            distinct[fld.name] = int(seen * scale)
        else:
            distinct[fld.name] = seen
    return TableStats(rows=total, avg_row_bytes=avg_bytes, distinct=distinct)


class StatisticsCatalog:
    """Lazily analyzed statistics for every table in a catalog."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self._stats: Dict[str, TableStats] = {}

    def table(self, name: str) -> TableStats:
        if name not in self._stats:
            self._stats[name] = analyze_table(self.catalog.get(name))
        return self._stats[name]

    def invalidate(self, name: Optional[str] = None) -> None:
        if name is None:
            self._stats.clear()
        else:
            self._stats.pop(name, None)
