"""Physical-plan fusion: collapse stateless operator chains into kernels.

The paper's engine is pipelined — a delta moves through a chain of
stateless operators without materialization.  This pass makes that
explicit in the physical plan: maximal chains of stateless unary
operators (``PFilter``/``PProject``/``PApply``) are replaced by a single
:class:`~repro.runtime.plan.PFused` node, which the executor instantiates
as one :class:`~repro.operators.fused.FusedKernel` driving the chain's
batch transforms back to back.  A chain that feeds a ``PRehash`` fuses
into the exchange's local half: the kernel's single output batch lands
directly in the :class:`~repro.operators.exchange.RehashSender`, so the
sender's local pipeline is one fused hop.

Legality (the REX00x partitioning/delta-handler rules are conservative
here): only stateless unary operators fuse.  A chain *terminates* — and
fusion must decline to cross — at any stateful operator (join, group-by,
fixpoint, union), at an exchange boundary (``PRehash``), and at any
multi-child node.  Cost attribution is untouched: the fused kernel drives
each constituent's own ``transform_batch``, which charges that operator's
per-tuple and per-call costs exactly as the unfused pipeline would, so
``QueryMetrics.fingerprint`` is bit-identical with fusion on or off.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Tuple

from repro.runtime.plan import (
    PApply,
    PFilter,
    PFused,
    PNode,
    PProject,
    PRehash,
)

#: Operators eligible for fusion: stateless, unary, order-preserving.
FUSABLE = (PFilter, PProject, PApply)

#: Minimum chain length worth collapsing (a single operator is already
#: one virtual call per batch; fusing it would only rename it).
MIN_CHAIN = 2


@dataclass(frozen=True)
class FusionDecision:
    """One maximal stateless chain and what the pass did with it."""

    path: str
    """Plan path of the chain's topmost node (root-relative)."""
    ops: Tuple[str, ...]
    """Constituent operator kinds in data-flow order (deepest first)."""
    fused: bool
    reason: str
    columnar: bool = False
    """Whether the fused kernel is block-capable: every constituent kind
    carries a ``transform_block`` columnar kernel, so under
    ``ExecOptions(columnar=True)`` one :class:`ColumnBlock` flows through
    the whole chain with no intermediate delta materialization.  All
    FUSABLE kinds currently qualify; the field exists so a future
    row-only constituent degrades the *report*, not the execution (the
    kernel's boundary adapter already handles that case)."""

    def label(self) -> str:
        return "Fused[" + "→".join(self.ops) + "]"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "ops": list(self.ops),
            "fused": self.fused,
            "reason": self.reason,
            "columnar": self.columnar,
            "label": self.label() if self.fused else None,
        }


def _node_kind(node: PNode) -> str:
    name = type(node).__name__
    return name[1:] if name.startswith("P") else name


def _terminator(node: PNode) -> str:
    """Why a chain could not extend below ``node``."""
    if not node.children:
        return "leaf input"
    if len(node.children) > 1:
        return "multi-input operator below"
    child = node.children[0]
    kind = _node_kind(child)
    if isinstance(child, PRehash):
        return f"exchange boundary ({kind})"
    if isinstance(child, FUSABLE):  # pragma: no cover — chain absorbs it
        return "unreachable"
    return f"stateful or source operator ({kind})"


def fuse_plan(root: PNode) -> Tuple[PNode, List[FusionDecision]]:
    """Rewrite ``root``, collapsing maximal stateless chains.

    Returns the (possibly new) root plus one :class:`FusionDecision` per
    maximal chain found — fused or declined — so explain surfaces can
    render the decision.  Subtrees without fusable chains are returned
    unchanged (same object identity).
    """
    decisions: List[FusionDecision] = []

    def rebuild(node: PNode, path: str) -> PNode:
        if isinstance(node, FUSABLE) and len(node.children) == 1:
            chain = [node]
            cursor = node
            while (len(cursor.children) == 1
                   and isinstance(cursor.children[0], FUSABLE)
                   and len(cursor.children[0].children) == 1):
                cursor = cursor.children[0]
                chain.append(cursor)
            tail = tuple(
                rebuild(child, f"{path}/{_node_kind(child)}")
                for child in cursor.children
            )
            ops = tuple(_node_kind(n) for n in reversed(chain))
            if len(chain) >= MIN_CHAIN:
                decisions.append(FusionDecision(
                    path=path, ops=ops, fused=True,
                    reason=(f"{len(chain)} stateless operators; chain ends "
                            f"at {_terminator(cursor)}"),
                    columnar=all(isinstance(n, FUSABLE) for n in chain),
                ))
                constituents = tuple(replace(n, children=())
                                     for n in reversed(chain))
                return PFused(constituents=constituents, children=tail)
            decisions.append(FusionDecision(
                path=path, ops=ops, fused=False,
                reason=("single stateless operator (need >= "
                        f"{MIN_CHAIN}); chain ends at {_terminator(cursor)}"),
            ))
            if tail == cursor.children:
                return node
            return replace(node, children=tail)
        rebuilt = tuple(
            rebuild(child, f"{path}/{_node_kind(child)}")
            for child in node.children
        )
        if rebuilt == node.children:
            return node
        return replace(node, children=rebuilt)

    return rebuild(root, _node_kind(root)), decisions


def fusion_report(root: PNode) -> List[dict]:
    """The fusion decisions for ``root`` as JSON-ready dicts (what
    ``repro.cli analyze --format json`` embeds under ``"fusion"``)."""
    _, decisions = fuse_plan(root)
    return [d.to_dict() for d in decisions]
