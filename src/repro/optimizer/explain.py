"""Plan explanation: render logical plans as indented trees.

``explain`` over the compiled PageRank query reproduces the structure of
the paper's Figure 1 (base case feeding a fixpoint whose recursive side
joins the fixpoint receiver with the graph, aggregates, and loops).
"""

from __future__ import annotations

from typing import List, Optional

from repro.optimizer.cost import CostEstimator
from repro.optimizer.logical import LNode


def explain(node: LNode, estimator: Optional[CostEstimator] = None) -> str:
    """Multi-line tree rendering, optionally annotated with estimates."""
    lines: List[str] = []
    _render(node, lines, prefix="", is_last=True, estimator=estimator)
    return "\n".join(lines)


def _render(node: LNode, lines: List[str], prefix: str, is_last: bool,
            estimator: Optional[CostEstimator]) -> None:
    connector = "" if not lines else ("└─ " if is_last else "├─ ")
    annotation = ""
    if estimator is not None:
        est = estimator.estimate(node)
        annotation = f"  [rows≈{est.rows:.0f}]"
    schema_cols = ", ".join(f.name for f in node.schema)
    lines.append(f"{prefix}{connector}{node.label()} "
                 f"({schema_cols}){annotation}")
    child_prefix = prefix + ("" if not prefix and len(lines) == 1
                             else ("   " if is_last else "│  "))
    for i, child in enumerate(node.children):
        _render(child, lines, child_prefix, i == len(node.children) - 1,
                estimator)
