"""Plan explanation: render logical plans as indented trees.

``explain`` over the compiled PageRank query reproduces the structure of
the paper's Figure 1 (base case feeding a fixpoint whose recursive side
joins the fixpoint receiver with the graph, aggregates, and loops).

``properties=True`` appends each node's inferred-properties column from
the abstract interpretation (delta polarity, monotonicity, key
preservation — see ``docs/analysis.md``), e.g. ``[Δ=insert-only]``,
plus the column-lineage analysis's per-edge live-column annotation,
e.g. ``[live={0,1}/3]`` (columns 0-1 of 3 are read downstream).
"""

from __future__ import annotations

from typing import List, Optional

from repro.optimizer.cost import CostEstimator
from repro.optimizer.logical import LNode


def explain(node: LNode, estimator: Optional[CostEstimator] = None,
            properties: bool = True) -> str:
    """Multi-line tree rendering, optionally annotated with estimates
    and inferred delta-polarity properties."""
    props = None
    lineage = None
    if properties:
        from repro.analysis.absint import infer
        from repro.analysis.lineage import infer_lineage

        props, _ = infer(node)
        lineage, _ = infer_lineage(node)
    lines: List[str] = []
    _render(node, lines, prefix="", is_last=True, estimator=estimator,
            props=props, lineage=lineage)
    return "\n".join(lines)


def _render(node: LNode, lines: List[str], prefix: str, is_last: bool,
            estimator: Optional[CostEstimator], props=None,
            lineage=None) -> None:
    connector = "" if not lines else ("└─ " if is_last else "├─ ")
    annotation = ""
    if estimator is not None:
        est = estimator.estimate(node)
        annotation = f"  [rows≈{est.rows:.0f}]"
    if props is not None:
        inferred = props.annotation(node)
        if inferred:
            annotation += f"  [{inferred}]"
    if lineage is not None:
        live = lineage.annotation(node)
        if live:
            annotation += f"  [{live}]"
    schema_cols = ", ".join(f.name for f in node.schema)
    lines.append(f"{prefix}{connector}{node.label()} "
                 f"({schema_cols}){annotation}")
    child_prefix = prefix + ("" if not prefix and len(lines) == 1
                             else ("   " if is_last else "│  "))
    for i, child in enumerate(node.children):
        _render(child, lines, child_prefix, i == len(node.children) - 1,
                estimator, props, lineage)
