"""The cost-based optimizer: top-down enumeration with branch-and-bound.

Implements the Section 5 techniques:

* **Expensive-predicate ordering** (Section 5.1) — stacked filters are
  normalized into ascending *rank* order, rank = (selectivity − 1) / cost
  per tuple [Hellerstein & Stonebraker's predicate migration]: cheap or
  highly selective predicates run first.
* **UDF/join interleaving** — filters directly above a join may be pushed
  to the side their columns come from; both placements are enumerated and
  costed (pushing an expensive, unselective UDF below a reducing join is
  the classic loss the System-R push-all heuristic suffers).
* **Join commutation** — build on the smaller side.
* **UDA pre-aggregation pushdown** (Section 5.2) — composable aggregates
  grow a partial (combiner) instance below the repartitioning exchange and
  a final instance above it; the alternative is costed, not assumed.
* **Branch-and-bound** — candidates are costed against the best complete
  plan so far; estimation aborts as soon as a partial cost exceeds it.
* **Recursive-query costing** (Section 5.3) lives in
  :mod:`repro.optimizer.cost` and is exercised through every estimate of a
  plan containing a fixpoint.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.common.errors import PlanValidationError
from repro.common.schema import Field, SQLType
from repro.operators.expressions import ColumnRef
from repro.optimizer.cost import CostEstimator, EstimationPruned
from repro.optimizer.exchanges import add_exchanges
from repro.optimizer.logical import (
    LAggCall,
    LFilter,
    LGroupBy,
    LJoin,
    LNode,
    LProject,
    LRehash,
)
from repro.optimizer.physical import lower
from repro.optimizer.stats import StatisticsCatalog
from repro.runtime.plan import PhysicalPlan

_MAX_ALTERNATIVES_PER_NODE = 12
_MAX_CANDIDATES = 128


@dataclass
class OptimizerReport:
    """What the optimizer did, for explain output and tests."""

    candidates_considered: int = 0
    candidates_pruned: int = 0
    best_cost: float = float("inf")
    chosen: Optional[LNode] = None


class Optimizer:
    """Optimizes logical plans against a cluster's statistics."""

    def __init__(self, cluster: Cluster,
                 stats: Optional[StatisticsCatalog] = None):
        self.cluster = cluster
        self.stats = stats or StatisticsCatalog(cluster.catalog)
        self.estimator = CostEstimator(
            self.stats, cluster.cost, len(cluster.alive_workers()))

    # ------------------------------------------------------------------
    def optimize(self, root: LNode) -> LNode:
        plan, _ = self.optimize_with_report(root)
        return plan

    def optimize_with_report(self, root: LNode):
        root = normalize_filter_ranks(root, self.estimator)
        candidates = self._alternatives(root)
        report = OptimizerReport()
        best: Optional[LNode] = None
        best_cost = float("inf")
        for candidate in candidates[:_MAX_CANDIDATES]:
            report.candidates_considered += 1
            with_exchanges = add_exchanges(candidate)
            try:
                cost = self.estimator.plan_cost(
                    with_exchanges,
                    budget=best_cost if best is not None else None)
            except EstimationPruned:
                report.candidates_pruned += 1
                continue
            if cost >= best_cost:
                report.candidates_pruned += 1
                continue
            best, best_cost = with_exchanges, cost
        if best is None:
            raise PlanValidationError("optimizer produced no viable plan")
        report.best_cost = best_cost
        report.chosen = best
        return best, report

    def to_physical(self, root: LNode) -> PhysicalPlan:
        """Optimize and lower in one step."""
        return lower(self.optimize(root))

    # ------------------------------------------------------------------
    def _alternatives(self, node: LNode) -> List[LNode]:
        """Bottom-up enumeration of bounded transformation combinations."""
        child_lists = [self._alternatives(c) for c in node.children]
        results: List[LNode] = []
        for combo in itertools.islice(itertools.product(*child_lists), 32):
            rebuilt = node.with_children(list(combo)) if combo else node
            results.append(rebuilt)
            results.extend(self._local_transforms(rebuilt))
            if len(results) >= _MAX_ALTERNATIVES_PER_NODE:
                break
        return results[:_MAX_ALTERNATIVES_PER_NODE]

    def _local_transforms(self, node: LNode) -> List[LNode]:
        out: List[LNode] = []
        if isinstance(node, LJoin) and node.handler_factory is None \
                and node.condition is not None:
            out.append(node.swapped())
        if isinstance(node, LFilter) and isinstance(node.children[0], LJoin):
            pushed = push_filter_into_join(node)
            out.extend(pushed)
        if isinstance(node, LGroupBy):
            pre = push_pre_aggregation(node)
            if pre is not None:
                out.append(pre)
            both_sides = push_preagg_through_multiplicative_join(node)
            if both_sides is not None:
                out.append(both_sides)
        return out


# ---------------------------------------------------------------------------
# Transformations
# ---------------------------------------------------------------------------

def normalize_filter_ranks(node: LNode, estimator: CostEstimator) -> LNode:
    """Reorder stacked filters by ascending rank (Section 5.1).

    rank(p) = (selectivity(p) - 1) / cost_per_tuple(p); the most negative
    rank (cheap and selective) runs first, i.e. lowest in the stack.
    """
    children = [normalize_filter_ranks(c, estimator) for c in node.children]
    node = node.with_children(children) if children else node
    if not isinstance(node, LFilter):
        return node
    stack: List[LFilter] = []
    cursor: LNode = node
    while isinstance(cursor, LFilter):
        stack.append(cursor)
        cursor = cursor.children[0]
    if len(stack) < 2:
        return node

    def rank(f: LFilter) -> float:
        sel = estimator.selectivity_of(f)
        cost = max(estimator.predicate_cost(f), 1e-12)
        return (sel - 1.0) / cost

    # Ascending rank runs first: the head of the ordered list sits at the
    # bottom of the rebuilt stack (wrapped first).
    ordered = sorted(stack, key=rank)
    rebuilt = cursor
    for f in ordered:
        rebuilt = LFilter(rebuilt, f.predicate, f.selectivity,
                          f.cost_per_tuple)
    return rebuilt


def push_filter_into_join(node: LFilter) -> List[LNode]:
    """Push a filter to whichever join input supplies all its columns."""
    join = node.children[0]
    assert isinstance(join, LJoin)
    if join.handler_factory is not None:
        return []
    columns = node.predicate.columns()
    out: List[LNode] = []
    if columns and all(join.left.schema.has(c) for c in columns):
        filtered_left = LFilter(join.left, node.predicate,
                                node.selectivity, node.cost_per_tuple)
        out.append(join.with_children([filtered_left, join.right]))
    if columns and all(join.right.schema.has(c) for c in columns):
        filtered_right = LFilter(join.right, node.predicate,
                                 node.selectivity, node.cost_per_tuple)
        out.append(join.with_children([join.left, filtered_right]))
    return out


def push_pre_aggregation(node: LGroupBy) -> Optional[LNode]:
    """Grow a combiner below the exchange (Section 5.2).

    Requires every aggregate to be composable with a pre-aggregator; the
    heuristic of the paper — at most one pre-aggregation per UDA, pushed
    maximally — is satisfied by construction (one partial, directly below
    the rehash this group-by needs).
    """
    if node.pre_aggregated:
        return None
    if isinstance(node.children[0], (LRehash,)):
        return None
    partial_aggs: List[LAggCall] = []
    final_aggs: List[LAggCall] = []
    for i, agg in enumerate(node.aggs):
        template = agg.aggregator_factory()
        if not getattr(template, "composable", False):
            return None
        pre = template.pre_aggregator()
        partial_factory = (
            (lambda f=agg.aggregator_factory: f().pre_aggregator() or f())
            if pre is not None else agg.aggregator_factory)
        partial_col = f"_p{i}"
        partial_aggs.append(LAggCall(
            f"{agg.name}_partial", partial_factory, agg.args,
            out_fields=[Field(partial_col, SQLType.ANY)],
            composable=True))
        final_factory = (lambda f=agg.aggregator_factory:
                         f().final_aggregator())
        final_aggs.append(LAggCall(
            agg.name, final_factory, [ColumnRef(partial_col)],
            out_fields=list(agg.out_fields), composable=agg.composable))
    partial = LGroupBy(node.children[0], node.keys, partial_aggs,
                       pre_aggregated=True,
                       clear_each_stratum=node.clear_each_stratum)
    # Keyless (global) aggregates gather their partials onto one worker.
    rehash = LRehash(partial, key=node.keys[0] if node.keys else None)
    # Keys keep their names through the partial, so the final group-by
    # re-uses them.
    return LGroupBy(rehash, node.keys, final_aggs,
                    clear_each_stratum=node.clear_each_stratum)


def push_preagg_through_multiplicative_join(node: LGroupBy
                                            ) -> Optional[LNode]:
    """Pre-aggregate *both* inputs of a non key-FK join (Section 5.2).

    "There is a certain special case where we might wish to perform
    pre-aggregation on both inputs to a join that is not on a key-foreign
    key relationship.  Here we would ordinarily have m tuples for each
    group from the left input join with n tuples from the group on the
    right — but if both are pre-aggregated, we will under-estimate the
    final result.  If the user specifies an optional multiply function,
    REX will perform this pre-aggregation, and will compensate for the
    under-estimate by multiplying the inputs by the cardinality of the
    group on the opposite join input."

    Applies when the group-by sits directly on a plain equi-join and groups
    exactly by the join key, every aggregate is composable *and* supplies a
    ``multiply`` function, and each aggregate's argument columns come
    entirely from one join side.  The rewrite:

        GroupBy[k; agg(x)](R ⋈_k S)
          ->  Project[k, multiply(partial, count_other)](
                GroupBy[k; agg(x), count(*)](R)
                  ⋈_k GroupBy[k; count(*)](S))

    The count(*) additions are "handled transparently by the optimizer",
    exactly as the paper says.
    """
    from repro.operators.expressions import FuncCall, TupleField
    from repro.udf.base import udf as make_udf
    from repro.udf.builtins import Count

    if node.pre_aggregated or len(node.keys) != 1:
        return None
    join = node.children[0]
    if (not isinstance(join, LJoin) or join.handler_factory is not None
            or join.condition is None):
        return None
    lcol, rcol = join.condition
    key = node.keys[0]
    # The group key must be the join key (either side's name for it).
    try:
        key_is_left = join.left.schema.index_of(key) == \
            join.left.schema.index_of(lcol) if join.left.schema.has(key) \
            else False
    except Exception:
        key_is_left = False
    try:
        key_is_right = join.right.schema.index_of(key) == \
            join.right.schema.index_of(rcol) if join.right.schema.has(key) \
            else False
    except Exception:
        key_is_right = False
    if not (key_is_left or key_is_right):
        return None

    # Classify each aggregate by the side its argument columns live on.
    sides = []
    for agg in node.aggs:
        template = agg.aggregator_factory()
        multiply = getattr(template, "multiply", None)
        if not getattr(template, "composable", False) or multiply is None:
            return None
        if template.pre_aggregator() is not None:
            # Pair-state partials (avg) need bespoke multiply handling;
            # keep to plain value partials here.
            return None
        columns = [c for a in agg.args for c in a.columns()]
        if not columns:
            return None
        if all(join.left.schema.has(c) for c in columns):
            sides.append(0)
        elif all(join.right.schema.has(c) for c in columns):
            sides.append(1)
        else:
            return None

    def side_groupby(child: LNode, key_col: str, aggs_here):
        calls = list(aggs_here)
        calls.append(LAggCall("count", lambda: Count(count_star=True), [],
                              out_fields=[Field(f"_cnt_{id(child)}",
                                                SQLType.INTEGER)],
                              composable=True))
        return LGroupBy(child, [key_col], calls)

    left_aggs = []
    right_aggs = []
    partial_cols = []
    for i, (agg, side) in enumerate(zip(node.aggs, sides)):
        col = f"_m{i}"
        partial_cols.append((col, agg, side))
        call = LAggCall(f"{agg.name}_side", agg.aggregator_factory,
                        agg.args, out_fields=[Field(col, SQLType.ANY)],
                        composable=True)
        (left_aggs if side == 0 else right_aggs).append(call)

    left_gb = side_groupby(join.left, lcol, left_aggs)
    right_gb = side_groupby(join.right, rcol, right_aggs)
    left_cnt = left_gb.schema[len(left_gb.schema) - 1].name
    right_cnt = right_gb.schema[len(right_gb.schema) - 1].name
    joined = LJoin(left_gb, right_gb, (lcol, rcol))

    items = []
    key_field = node.schema[0]
    items.append((ColumnRef(lcol), key_field))
    for col, agg, side in partial_cols:
        template = agg.aggregator_factory()
        multiply = template.multiply
        opposite_cnt = right_cnt if side == 0 else left_cnt

        @make_udf(name=f"multiply_{col}", out_types=["Double"])
        def compensate(value, n, _m=multiply):
            return _m(value, n)

        items.append((FuncCall(compensate,
                               [ColumnRef(col), ColumnRef(opposite_cnt)]),
                      agg.out_fields[0]))
    return LProject(joined, items)
