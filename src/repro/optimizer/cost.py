"""Cost estimation over logical plans (Section 5).

Every node gets an :class:`Estimate` — output cardinality, average row
width, and a cumulative :class:`~repro.cluster.costs.ResourceUsage` vector.
Plan cost is the overlap-combined wall time of the per-worker share of that
vector ("the lowest value that allows both subplans to execute in parallel
while the combined utilization for any resource remains under 100%").

Recursive queries are costed by the paper's iterative scheme (Section 5.3):
optimize the base case, feed its output estimate into the recursive case,
re-estimate, and repeat — capping each iteration's input at the previous
stage's size and stopping at an estimated-empty Δ or a cap, because "our
focus is on recursive algorithms that converge".  Cardinalities and costs
are additionally clamped to the previous step's values to prevent the
divergence the paper warns about.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.cluster.costs import CostModel, ResourceUsage
from repro.common.errors import PlanError
from repro.operators.expressions import FuncCall
from repro.optimizer.logical import (
    LApply,
    LFeedback,
    LFilter,
    LFixpoint,
    LGroupBy,
    LJoin,
    LNode,
    LProject,
    LRehash,
    LScan,
)
from repro.optimizer.stats import StatisticsCatalog

#: Default selectivity for predicates we cannot analyze (System R's 1/3).
_DEFAULT_SELECTIVITY = 1.0 / 3.0
#: Convergence shrink factor assumed per recursive iteration.
_DELTA_SHRINK = 0.7
_MAX_ESTIMATED_ITERATIONS = 30


class EstimationPruned(Exception):
    """Raised mid-estimation when a partial plan already exceeds the
    branch-and-bound budget (Section 5's top-down pruning)."""


@dataclass
class Estimate:
    rows: float
    row_bytes: float
    usage: ResourceUsage

    def copy(self) -> "Estimate":
        return Estimate(self.rows, self.row_bytes, self.usage.copy())


class CostEstimator:
    """Bottom-up estimation with a feedback-cardinality context."""

    def __init__(self, stats: StatisticsCatalog, cost_model: CostModel,
                 num_workers: int):
        self.stats = stats
        self.cost = cost_model
        self.workers = max(1, num_workers)
        self._budget: Optional[float] = None

    # -- public ----------------------------------------------------------
    def plan_cost(self, node: LNode, budget: Optional[float] = None) -> float:
        """Estimated wall-clock seconds for the whole plan.

        With a ``budget``, estimation raises :class:`EstimationPruned` as
        soon as any partial plan's lower-bound cost exceeds it — the
        branch-and-bound pruning of Section 5.
        """
        self._budget = budget
        try:
            est = self.estimate(node)
        finally:
            self._budget = None
        # "The optimizer uses, for each operator, the lowest combined cost
        # estimate across all nodes: this in essence estimates the
        # worst-case completion time" — with heterogeneous calibration the
        # slowest node's relative CPU speed bounds the barrier.
        slowest = min((self.cost.cpu_factor(n) for n in
                       range(self.workers)), default=1.0)
        per_worker = ResourceUsage(
            cpu=est.usage.cpu / self.workers / max(slowest, 1e-9),
            disk=est.usage.disk / self.workers,
            net_in=est.usage.net_in / self.workers,
            net_out=est.usage.net_out / self.workers,
        )
        return per_worker.combined_time(self.cost.overlap)

    def estimate(self, node: LNode,
                 feedback: Optional[Dict[str, Estimate]] = None) -> Estimate:
        est = self._estimate(node, feedback)
        if self._budget is not None:
            # A subtree's peak usage divided across workers lower-bounds
            # the final wall time (more operators only add cost).
            lower_bound = est.usage.peak() / self.workers
            if lower_bound > self._budget:
                raise EstimationPruned()
        return est

    def _estimate(self, node: LNode,
                  feedback: Optional[Dict[str, Estimate]] = None) -> Estimate:
        feedback = feedback or {}
        if isinstance(node, LScan):
            return self._scan(node)
        if isinstance(node, LFeedback):
            est = feedback.get(node.cte_name)
            if est is None:
                est = Estimate(rows=1.0, row_bytes=24.0,
                               usage=ResourceUsage())
            est = est.copy()
            # Feedback deposit + re-injection costs a tuple's worth of CPU.
            est.usage.cpu += est.rows * self.cost.cpu_tuple_cost
            return est
        if isinstance(node, LFilter):
            return self._filter(node, feedback)
        if isinstance(node, LProject):
            child = self.estimate(node.children[0], feedback)
            child.usage.cpu += child.rows * self.cost.cpu_tuple_cost
            child.row_bytes = max(8.0, child.row_bytes * 0.9)
            return child
        if isinstance(node, LApply):
            child = self.estimate(node.children[0], feedback)
            calibrated = getattr(node.udf, "calibrated_cost", None)
            per_call = (calibrated if calibrated is not None
                        else self.cost.udf_cost_per_tuple(batched=True))
            child.usage.cpu += child.rows * per_call
            # Productivity: table-valued functions fan out.
            child.rows *= max(getattr(node.udf, "selectivity", 1.0), 0.0)
            return child
        if isinstance(node, LRehash):
            return self._rehash(node, feedback)
        if isinstance(node, LJoin):
            return self._join(node, feedback)
        if isinstance(node, LGroupBy):
            return self._groupby(node, feedback)
        if isinstance(node, LFixpoint):
            return self._fixpoint(node)
        raise PlanError(f"cannot estimate {type(node).__name__}")

    # -- per-operator rules ------------------------------------------------
    def _scan(self, node: LScan) -> Estimate:
        ts = self.stats.table(node.table)
        usage = ResourceUsage()
        usage.disk += ts.rows * ts.avg_row_bytes / self.cost.disk_bandwidth
        usage.cpu += ts.rows * self.cost.cpu_tuple_cost
        return Estimate(rows=float(ts.rows), row_bytes=ts.avg_row_bytes,
                        usage=usage)

    def selectivity_of(self, node: LFilter) -> float:
        if node.selectivity is not None:
            return node.selectivity
        if isinstance(node.predicate, FuncCall):
            return getattr(node.predicate.udf, "selectivity",
                           _DEFAULT_SELECTIVITY)
        return _DEFAULT_SELECTIVITY

    def predicate_cost(self, node: LFilter) -> float:
        """Per-tuple evaluation cost (UDF predicates pay invocation).

        Calibrated profiles (Section 5.1, :mod:`repro.optimizer.
        calibration`) take precedence; otherwise zero-argument cost-hint
        shapes scale the default UDC invocation cost."""
        if node.cost_per_tuple is not None:
            return node.cost_per_tuple
        extra = 0.0
        for expr in _walk_expr(node.predicate):
            if isinstance(expr, FuncCall):
                calibrated = getattr(expr.udf, "calibrated_cost", None)
                if calibrated is not None:
                    extra += calibrated
                    continue
                hint = getattr(expr.udf, "cost_hint", None)
                scale = hint() if callable(hint) and _arity0(hint) else 1.0
                extra += self.cost.udf_cost_per_tuple(batched=True) * scale
        return self.cost.cpu_tuple_cost + extra

    def _filter(self, node: LFilter,
                feedback: Dict[str, Estimate]) -> Estimate:
        child = self.estimate(node.children[0], feedback)
        child.usage.cpu += child.rows * self.predicate_cost(node)
        child.rows *= self.selectivity_of(node)
        return child

    def _rehash(self, node: LRehash,
                feedback: Dict[str, Estimate]) -> Estimate:
        child = self.estimate(node.children[0], feedback)
        fanout = self.workers if node.broadcast else 1
        remote_fraction = (self.workers - 1) / self.workers
        nbytes = child.rows * child.row_bytes * fanout * remote_fraction
        child.usage.net_out += nbytes / self.cost.net_bandwidth
        child.usage.net_in += nbytes / self.cost.net_bandwidth
        child.usage.cpu += child.rows * (self.cost.cpu_tuple_cost
                                         + self.cost.hash_op_cost)
        if node.broadcast:
            child.rows *= self.workers
        return child

    def _join(self, node: LJoin, feedback: Dict[str, Estimate]) -> Estimate:
        left = self.estimate(node.left, feedback)
        right = self.estimate(node.right, feedback)
        usage = ResourceUsage()
        usage.add(left.usage)
        usage.add(right.usage)
        per_tuple = self.cost.cpu_tuple_cost + self.cost.hash_op_cost
        usage.cpu += (left.rows + right.rows) * per_tuple
        if node.handler_factory is not None:
            usage.cpu += right.rows * self.cost.udf_cost_per_tuple()
            # A handler fans each mutable delta out across the matching
            # immutable bucket (e.g. one diff per out-edge).
            fanout = max(1.0, left.rows / max(right.rows, 1.0))
            rows = right.rows * fanout
            width = 16.0
        elif node.condition is None:
            rows = left.rows * right.rows
            width = left.row_bytes + right.row_bytes
        else:
            lcol, rcol = node.condition
            l_distinct = self._distinct(node.left, lcol, left.rows)
            r_distinct = self._distinct(node.right, rcol, right.rows)
            rows = left.rows * right.rows / max(l_distinct, r_distinct, 1.0)
            width = left.row_bytes + right.row_bytes
        return Estimate(rows=rows, row_bytes=width, usage=usage)

    def _distinct(self, node: LNode, column: str, rows: float) -> float:
        if isinstance(node, LScan):
            # Strip the binding qualifier for the stats lookup.
            name = column.split(".")[-1]
            return float(self.stats.table(node.table).distinct_of(name))
        return max(1.0, rows)

    def _groupby(self, node: LGroupBy,
                 feedback: Dict[str, Estimate]) -> Estimate:
        child = self.estimate(node.children[0], feedback)
        usage = child.usage
        per_tuple = self.cost.cpu_tuple_cost + self.cost.hash_op_cost
        usage.cpu += child.rows * per_tuple
        if node.keys:
            key_distinct = self._distinct(node.children[0], node.keys[0],
                                          child.rows)
            groups = min(child.rows, float(key_distinct))
        else:
            groups = 1.0
        if node.pre_aggregated:
            # A combiner on each worker holds up to `groups` per worker.
            groups = min(child.rows, groups * self.workers)
        return Estimate(rows=groups, row_bytes=child.row_bytes,
                        usage=usage)

    def _fixpoint(self, node: LFixpoint) -> Estimate:
        base = self.estimate(node.children[0])
        usage = base.usage.copy()
        feedback_est = Estimate(rows=base.rows, row_bytes=base.row_bytes,
                                usage=ResourceUsage())
        prev_rows = base.rows
        prev_cost = math.inf
        total_rows = base.rows
        for _ in range(_MAX_ESTIMATED_ITERATIONS):
            step = self.estimate(node.children[1],
                                 {node.cte_name: feedback_est})
            # Clamp: cardinality never grows across iterations (converging
            # algorithms + duplicate elimination), cost never exceeds the
            # previous step (divergence guard, Section 5.3).
            out_rows = min(step.rows * _DELTA_SHRINK, prev_rows)
            step_cost = min(step.usage.total(), prev_cost)
            scale = (step_cost / step.usage.total()
                     if step.usage.total() > 0 else 0.0)
            usage.cpu += step.usage.cpu * scale
            usage.disk += step.usage.disk * scale
            usage.net_in += step.usage.net_in * scale
            usage.net_out += step.usage.net_out * scale
            if out_rows < 1.0:
                break
            prev_rows = out_rows
            prev_cost = step_cost
            total_rows = max(total_rows, out_rows)
            feedback_est = Estimate(rows=out_rows, row_bytes=base.row_bytes,
                                    usage=ResourceUsage())
        return Estimate(rows=total_rows, row_bytes=base.row_bytes,
                        usage=usage)


def _walk_expr(expr):
    yield expr
    for attr in ("left", "right", "base"):
        child = getattr(expr, attr, None)
        if child is not None:
            yield from _walk_expr(child)
    for child in getattr(expr, "operands", ()) or ():
        yield from _walk_expr(child)
    for child in getattr(expr, "args", ()) or ():
        yield from _walk_expr(child)


def _arity0(fn) -> bool:
    try:
        import inspect

        return len(inspect.signature(fn).parameters) == 0
    except (TypeError, ValueError):
        return False
