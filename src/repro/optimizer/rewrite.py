"""Proof-directed plan rewrites: spend the lineage analysis.

Two families, both gated on facts inferred by
:mod:`repro.analysis.lineage` (column demand, predicate effects) and
:mod:`repro.analysis.absint` (delta polarity):

* **Filter pushdown** — a :class:`~repro.runtime.plan.PFilter` moves
  below an exchange (fewer rows cross the wire), below a Project (the
  predicate composes with the row function), below an extend-mode
  ApplyFunction (the child prefix keeps its positions), or into the left
  input of a plain hash join (the predicate reads only left columns).
* **Exchange narrowing** — when only a prefix of the columns crossing a
  non-broadcast :class:`~repro.runtime.plan.PRehash` is live downstream,
  a truncating Project is inserted below the exchange so the wire
  carries only that prefix.

Legality is deliberately austere.  Every rewrite requires the stream it
touches to be **proven insert-only with an exact polarity** — REPLACE
straddles route and filter differently across a move, and UPDATE deltas
from the bench handlers carry key-only rows narrower than the declared
width, which truncation or late filtering would corrupt.  Filters move
only when their predicate is pure (re-evaluation safe) with an exactly
known read-set; narrowing only truncates a *suffix* (``row[:k]``),
because downstream compiled callables address columns by fixed position.
These are precisely the REX405/REX406 licenses the analyzer publishes;
a candidate that fails a gate is recorded as a declined
:class:`RewriteDecision` (the analyzer's REX404 mirror).

The pass runs before fusion in the executor (``ExecOptions(rewrite=
True)``, the default).  On plans where no rewrite fires — all three
original bench workloads, by construction of their polarity — the tree
is returned with identical object identity and ``QueryMetrics.
fingerprint`` is bit-identical rewrite on or off.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.analysis.absint import INSERT_ONLY, infer as infer_polarity
from repro.analysis.lineage import infer_lineage
from repro.common.deltas import DeltaOp
from repro.runtime.plan import (
    PApply,
    PCollect,
    PFilter,
    PFixpoint,
    PJoin,
    PNode,
    PProject,
    PRehash,
)

#: Upper bound on pushdown sweeps: each sweep moves a filter at most one
#: level, so this bounds how deep a filter can sink.
MAX_SWEEPS = 8


def _no_candidates(root: PNode) -> bool:
    """True when a constant-time structural scan proves no rewrite can
    *apply* to ``root`` — the executor then skips lineage/polarity
    inference entirely, so a no-op rewrite pass costs nothing.

    The proof obligations mirror the legality gates below:

    * Filter pushdown needs a :class:`PFilter`; a plan without one has
      no pushdown candidate at all.
    * Exchange narrowing needs a non-broadcast single-child
      :class:`PRehash` whose downstream demand is a strict column
      prefix and whose input is proven insert-only.  A rehash feeding a
      :class:`PFixpoint` or :class:`PCollect` directly is demanded at
      full width (results keep every column), and a rehash draining a
      handler join whose handler declares a non-insert
      ``emits_polarity`` can never prove the insert-only gate — both
      are structurally dead candidates.

    Skipping is always sound: rewrites are optional optimizations and
    the tree is returned untouched.  Only the decline *records* for the
    structurally dead candidates are elided; :func:`rewrite_report`
    (the analyzer/CLI path) still runs the thorough pass.
    """
    stack = [(root, None)]
    while stack:
        node, parent = stack.pop()
        for child in node.children:
            stack.append((child, node))
        if isinstance(node, PFilter):
            return False
        if (isinstance(node, PRehash) and not node.broadcast
                and len(node.children) == 1):
            if isinstance(parent, (PCollect, PFixpoint)):
                continue  # full-width demand: narrowing is moot
            child = node.children[0]
            if isinstance(child, PJoin) and child.handler_factory is not None:
                try:
                    handler = child.handler_factory()
                except Exception:  # noqa: BLE001 - factories are user code
                    handler = None
                emits = getattr(handler, "emits_polarity", None)
                if emits and not frozenset(emits) <= {DeltaOp.INSERT}:
                    continue  # insert-only gate provably fails
            return False
    return True


@dataclass(frozen=True)
class RewriteDecision:
    """One rewrite candidate and what the pass did with it."""

    path: str
    """Plan path of the candidate's topmost node (root-relative)."""
    kind: str
    """``filter-pushdown`` or ``narrow-exchange``."""
    applied: bool
    reason: str

    def label(self) -> str:
        return f"{self.kind}[{'applied' if self.applied else 'declined'}]"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "kind": self.kind,
            "applied": self.applied,
            "reason": self.reason,
        }


def _node_kind(node: PNode) -> str:
    name = type(node).__name__
    return name[1:] if name.startswith("P") else name


def _truncator(width: int):
    """The inserted narrowing projection: keep the first ``width``
    columns.  Suffix truncation only — downstream compiled callables
    address columns by fixed position, so renumbering is off the table.
    """
    return lambda row, _w=width: row[:_w]


def _composed(predicate, row_fn):
    """``predicate`` evaluated on the projected row, for pushing a
    filter below the Project that feeds it."""
    return lambda row, _p=predicate, _f=row_fn: _p(_f(row))


class _Rewriter:
    """One sweep over the tree with lineage/polarity facts pinned.

    Lookups are keyed by the *original* node identities of the tree the
    facts were inferred on; rebuilt subtrees are fresh objects, so each
    sweep re-infers before running (see :func:`rewrite_plan`).
    """

    def __init__(self, root: PNode,
                 table_arity: Optional[Dict[str, int]],
                 decisions: List[RewriteDecision]):
        self.lineage, _ = infer_lineage(root, table_arity=table_arity)
        self.props, _ = infer_polarity(root)
        self.decisions = decisions
        self.changed = False

    def _insert_only(self, node: PNode) -> bool:
        props = self.props.of(node)
        return (props is not None
                and props.out_polarity.proves(INSERT_ONLY))

    def _decline(self, path: str, kind: str, reason: str) -> None:
        self.decisions.append(RewriteDecision(
            path=path, kind=kind, applied=False, reason=reason))

    def _apply(self, path: str, kind: str, reason: str) -> None:
        self.decisions.append(RewriteDecision(
            path=path, kind=kind, applied=True, reason=reason))
        self.changed = True

    # -- filter pushdown --------------------------------------------------
    def push_filters(self, node: PNode, path: str = "") -> PNode:
        here = f"{path}/{_node_kind(node)}" if path else _node_kind(node)
        rebuilt = tuple(self.push_filters(child, here)
                        for child in node.children)
        if isinstance(node, PFilter) and len(node.children) == 1:
            pushed = self._push_one(node, rebuilt[0], here)
            if pushed is not None:
                return pushed
        if rebuilt == node.children:
            return node
        return replace(node, children=rebuilt)

    def _push_one(self, node: PFilter, below: PNode,
                  here: str) -> Optional[PNode]:
        """Move ``node`` below ``below`` (its rebuilt child) if legal;
        None means no move.  Gate lookups use the original child
        (``node.children[0]``) — same shape, valid fact keys."""
        original_child = node.children[0]
        lin = self.lineage.of(node)
        if lin is None or not isinstance(
                original_child, (PRehash, PProject, PApply, PJoin)):
            return None
        target = _node_kind(original_child)
        kind = "filter-pushdown"
        if isinstance(original_child, PRehash) and original_child.broadcast:
            return None
        if not (lin.pure and lin.reads_exact):
            blocker = ("predicate is not provably pure"
                       if lin.pure is not True
                       else "predicate read-set could not be proven")
            self._decline(here, kind, f"below {target}: {blocker}")
            return None
        if not self._insert_only(original_child):
            self._decline(
                here, kind,
                f"below {target}: stream polarity not proven insert-only "
                "(replace/update deltas route and filter differently "
                "across the move)")
            return None
        reads = lin.reads or frozenset()

        if isinstance(original_child, PRehash):
            moved = replace(below, children=(
                replace(node, children=(below.children[0],)),))
            self._apply(here, kind,
                        f"below {target}: pure predicate over "
                        f"{sorted(reads)}, insert-only stream; rows are "
                        "dropped before they cross the exchange")
            return moved

        if isinstance(original_child, PProject):
            child_lin = self.lineage.of(original_child)
            if child_lin is None or child_lin.pure is not True:
                self._decline(here, kind,
                              f"below {target}: projection row function "
                              "is not provably pure")
                return None
            moved = replace(below, children=(PFilter(
                predicate=_composed(node.predicate, below.row_fn),
                children=(below.children[0],),
                udf_calls=node.udf_calls),))
            self._apply(here, kind,
                        f"below {target}: predicate composed with the "
                        "pure row function; rows are dropped before the "
                        "projection runs")
            return moved

        if isinstance(original_child, PApply):
            if original_child.mode != "extend":
                self._decline(here, kind,
                              f"below {target}: replace-mode apply does "
                              "not preserve input column positions")
                return None
            grand = self.lineage.of(original_child.children[0])
            child_arity = grand.out_arity if grand is not None else None
            if child_arity is None or any(r >= child_arity for r in reads):
                self._decline(here, kind,
                              f"below {target}: predicate reads columns "
                              "produced by the UDF (or the input width "
                              "is unknown)")
                return None
            moved = replace(below, children=(
                replace(node, children=(below.children[0],)),))
            self._apply(here, kind,
                        f"below {target}: predicate reads only the "
                        f"pass-through prefix {sorted(reads)}; rows are "
                        "dropped before the UDF runs")
            return moved

        # Plain hash join: predicate confined to left-input columns.
        if original_child.handler_factory is not None:
            self._decline(here, kind,
                          f"below {target}: handler joins synthesize "
                          "their output rows; no column provenance to "
                          "push through")
            return None
        left = self.lineage.of(original_child.children[0])
        left_arity = left.out_arity if left is not None else None
        if left_arity is None or any(r >= left_arity for r in reads):
            self._decline(here, kind,
                          f"below {target}: predicate reads right-side "
                          "columns (or the left width is unknown); only "
                          "left-confined predicates push")
            return None
        if not self._insert_only(original_child.children[0]):
            self._decline(here, kind,
                          f"below {target}: left input polarity not "
                          "proven insert-only")
            return None
        moved = replace(below, children=(
            replace(node, children=(below.children[0],)),
            below.children[1]))
        self._apply(here, kind,
                    f"below {target}: predicate reads only left columns "
                    f"{sorted(reads)}; left rows are dropped before they "
                    "enter the join state")
        return moved

    # -- exchange narrowing -----------------------------------------------
    def narrow_exchanges(self, node: PNode, path: str = "") -> PNode:
        here = f"{path}/{_node_kind(node)}" if path else _node_kind(node)
        rebuilt = tuple(self.narrow_exchanges(child, here)
                        for child in node.children)
        node2 = node if rebuilt == node.children \
            else replace(node, children=rebuilt)
        if not (isinstance(node, PRehash) and not node.broadcast
                and len(node.children) == 1):
            return node2
        kind = "narrow-exchange"
        lin = self.lineage.of(node)
        child_lin = self.lineage.of(node.children[0])
        wanted = lin.in_live if lin is not None else None
        child_arity = child_lin.out_arity if child_lin is not None else None
        if wanted is None or not wanted.exact or not wanted.cols \
                or child_arity is None:
            return node2
        width = max(wanted.cols) + 1
        if width >= child_arity:
            return node2
        if not self._insert_only(node.children[0]):
            self._decline(
                here, kind,
                f"live columns {sorted(wanted.cols)} of {child_arity}, "
                "but stream polarity not proven insert-only: delta rows "
                "may be key-only tuples narrower than the declared width")
            return node2
        self._apply(here, kind,
                    f"only columns {sorted(wanted.cols)} of {child_arity} "
                    f"are live downstream; truncating to row[:{width}] "
                    "below the exchange")
        return replace(node2, children=(
            PProject(row_fn=_truncator(width),
                     children=(node2.children[0],)),))


def rewrite_plan(root: PNode,
                 table_arity: Optional[Dict[str, int]] = None,
                 *, thorough: bool = False
                 ) -> Tuple[PNode, List[RewriteDecision]]:
    """Apply every licensed rewrite; returns the (possibly new) root
    plus one :class:`RewriteDecision` per candidate, applied or
    declined.  Trees with no applicable rewrite come back with identical
    object identity.

    ``table_arity`` maps table names to column counts (the executor
    passes the catalog's); without it scans have unknown width and
    narrowing above them stays off.

    By default the structural pre-gate (:func:`_no_candidates`) short-
    circuits plans where no rewrite can apply — all three original
    bench workloads, by construction of their handler polarity — before
    any inference runs.  ``thorough=True`` (the analyzer/report path)
    always runs the full pass so structurally dead candidates still get
    their decline records.
    """
    decisions: List[RewriteDecision] = []
    if not thorough and _no_candidates(root):
        return root, decisions
    sweep: Optional[_Rewriter] = None
    for _ in range(MAX_SWEEPS):
        sweep = _Rewriter(root, table_arity, decisions)
        root = sweep.push_filters(root)
        if not sweep.changed:
            break
    # The last sweep left the tree unchanged, so its facts still key the
    # live node identities — reuse them instead of re-inferring.
    final = sweep if sweep is not None and not sweep.changed \
        else _Rewriter(root, table_arity, decisions)
    root = final.narrow_exchanges(root)
    # A candidate declined in sweep 1 is re-visited (and re-declined)
    # by every later sweep; keep the first record of each decision.
    return root, list(dict.fromkeys(decisions))


def rewrite_report(root: PNode,
                   table_arity: Optional[Dict[str, int]] = None
                   ) -> List[dict]:
    """The rewrite decisions for ``root`` as JSON-ready dicts (what
    ``repro.cli analyze --format json`` embeds under ``"rewrites"``)."""
    _, decisions = rewrite_plan(root, table_arity=table_arity,
                                thorough=True)
    return [d.to_dict() for d in decisions]
