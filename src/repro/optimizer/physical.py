"""Lowering: logical plans to executable physical plans.

Tracks the *partitioning property* of every stream (which output column
positions the rows are hash-partitioned on) and inserts rehash exchanges
exactly where co-location is violated — scans start out partitioned by
their table's load key, projections preserve partitioning when the key
column passes through untouched, joins and group-bys demand their key, and
the fixpoint demands its recursion key on both inputs ("Whenever needed, a
rehash operator re-partitions data among worker nodes", Section 4.2).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.common.errors import PlanError
from repro.common.schema import Schema
from repro.operators.expressions import (
    ColumnRef,
    Expr,
    FuncCall,
    make_key_fn,
)
from repro.optimizer.logical import (
    LAggCall,
    LApply,
    LFeedback,
    LFilter,
    LFixpoint,
    LGroupBy,
    LJoin,
    LNode,
    LProject,
    LRehash,
    LScan,
)
from repro.runtime.plan import (
    PApply,
    PFeedback,
    PFilter,
    PFixpoint,
    PGroupBy,
    PJoin,
    PNode,
    PProject,
    PRehash,
    PScan,
    PhysicalPlan,
)
from repro.udf.aggregates import AggregateSpec

#: Partitioning property values: a tuple of column positions, BROADCAST
#: (replicated everywhere), or None (unknown / arbitrary).
BROADCAST = "broadcast"
Partitioning = Optional[Tuple[int, ...]]


def lower(root: LNode) -> PhysicalPlan:
    """Lower a logical tree to a validated physical plan."""
    node, _ = _lower(root)
    return PhysicalPlan(node)


def _ensure_partitioned(pnode: PNode, schema: Schema, current: Partitioning,
                        wanted: Tuple[int, ...]) -> Tuple[PNode, Partitioning]:
    """Insert a rehash if the stream is not already partitioned on
    ``wanted`` (positions into ``schema``)."""
    if current == wanted:
        return pnode, current
    key_fn = _positional_key_fn(wanted)
    return PRehash(key_fn=key_fn, children=(pnode,)), wanted


def _positional_key_fn(positions: Tuple[int, ...]):
    if len(positions) == 1:
        i = positions[0]
        return lambda row: (row[i],)
    return lambda row: tuple(row[i] for i in positions)


def _lower(node: LNode) -> Tuple[PNode, Partitioning]:
    if isinstance(node, LScan):
        part: Partitioning = None
        if node.partition_key is not None:
            part = (node.schema.index_of(node.partition_key),)
        return PScan(node.table), part

    if isinstance(node, LFeedback):
        return PFeedback(), (node.schema.index_of(node.fixpoint_key),)

    if isinstance(node, LFilter):
        child, part = _lower(node.children[0])
        bound = node.predicate.bind(node.children[0].schema)
        predicate = lambda row, _p=bound: bool(_p.eval(row))
        udf_calls = _count_udf_calls(node.predicate)
        return (PFilter(predicate=predicate, udf_calls=udf_calls,
                        children=(child,)), part)

    if isinstance(node, LProject):
        child, part = _lower(node.children[0])
        in_schema = node.children[0].schema
        bound = [expr.bind(in_schema) for expr, _ in node.items]
        row_fn = lambda row, _b=tuple(bound): tuple(e.eval(row) for e in _b)
        return (PProject(row_fn=row_fn, children=(child,)),
                _project_partitioning(node, in_schema, part))

    if isinstance(node, LApply):
        child, part = _lower(node.children[0])
        in_schema = node.children[0].schema
        bound = [a.bind(in_schema) for a in node.args]
        arg_fn = lambda row, _b=tuple(bound): tuple(e.eval(row) for e in _b)
        udf = node.udf
        pnode = PApply(udf_factory=lambda _u=udf: _u, arg_fn=arg_fn,
                       mode=node.mode, children=(child,))
        # 'extend' keeps the input prefix, preserving partition positions.
        out_part = part if node.mode == "extend" else None
        return pnode, out_part

    if isinstance(node, LRehash):
        child, _ = _lower(node.children[0])
        if node.broadcast:
            return (PRehash(broadcast=True, children=(child,)), BROADCAST)
        if node.key is None:
            # Gather: route every row to a single worker.
            return (PRehash(key_fn=lambda row: (), children=(child,)), ())
        pos = (node.schema.index_of(node.key),)
        return (PRehash(key_fn=_positional_key_fn(pos), children=(child,)),
                pos)

    if isinstance(node, LJoin):
        return _lower_join(node)

    if isinstance(node, LGroupBy):
        return _lower_groupby(node)

    if isinstance(node, LFixpoint):
        return _lower_fixpoint(node)

    raise PlanError(f"cannot lower logical node {type(node).__name__}")


def _project_partitioning(node: LProject, in_schema: Schema,
                          part: Partitioning) -> Partitioning:
    """Partitioning survives a projection iff every key column is passed
    through as a bare column reference."""
    if part in (None, BROADCAST):
        return part
    out_positions = []
    for key_pos in part:
        found = None
        for i, (expr, _) in enumerate(node.items):
            if (isinstance(expr, ColumnRef)
                    and in_schema.index_of(expr.name) == key_pos):
                found = i
                break
        if found is None:
            return None
        out_positions.append(found)
    return tuple(out_positions)


def _lower_join(node: LJoin) -> Tuple[PNode, Partitioning]:
    left, left_part = _lower(node.left)
    right, right_part = _lower(node.right)
    if node.condition is None:
        # Cross join: broadcast the (small, mutable) right side so the
        # partitioned left side never moves (K-means' centroid join).
        if right_part is not BROADCAST:
            right = PRehash(broadcast=True, children=(right,))
        key = lambda r: ()
        out_part: Partitioning = None
        left_key = right_key = key
    else:
        lcol, rcol = node.condition
        lpos = (node.left.schema.index_of(lcol),)
        rpos = (node.right.schema.index_of(rcol),)
        left, left_part = _ensure_partitioned(left, node.left.schema,
                                              left_part, lpos)
        right, right_part = _ensure_partitioned(right, node.right.schema,
                                                right_part, rpos)
        left_key = _positional_key_fn(lpos)
        right_key = _positional_key_fn(rpos)
        out_part = lpos if node.handler_factory is None else None
    return (PJoin(left_key=left_key, right_key=right_key,
                  handler_factory=node.handler_factory, handler_side=1,
                  children=(left, right)), out_part)


def _make_specs_factory(aggs: Sequence[LAggCall], in_schema: Schema):
    compiled = []
    for agg in aggs:
        bound = [a.bind(in_schema) for a in agg.args]
        if not bound:
            arg_fn = lambda row: None
        elif len(bound) == 1:
            arg_fn = (lambda row, _e=bound[0]: _e.eval(row))
        else:
            arg_fn = (lambda row, _es=tuple(bound):
                      tuple(e.eval(row) for e in _es))
        compiled.append((agg, arg_fn))

    def factory():
        return [AggregateSpec(agg.aggregator_factory(), arg=arg_fn,
                              output=agg.out_fields[0].name)
                for agg, arg_fn in compiled]

    return factory


def _lower_groupby(node: LGroupBy) -> Tuple[PNode, Partitioning]:
    child, part = _lower(node.children[0])
    in_schema = node.children[0].schema
    key_positions = tuple(in_schema.index_of(k) for k in node.keys)
    if node.keys and not node.pre_aggregated:
        child, part = _ensure_partitioned(child, in_schema, part,
                                          key_positions)
    elif not node.keys and not node.pre_aggregated:
        # Global aggregate: a single group must live on a single worker.
        child, part = _ensure_partitioned(child, in_schema, part, ())
    key_fn = (make_key_fn(in_schema, node.keys) if node.keys
              else (lambda row: ()))
    pgroup = PGroupBy(
        key_fn=key_fn,
        specs_factory=_make_specs_factory(node.aggs, in_schema),
        clear_states_each_stratum=node.clear_each_stratum,
        children=(child,),
    )
    out_part: Partitioning
    if node.pre_aggregated:
        out_part = part if part != () else None
    else:
        out_part = tuple(range(len(node.keys))) if node.keys else ()
    return pgroup, out_part


def _lower_fixpoint(node: LFixpoint) -> Tuple[PNode, Partitioning]:
    key_pos = node.schema.index_of(node.key)
    base, base_part = _lower(node.children[0])
    recursive, rec_part = _lower(node.children[1])
    base, _ = _ensure_partitioned(base, node.children[0].schema,
                                  base_part, (key_pos,))
    recursive, _ = _ensure_partitioned(recursive, node.children[1].schema,
                                       rec_part, (key_pos,))
    key_fn = _positional_key_fn((key_pos,))
    return (PFixpoint(key_fn=key_fn, semantics="keyed",
                      while_handler_factory=node.while_handler_factory,
                      children=(base, recursive)), (key_pos,))


def _count_udf_calls(expr) -> int:
    """Number of UDF invocations per tuple inside an expression tree."""
    count = 1 if isinstance(expr, FuncCall) else 0
    for attr in ("left", "right", "base"):
        child = getattr(expr, attr, None)
        if child is not None:
            count += _count_udf_calls(child)
    for child in getattr(expr, "operands", ()) or ():
        count += _count_udf_calls(child)
    for child in getattr(expr, "args", ()) or ():
        count += _count_udf_calls(child)
    return count
