"""Logical query algebra.

The RQL compiler lowers ASTs to this algebra; the optimizer transforms it
(join order, UDF placement, pre-aggregation) and the physical generator
lowers the winner to :mod:`repro.runtime.plan` nodes.  Nodes carry their
output :class:`~repro.common.schema.Schema` and are immutable — transforms
build new trees.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.common.errors import PlanError
from repro.common.schema import Field, Schema, SQLType
from repro.operators.expressions import Expr


class LNode:
    """Base logical node; subclasses set ``children`` and ``schema``."""

    children: Tuple["LNode", ...] = ()
    schema: Schema

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def with_children(self, children: Sequence["LNode"]) -> "LNode":
        raise NotImplementedError

    def label(self) -> str:
        return type(self).__name__[1:]


class LScan(LNode):
    """Scan of a catalog table (schema re-qualified to the FROM binding)."""

    def __init__(self, table: str, schema: Schema,
                 partition_key: Optional[str], binding: Optional[str] = None):
        self.table = table
        self.partition_key = partition_key
        self.binding = binding or table
        self.schema = schema.renamed(self.binding)
        self.children = ()

    def with_children(self, children):
        assert not children
        return self

    def label(self):
        return f"Scan({self.table})"


class LFeedback(LNode):
    """Reference to the recursive (WITH) relation inside the recursive
    branch — physically the fixpoint receiver."""

    def __init__(self, cte_name: str, schema: Schema, fixpoint_key: str):
        self.cte_name = cte_name
        self.fixpoint_key = fixpoint_key
        self.schema = schema.renamed(cte_name)
        self.children = ()

    def with_children(self, children):
        assert not children
        return self

    def label(self):
        return f"FixpointReceiver({self.cte_name})"


class LFilter(LNode):
    def __init__(self, child: LNode, predicate: Expr,
                 selectivity: Optional[float] = None,
                 cost_per_tuple: Optional[float] = None):
        self.children = (child,)
        self.predicate = predicate
        self.schema = child.schema
        #: Optimizer annotations (predicate migration, Section 5.1).
        self.selectivity = selectivity
        self.cost_per_tuple = cost_per_tuple

    def with_children(self, children):
        (child,) = children
        return LFilter(child, self.predicate, self.selectivity,
                       self.cost_per_tuple)

    def label(self):
        return f"Filter({self.predicate!r})"


class LProject(LNode):
    """Projection: list of (expression, output field)."""

    def __init__(self, child: LNode, items: Sequence[Tuple[Expr, Field]]):
        self.children = (child,)
        self.items = list(items)
        self.schema = Schema([f for _, f in self.items])

    def with_children(self, children):
        (child,) = children
        return LProject(child, self.items)

    def label(self):
        return f"Project({', '.join(f.name for _, f in self.items)})"


class LApply(LNode):
    """applyFunction: extends rows with (possibly table-valued) UDF output."""

    def __init__(self, child: LNode, udf, args: Sequence[Expr],
                 out_fields: Sequence[Field], mode: str = "extend"):
        self.children = (child,)
        self.udf = udf
        self.args = list(args)
        self.out_fields = list(out_fields)
        self.mode = mode
        if mode == "extend":
            self.schema = child.schema.concat(Schema(self.out_fields))
        else:
            self.schema = Schema(self.out_fields)

    def with_children(self, children):
        (child,) = children
        return LApply(child, self.udf, self.args, self.out_fields, self.mode)

    def label(self):
        return f"ApplyFn({self.udf.name})"


class LJoin(LNode):
    """Equi-join (or handler join).  ``condition`` is (left_col, right_col)
    or None for a broadcast cross join (K-means' centroid join).

    With ``handler_factory`` set, deltas arriving from the right child are
    processed by a user join delta handler and the output schema is the
    handler's declared output (Section 3.3's join-state handler)."""

    def __init__(self, left: LNode, right: LNode,
                 condition: Optional[Tuple[str, str]],
                 handler_factory: Optional[Callable[[], Any]] = None,
                 handler_schema: Optional[Schema] = None):
        self.children = (left, right)
        self.condition = condition
        self.handler_factory = handler_factory
        if handler_factory is not None:
            if handler_schema is None:
                raise PlanError("handler join requires an output schema")
            self.schema = handler_schema
        else:
            self.schema = left.schema.concat(right.schema)

    @property
    def left(self) -> LNode:
        return self.children[0]

    @property
    def right(self) -> LNode:
        return self.children[1]

    def with_children(self, children):
        left, right = children
        return LJoin(left, right, self.condition, self.handler_factory,
                     self.schema if self.handler_factory else None)

    def swapped(self) -> "LJoin":
        """Commuted join (only for plain equi-joins)."""
        if self.handler_factory is not None:
            raise PlanError("handler joins fix their input roles")
        cond = (self.condition[1], self.condition[0]) if self.condition else None
        return LJoin(self.right, self.left, cond)

    def label(self):
        if self.handler_factory is not None:
            name = getattr(self.handler_factory(), "name", "handler")
            return f"Join[{name}]({self.condition})"
        return f"Join({self.condition})"


class LAggCall:
    """One aggregate column: resolved aggregator + argument expression(s).

    ``out_fields`` may list several fields when the aggregate is
    tuple-valued and expanded with ``.{a, b}`` (e.g. ArgMin).
    """

    def __init__(self, name: str, aggregator_factory: Callable[[], Any],
                 args: Sequence[Expr], out_fields: Sequence[Field],
                 composable: bool = False):
        self.name = name
        self.aggregator_factory = aggregator_factory
        self.args = list(args)
        self.out_fields = list(out_fields)
        self.composable = composable

    def __repr__(self):
        return f"{self.name}({', '.join(map(repr, self.args))})"


class LGroupBy(LNode):
    """Group-by with aggregate calls.  ``pre_aggregated`` marks the partial
    (combiner) instance the optimizer pushes below a rehash (Section 5.2)."""

    def __init__(self, child: LNode, keys: Sequence[str],
                 aggs: Sequence[LAggCall], pre_aggregated: bool = False,
                 clear_each_stratum: bool = False):
        self.children = (child,)
        self.keys = list(keys)
        self.aggs = list(aggs)
        self.pre_aggregated = pre_aggregated
        self.clear_each_stratum = clear_each_stratum
        key_fields = [child.schema.field(k) for k in self.keys]
        agg_fields = [f for agg in self.aggs for f in agg.out_fields]
        self.schema = Schema(key_fields + agg_fields)

    def with_children(self, children):
        (child,) = children
        return LGroupBy(child, self.keys, self.aggs, self.pre_aggregated,
                        self.clear_each_stratum)

    def label(self):
        aggs = ", ".join(repr(a) for a in self.aggs)
        kind = "PreAgg" if self.pre_aggregated else "GroupBy"
        return f"{kind}({', '.join(self.keys)}; {aggs})"


class LFixpoint(LNode):
    """Stratified recursion: children = (base, recursive)."""

    def __init__(self, base: LNode, recursive: LNode, key: str,
                 cte_name: str, union_all: bool = False,
                 schema: Optional[Schema] = None,
                 while_handler_factory: Optional[Callable[[], Any]] = None):
        self.children = (base, recursive)
        self.key = key
        self.cte_name = cte_name
        self.union_all = union_all
        #: Optional user while-state handler (Section 3.3) governing how
        #: arriving rows refine the fixpoint relation (e.g. monotone min).
        self.while_handler_factory = while_handler_factory
        # The WITH clause's declared column names take precedence over the
        # base case's output names.
        self.schema = schema if schema is not None \
            else base.schema.renamed(cte_name)

    def with_children(self, children):
        base, recursive = children
        return LFixpoint(base, recursive, self.key, self.cte_name,
                         self.union_all, schema=self.schema,
                         while_handler_factory=self.while_handler_factory)

    def label(self):
        return f"Fixpoint({self.cte_name} BY {self.key})"


class LRehash(LNode):
    """Explicit repartitioning, inserted by the optimizer."""

    def __init__(self, child: LNode, key: Optional[str],
                 broadcast: bool = False):
        self.children = (child,)
        self.key = key
        self.broadcast = broadcast
        self.schema = child.schema

    def with_children(self, children):
        (child,) = children
        return LRehash(child, self.key, self.broadcast)

    def label(self):
        if self.broadcast:
            return "Rehash(broadcast)"
        if self.key is None:
            return "Gather"
        return f"Rehash({self.key})"
