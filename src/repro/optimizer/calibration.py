"""UDF cost calibration and programmer cost hints (Section 5.1).

"REX uses a set of calibration queries plus runtime monitoring to estimate
the per-input-tuple cost, running time, and selectivity or productivity of
a UDF.  Without knowing any semantics of the function, REX assumes that
the cost is value-independent.  However, certain classes of functions have
costs dependent on their input values ... we allow programmer-supplied
cost hints — functions describing the 'big-O' relationship between the
main input parameters and the resulting costs ... REX combines [the
shape] with its calibration routines to determine the appropriate
coefficient for estimating future costs."

:func:`calibrate_udf` runs the function over sample inputs, measures real
per-call time and selectivity/productivity, and — when a ``cost_hint``
shape is supplied — fits the coefficient so future costs can be predicted
for *unseen* argument values.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from repro.common.errors import UDFError


@dataclass
class UDFProfile:
    """Calibrated execution profile for one user-defined function."""

    name: str
    per_call_seconds: float
    """Mean measured wall time per invocation over the sample."""
    selectivity: float
    """Boolean predicates: pass fraction.  Table-valued: mean output rows
    per input.  Scalars: 1.0."""
    hint_coefficient: Optional[float] = None
    """Fitted ``c`` so that cost(args) ≈ c * cost_hint(*args)."""
    samples: int = 0

    def cost_for(self, *args) -> float:
        """Predicted per-call cost for specific argument values."""
        if self.hint_coefficient is None:
            return self.per_call_seconds
        return self.hint_coefficient * self._shape(*args)

    def _shape(self, *args) -> float:
        raise UDFError("profile has no hint shape bound")  # pragma: no cover


class _HintedProfile(UDFProfile):
    def __init__(self, shape: Callable[..., float], **kwargs):
        super().__init__(**kwargs)
        self._shape_fn = shape

    def _shape(self, *args) -> float:
        return float(self._shape_fn(*args))


def calibrate_udf(udf, sample_args: Sequence[tuple],
                  repeats: int = 3) -> UDFProfile:
    """Run calibration queries for one UDF over ``sample_args``.

    Measures mean per-call wall time and observed selectivity /
    productivity.  If the UDF carries a ``cost_hint`` shape taking the
    same arguments, the coefficient is fitted by least squares over the
    sample so value-dependent costs extrapolate (e.g. an iteration-count
    argument).
    """
    if not sample_args:
        raise UDFError(f"calibration of {udf.name} needs sample inputs")
    durations: List[float] = []
    outputs: List[Any] = []
    for args in sample_args:
        started = time.perf_counter()
        for _ in range(repeats):
            result = udf(*args)
        durations.append((time.perf_counter() - started) / repeats)
        outputs.append(result)

    mean_cost = sum(durations) / len(durations)
    selectivity = _observed_selectivity(udf, outputs)

    hint = getattr(udf, "cost_hint", None)
    if hint is not None and callable(hint):
        shapes = [max(float(hint(*args)), 1e-12) for args in sample_args]
        # Least-squares fit of durations = c * shape.
        num = sum(s * d for s, d in zip(shapes, durations))
        den = sum(s * s for s in shapes)
        coefficient = num / den if den > 0 else mean_cost
        return _HintedProfile(
            shape=hint, name=udf.name, per_call_seconds=mean_cost,
            selectivity=selectivity, hint_coefficient=coefficient,
            samples=len(sample_args))
    return UDFProfile(name=udf.name, per_call_seconds=mean_cost,
                      selectivity=selectivity, samples=len(sample_args))


def _observed_selectivity(udf, outputs: List[Any]) -> float:
    if not outputs:
        return 1.0
    if getattr(udf, "table_valued", False):
        counts = [len(list(o or ())) for o in outputs]
        return sum(counts) / len(counts)
    if all(isinstance(o, bool) for o in outputs):
        return sum(1 for o in outputs if o) / len(outputs)
    return 1.0


def apply_profile(udf, profile: UDFProfile) -> None:
    """Install calibrated numbers on the UDF for the optimizer to read."""
    udf.selectivity = profile.selectivity
    udf.calibrated_cost = profile.per_call_seconds
    udf.profile = profile
