"""Cost-based query optimization (Section 5 of the paper)."""

from repro.optimizer.calibration import (
    UDFProfile,
    apply_profile,
    calibrate_udf,
)
from repro.optimizer.cost import (
    CostEstimator,
    Estimate,
    EstimationPruned,
)
from repro.optimizer.exchanges import add_exchanges
from repro.optimizer.explain import explain
from repro.optimizer.fusion import (
    FusionDecision,
    fuse_plan,
    fusion_report,
)
from repro.optimizer.logical import (
    LAggCall,
    LApply,
    LFeedback,
    LFilter,
    LFixpoint,
    LGroupBy,
    LJoin,
    LNode,
    LProject,
    LRehash,
    LScan,
)
from repro.optimizer.physical import lower
from repro.optimizer.planner import (
    Optimizer,
    OptimizerReport,
    normalize_filter_ranks,
    push_filter_into_join,
    push_pre_aggregation,
)
from repro.optimizer.stats import StatisticsCatalog, TableStats, analyze_table

__all__ = [
    "Optimizer",
    "OptimizerReport",
    "CostEstimator",
    "UDFProfile",
    "calibrate_udf",
    "apply_profile",
    "Estimate",
    "EstimationPruned",
    "StatisticsCatalog",
    "TableStats",
    "analyze_table",
    "add_exchanges",
    "explain",
    "lower",
    "FusionDecision",
    "fuse_plan",
    "fusion_report",
    "normalize_filter_ranks",
    "push_filter_into_join",
    "push_pre_aggregation",
    "LNode",
    "LScan",
    "LFeedback",
    "LFilter",
    "LProject",
    "LApply",
    "LJoin",
    "LGroupBy",
    "LAggCall",
    "LFixpoint",
    "LRehash",
]
