"""Logical exchange placement: make repartitioning explicit.

The cost model must see rehash operators to price network traffic (and to
make pre-aggregation pushdown a fair fight), so before costing or lowering
a plan the optimizer inserts explicit :class:`~repro.optimizer.logical.
LRehash` nodes wherever an operator's co-location requirement is not met —
the same rules the physical lowering enforces, expressed over logical
nodes.  Partitioning properties are tracked positionally so renames don't
confuse them.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.operators.expressions import ColumnRef
from repro.optimizer.logical import (
    LApply,
    LFeedback,
    LFilter,
    LFixpoint,
    LGroupBy,
    LJoin,
    LNode,
    LProject,
    LRehash,
    LScan,
)

BROADCAST = "broadcast"
Partitioning = Optional[Tuple[int, ...]]


def add_exchanges(node: LNode) -> LNode:
    """Return an equivalent tree with explicit rehash nodes."""
    out, _ = _place(node)
    return out


def _require(node: LNode, part: Partitioning,
             wanted: Tuple[int, ...]) -> Tuple[LNode, Partitioning]:
    if part == wanted:
        return node, part
    if not wanted:
        # Global aggregate: gather everything onto one worker.
        return LRehash(node, key=None), ()
    # Composite keys hash on their first component (sufficient for
    # co-location of equal keys, at some skew risk).
    key = node.schema[wanted[0]].name
    return LRehash(node, key=key), wanted


def _place(node: LNode) -> Tuple[LNode, Partitioning]:
    if isinstance(node, LScan):
        if node.partition_key is None:
            return node, None
        return node, (node.schema.index_of(node.partition_key),)

    if isinstance(node, LFeedback):
        return node, (node.schema.index_of(node.fixpoint_key),)

    if isinstance(node, LFilter):
        child, part = _place(node.children[0])
        return node.with_children([child]), part

    if isinstance(node, LApply):
        child, part = _place(node.children[0])
        # 'extend' appends columns, keeping key positions intact.
        return (node.with_children([child]),
                part if node.mode == "extend" else None)

    if isinstance(node, LProject):
        child, part = _place(node.children[0])
        return node.with_children([child]), _through_project(node, part)

    if isinstance(node, LRehash):
        child, _ = _place(node.children[0])
        rehashed = node.with_children([child])
        if node.broadcast:
            return rehashed, BROADCAST
        if node.key is None:
            return rehashed, ()  # gather
        return rehashed, (node.schema.index_of(node.key),)

    if isinstance(node, LJoin):
        left, lpart = _place(node.left)
        right, rpart = _place(node.right)
        if node.condition is None:
            if rpart is not BROADCAST:
                right = LRehash(right, key=None, broadcast=True)
            return node.with_children([left, right]), None
        lcol, rcol = node.condition
        lpos = (node.left.schema.index_of(lcol),)
        rpos = (node.right.schema.index_of(rcol),)
        left, _ = _require(left, lpart, lpos)
        right, _ = _require(right, rpart, rpos)
        out = node.with_children([left, right])
        return out, lpos if node.handler_factory is None else None

    if isinstance(node, LGroupBy):
        child, part = _place(node.children[0])
        if node.pre_aggregated:
            return node.with_children([child]), part
        if node.keys:
            wanted = tuple(node.children[0].schema.index_of(k)
                           for k in node.keys)
            child, _ = _require(child, part, wanted)
            out_part: Partitioning = tuple(range(len(node.keys)))
        else:
            child, _ = _require(child, part, ())
            out_part = ()
        return node.with_children([child]), out_part

    if isinstance(node, LFixpoint):
        key_pos = node.schema.index_of(node.key)
        base, bpart = _place(node.children[0])
        recursive, rpart = _place(node.children[1])
        base, _ = _require(base, bpart, (key_pos,))
        recursive, _ = _require(recursive, rpart, (key_pos,))
        return node.with_children([base, recursive]), (key_pos,)

    children = [_place(c)[0] for c in node.children]
    return node.with_children(children), None


def _through_project(node: LProject, part: Partitioning) -> Partitioning:
    if part in (None, BROADCAST):
        return part
    in_schema = node.children[0].schema
    out = []
    for pos in part:
        hit = None
        for i, (expr, _) in enumerate(node.items):
            if isinstance(expr, ColumnRef) and in_schema.index_of(expr.name) == pos:
                hit = i
                break
        if hit is None:
            return None
        out.append(hit)
    return tuple(out)
