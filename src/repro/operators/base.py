"""Operator protocol for REX's push-based pipelined execution.

Execution is data-driven (Section 4.2): scans push annotated tuples (deltas)
through a per-worker tree of pipelined operators.  Each operator receives
deltas on numbered input ports via :meth:`Operator.receive` and pushes
results to its parent.  Punctuation (end-of-stratum / end-of-query markers)
flows the same way: "unary operators like selection or aggregation simply
forward it directly to their parent operators, while n-ary operators such as
a join or rehash wait until all inputs have received appropriate punctuation
before proceeding."
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.common.deltas import Delta
from repro.common.errors import ExecutionError
from repro.common.punctuation import Punctuation


class RuntimeHooks:
    """Callbacks from operators into the query driver.

    The default implementation is inert so operators can be unit-tested
    standalone; the real driver (:mod:`repro.runtime`) overrides these to
    collect per-iteration metrics.
    """

    def count_tuples(self, n: int = 1) -> None:
        """Record ``n`` tuples processed by some operator."""

    def count_admitted(self, n: int) -> None:
        """Record ``n`` deltas admitted into the next stratum by a fixpoint."""


class ExecContext:
    """Per-worker execution environment handed to every operator instance.

    ``batch=True`` selects batch-vectorized execution: sources and network
    receivers move ``List[Delta]`` batches through :meth:`Operator.push_batch`
    instead of one virtual :meth:`Operator.receive` call per tuple.  The
    simulated cost accounting is identical in both modes (same charge
    multisets; see :mod:`repro.cluster.cluster`), only wall clock differs.
    """

    def __init__(self, worker, cluster=None, snapshot=None,
                 hooks: Optional[RuntimeHooks] = None, registry=None,
                 batch: bool = False, obs=None, sanitizer=None,
                 fuse: bool = False, columnar: bool = False):
        self.worker = worker
        self.cluster = cluster
        self.snapshot = snapshot
        self.hooks = hooks or RuntimeHooks()
        self.registry = registry
        self.batch = batch
        #: Fused-execution fabric fast paths (set by the executor on
        #: unperturbed ``ExecOptions(fuse=True)`` runs): operators may
        #: take bulk-accounting shortcuts that preserve message order and
        #: charge multisets exactly (e.g. the rehash sender's
        #: punctuation fanout).  ``False`` — the unit-test default —
        #: keeps every legacy code path.
        self.fuse = fuse
        #: Columnar backend fabric: sources emit
        #: :class:`~repro.operators.blocks.ColumnBlock` batches into
        #: block-capable consumers (``Operator.accepts_blocks``) instead
        #: of ``List[Delta]``.  Set by the executor only on unsanitized
        #: batch runs — the sanitizer's delta-invariant wrappers hook
        #: ``push_batch``, so block traffic under ``sanitize != off``
        #: would bypass them; the row path (the oracle) runs instead,
        #: with identical charge multisets either way.
        self.columnar = columnar
        #: Optional :class:`repro.obs.ObsContext`.  When set, every
        #: operator opened against this context is instrumented (tracing,
        #: per-operator metrics, cost attribution); when ``None`` — the
        #: default — no hook is installed anywhere on the hot path.
        self.obs = obs
        #: Optional :class:`repro.analysis.sanitizer.Sanitizer`.  When set,
        #: stateful operators opened against this context get runtime
        #: delta-invariant checks (REX200-series); ``None`` installs
        #: nothing.
        self.sanitizer = sanitizer

    @property
    def node_id(self) -> int:
        return self.worker.id

    @property
    def cost(self):
        return self.worker.cost

    def charge_cpu(self, seconds: float, n: int = 1) -> None:
        self.worker.charge_cpu(seconds, n)

    def charge_tuple(self, per_tuple: Optional[float] = None) -> None:
        self.worker.charge_tuples(1, per_tuple)
        self.hooks.count_tuples(1)

    def charge_tuple_batch(self, n: int, per_tuple: Optional[float] = None) -> None:
        """Charge ``n`` tuples at once — one tally update instead of ``n``
        call chains; same accounting as ``n`` :meth:`charge_tuple` calls."""
        self.worker.charge_tuples(n, per_tuple)
        self.hooks.count_tuples(n)


class Operator:
    """Base class for physical operators.

    Subclasses implement :meth:`process` (one delta on one port) and, if
    stateful, :meth:`on_stratum_end` (called once all inputs delivered the
    stratum's punctuation).  Wiring: each operator has exactly one parent;
    call :meth:`add_input` on the parent for each child to allocate ports.
    """

    #: CPU charged per received tuple, overridable per subclass.
    per_tuple_cost: Optional[float] = None

    #: True on operators with a native columnar kernel
    #: (:meth:`push_block` consuming a ColumnBlock without
    #: materializing deltas).  Sources consult this before building a
    #: block at all — emitting a block into a row-only consumer would
    #: just pay the boundary conversion for nothing.
    accepts_blocks: bool = False

    def __init__(self, name: Optional[str] = None):
        self.name = name or type(self).__name__
        self.parent: Optional[Operator] = None
        self.parent_port: int = 0
        self.num_ports = 0
        # How many punctuations each port must see before the stratum is
        # locally complete (exchange receivers need one per sender).
        self._punct_quota: Dict[int, int] = {}
        self._punct_seen: Dict[int, int] = {}
        self._pending_punct: Optional[Punctuation] = None
        self.ctx: Optional[ExecContext] = None

    # -- wiring ---------------------------------------------------------
    def add_input(self, child: "Operator", quota: int = 1) -> int:
        """Register ``child`` as an input; returns the allocated port."""
        port = self.num_ports
        self.num_ports += 1
        self._punct_quota[port] = quota
        self._punct_seen[port] = 0
        child.parent = self
        child.parent_port = port
        return port

    def set_punct_quota(self, port: int, quota: int) -> None:
        self._punct_quota[port] = quota

    def open(self, ctx: ExecContext) -> None:
        """Bind the operator to its worker context (called once per query).

        With an observability context attached, this is also where the
        operator's entry points get their instrumentation wrappers —
        subclass ``open`` overrides call ``super().open(ctx)`` first, so
        anything they register afterwards (e.g. a network handler) already
        sees the wrapped bound methods.
        """
        self.ctx = ctx
        if ctx.obs is not None:
            ctx.obs.instrument_operator(self, ctx.node_id)
        if ctx.sanitizer is not None:
            ctx.sanitizer.instrument_operator(self, ctx)

    # -- data path -------------------------------------------------------
    def receive(self, delta: Delta, port: int = 0) -> None:
        """Entry point for one delta: charges cost, then processes."""
        self.ctx.charge_tuple(self.per_tuple_cost)
        self.process(delta, port)

    def push_batch(self, deltas: List[Delta], port: int = 0) -> None:
        """Entry point for a batch of deltas.

        Semantically equivalent to ``len(deltas)`` :meth:`receive` calls in
        order (identical outputs, state, and charge multisets).  This default
        charges the whole batch in one tally update and loops ``process``;
        hot operators override it with vectorized implementations that also
        coalesce their downstream emissions via :meth:`emit_batch`.
        """
        if not deltas:
            return
        self.ctx.charge_tuple_batch(len(deltas), self.per_tuple_cost)
        process = self.process
        for delta in deltas:
            process(delta, port)

    def push_block(self, block, port: int = 0) -> None:
        """Entry point for a :class:`~repro.operators.blocks.ColumnBlock`.

        This default is the block→row boundary adapter: it materializes
        the exact delta batch the row pipeline would have carried and
        falls back to :meth:`push_batch` — stateful operators without a
        columnar kernel (HashJoin, Fixpoint, ExchangeReceiver) consume
        block traffic through it transparently, with identical outputs
        and charge multisets.  Operators overriding this with a native
        kernel set :attr:`accepts_blocks`.
        """
        deltas = block.to_deltas()
        if deltas:
            self.push_batch(deltas, port)

    def emit_block(self, block) -> None:
        """Hand a whole output block to the parent's block entry point
        (the parent's boundary adapter degrades it to rows if needed)."""
        if self.parent is None:
            raise ExecutionError(f"{self.name} has no parent to emit to")
        self.parent.push_block(block, self.parent_port)

    def emit(self, delta: Delta) -> None:
        if self.parent is None:
            raise ExecutionError(f"{self.name} has no parent to emit to")
        self.parent.receive(delta, self.parent_port)

    def emit_all(self, deltas) -> None:
        for d in deltas:
            self.emit(d)

    def emit_batch(self, deltas: List[Delta]) -> None:
        """Hand a whole output batch to the parent's batch entry point."""
        if not deltas:
            return
        if self.parent is None:
            raise ExecutionError(f"{self.name} has no parent to emit to")
        self.parent.push_batch(deltas, self.parent_port)

    # -- punctuation path ---------------------------------------------------
    def on_punctuation(self, punct: Punctuation, port: int = 0) -> None:
        """Count punctuation; once every port met its quota, close the
        stratum locally and forward a single punctuation upward."""
        if port not in self._punct_quota:
            # Edges wired implicitly (tests, network receivers) default to
            # a quota of one punctuation per stratum.
            self._punct_quota[port] = 1
            self._punct_seen[port] = 0
        self._punct_seen[port] += 1
        if self._punct_seen[port] > self._punct_quota[port]:
            raise ExecutionError(
                f"{self.name}: too many punctuations on port {port} "
                f"({self._punct_seen[port]} > quota {self._punct_quota[port]})"
            )
        self._pending_punct = punct
        if self._stratum_complete():
            for p in self._punct_seen:
                self._punct_seen[p] = 0
            self.on_stratum_end(punct)
            self.forward_punctuation(punct)

    def _stratum_complete(self) -> bool:
        return all(self._punct_seen[p] >= self._punct_quota[p]
                   for p in self._punct_quota)

    def on_stratum_end(self, punct: Punctuation) -> None:
        """Hook for stateful operators (flush group-by output, etc.)."""

    def forward_punctuation(self, punct: Punctuation) -> None:
        if self.parent is not None:
            self.parent.on_punctuation(punct, self.parent_port)

    def __repr__(self):
        return f"<{self.name}>"


class SourceOperator(Operator):
    """An operator with no inputs, driven by the runtime (scan, feedback)."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name)

    def run_stratum(self, stratum: int) -> None:  # pragma: no cover
        """Emit this stratum's data followed by punctuation."""
        raise NotImplementedError

    def process(self, delta: Delta, port: int) -> None:  # pragma: no cover
        raise ExecutionError(f"{self.name} is a source; it accepts no input")
