"""Row expressions: the compiled form of RQL scalar expressions.

The RQL front end and the optimizer both manipulate these trees; binding an
expression against a :class:`~repro.common.schema.Schema` resolves column
references to positional indices, after which :meth:`Expr.eval` is a pure
function of the row.  User functions appear as :class:`FuncCall` nodes whose
cost/selectivity metadata the optimizer reads for predicate ordering.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, List, Optional, Sequence

from repro.common.errors import PlanError, SchemaError
from repro.common.schema import Schema, SQLType


class Expr:
    """Base class; subclasses are immutable once bound."""

    def bind(self, schema: Schema) -> "Expr":
        """Return a copy with column references resolved against ``schema``."""
        raise NotImplementedError

    def eval(self, row) -> Any:
        raise NotImplementedError

    def output_type(self, schema: Optional[Schema] = None) -> SQLType:
        return SQLType.ANY

    def columns(self) -> List[str]:
        """Unbound column names referenced (for planning)."""
        return []


class ColumnRef(Expr):
    """A (possibly qualified) column reference."""

    def __init__(self, name: str, index: Optional[int] = None):
        self.name = name
        self.index = index

    def bind(self, schema: Schema) -> "ColumnRef":
        return ColumnRef(self.name, schema.index_of(self.name))

    def eval(self, row):
        if self.index is None:
            raise PlanError(f"unbound column reference {self.name!r}")
        return row[self.index]

    def output_type(self, schema=None):
        if schema is not None and schema.has(self.name):
            return schema.field(self.name).type
        return SQLType.ANY

    def columns(self):
        return [self.name]

    def __repr__(self):
        return f"col({self.name})"


class Literal(Expr):
    def __init__(self, value: Any):
        self.value = value

    def bind(self, schema):
        return self

    def eval(self, row):
        return self.value

    def output_type(self, schema=None):
        if isinstance(self.value, bool):
            return SQLType.BOOLEAN
        if isinstance(self.value, int):
            return SQLType.INTEGER
        if isinstance(self.value, float):
            return SQLType.DOUBLE
        if isinstance(self.value, str):
            return SQLType.VARCHAR
        return SQLType.ANY

    def __repr__(self):
        return f"lit({self.value!r})"


def _null_safe(fn):
    """SQL semantics: any NULL operand yields NULL."""
    def wrapped(a, b):
        if a is None or b is None:
            return None
        return fn(a, b)
    return wrapped


_ARITH = {
    "+": _null_safe(operator.add),
    "-": _null_safe(operator.sub),
    "*": _null_safe(operator.mul),
    "/": _null_safe(lambda a, b: a / b if b != 0 else None),
    "%": _null_safe(lambda a, b: a % b if b != 0 else None),
}

_COMPARE = {
    "=": _null_safe(operator.eq),
    "<>": _null_safe(operator.ne),
    "!=": _null_safe(operator.ne),
    "<": _null_safe(operator.lt),
    "<=": _null_safe(operator.le),
    ">": _null_safe(operator.gt),
    ">=": _null_safe(operator.ge),
}


class BinaryOp(Expr):
    """Arithmetic or comparison over two sub-expressions."""

    def __init__(self, op: str, left: Expr, right: Expr):
        table = _ARITH if op in _ARITH else _COMPARE
        if op not in table:
            raise PlanError(f"unknown operator {op!r}")
        self.op = op
        self.left = left
        self.right = right
        self._fn = table[op]

    def bind(self, schema):
        return BinaryOp(self.op, self.left.bind(schema), self.right.bind(schema))

    def eval(self, row):
        return self._fn(self.left.eval(row), self.right.eval(row))

    def output_type(self, schema=None):
        if self.op in _COMPARE:
            return SQLType.BOOLEAN
        lt = self.left.output_type(schema)
        rt = self.right.output_type(schema)
        if lt is SQLType.DOUBLE or rt is SQLType.DOUBLE or self.op == "/":
            return SQLType.DOUBLE
        if lt is SQLType.INTEGER and rt is SQLType.INTEGER:
            return SQLType.INTEGER
        return SQLType.ANY

    def columns(self):
        return self.left.columns() + self.right.columns()

    def __repr__(self):
        return f"({self.left!r} {self.op} {self.right!r})"


class BoolOp(Expr):
    """AND / OR / NOT with SQL three-valued logic collapsed to
    None-propagation (sufficient for the supported queries)."""

    def __init__(self, op: str, operands: Sequence[Expr]):
        if op not in ("and", "or", "not"):
            raise PlanError(f"unknown boolean operator {op!r}")
        if op == "not" and len(operands) != 1:
            raise PlanError("NOT takes exactly one operand")
        self.op = op
        self.operands = list(operands)

    def bind(self, schema):
        return BoolOp(self.op, [e.bind(schema) for e in self.operands])

    def eval(self, row):
        if self.op == "not":
            v = self.operands[0].eval(row)
            return None if v is None else not v
        values = [e.eval(row) for e in self.operands]
        if self.op == "and":
            if any(v is False for v in values):
                return False
            return None if any(v is None for v in values) else True
        if any(v is True for v in values):
            return True
        return None if any(v is None for v in values) else False

    def output_type(self, schema=None):
        return SQLType.BOOLEAN

    def columns(self):
        return [c for e in self.operands for c in e.columns()]

    def __repr__(self):
        return f"{self.op}({', '.join(map(repr, self.operands))})"


class FuncCall(Expr):
    """A scalar UDF call; ``udf`` is a resolved UDF object."""

    def __init__(self, udf, args: Sequence[Expr]):
        self.udf = udf
        self.args = list(args)

    def bind(self, schema):
        return FuncCall(self.udf, [a.bind(schema) for a in self.args])

    def eval(self, row):
        return self.udf(*(a.eval(row) for a in self.args))

    def output_type(self, schema=None):
        if self.udf.output_fields:
            return self.udf.output_fields[0][1]
        return SQLType.ANY

    def columns(self):
        return [c for a in self.args for c in a.columns()]

    def __repr__(self):
        return f"{self.udf.name}({', '.join(map(repr, self.args))})"


class TupleField(Expr):
    """Positional access into a tuple-valued expression.

    Supports the RQL ``expr.{a, b}`` expansion: e.g. ``ArgMin(...)`` yields a
    pair, and ``TupleField(agg_col, 0)`` / ``TupleField(agg_col, 1)`` project
    its components into separate output columns.
    """

    def __init__(self, base: Expr, index: int):
        self.base = base
        self.index = index

    def bind(self, schema):
        return TupleField(self.base.bind(schema), self.index)

    def eval(self, row):
        value = self.base.eval(row)
        if value is None:
            return None
        return value[self.index]

    def columns(self):
        return self.base.columns()

    def __repr__(self):
        return f"{self.base!r}.[{self.index}]"


def make_key_fn(schema: Schema, key_cols: Sequence[str]) -> Callable[[tuple], tuple]:
    """Compile a key extractor for partitioning/grouping on ``key_cols``."""
    indices = tuple(schema.index_of(c) for c in key_cols)
    if len(indices) == 1:
        i = indices[0]
        return lambda row: (row[i],)
    return lambda row: tuple(row[i] for i in indices)


def make_row_fn(exprs: Sequence[Expr], schema: Schema) -> Callable[[tuple], tuple]:
    """Compile a projection: row -> tuple of evaluated expressions."""
    bound = [e.bind(schema) for e in exprs]
    return lambda row: tuple(e.eval(row) for e in bound)
