"""Pipelined group-by with delta-aware aggregate state.

Section 3.3's take-aways, implemented literally: (1) the operator's internal
state maps each grouping key to aggregate-function-specific intermediate
state; (2) on receiving a delta the operator determines the key, then each
aggregate function updates its own intermediate state and decides what to
emit.  Built-ins handle insert/delete/replace (and numeric value-updates);
everything else needs a UDA.

Emission: in ``stratum`` mode (the default, matching the paper's punctuated
execution) dirty groups are flushed when the stratum's punctuation arrives —
the first output for a key is an insertion, subsequent changed outputs are
replacements, and a group whose contributors all disappear emits a deletion.
``stream`` mode flushes after every delta (streamed partial aggregation,
Section 4.2), trading more output deltas for no buffering delay.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.common.deltas import Delta, DeltaOp
from repro.common.errors import ExecutionError
from repro.common.punctuation import Punctuation
from repro.common.sizes import row_bytes
from repro.operators.base import Operator
from repro.operators.blocks import columnar_kernel
from repro.udf.aggregates import AggregateSpec
from repro.udf.builtins import ArgMin, Sum


class _Group:
    __slots__ = ("states", "live", "last")

    def __init__(self, states: List[Any]):
        self.states = states
        self.live = 0          # net contributing tuples (insert - delete)
        self.last = None       # last emitted output row, if any


class GroupBy(Operator):
    """Hash aggregation keyed by a compiled key extractor."""

    #: Key-memo capacity: the row->key cache is wiped when it reaches this
    #: many entries.  Class attribute so tests can pin eviction behavior
    #: with a small cap.
    key_memo_cap: int = 65536

    #: Proofs from the delta-polarity abstract interpretation
    #: (:mod:`repro.analysis.absint`), set by the executor when the
    #: operator's input polarity is statically exact.  ``proof_polarity``
    #: is the proven kind set (asserted by the sanitizer, REX307 on
    #: contradiction); the two booleans arm the specialized batch loops
    #: below, which skip the per-delta op dispatch and the
    #: replace-straddle decompose while keeping outputs and simulated
    #: charge multisets identical to the general path.
    proof_polarity: Optional[frozenset] = None
    proof_insert_only: bool = False
    proof_update_only: bool = False

    accepts_blocks = True

    def __init__(self, key_fn: Callable[[tuple], tuple],
                 specs: Sequence[AggregateSpec],
                 mode: str = "stratum",
                 clear_states_each_stratum: bool = False,
                 reset_emissions_each_stratum: bool = False,
                 name: Optional[str] = None):
        if mode not in ("stratum", "stream"):
            raise ExecutionError(f"unknown GroupBy mode {mode!r}")
        super().__init__(name or "GroupBy")
        self.key_fn = key_fn
        self.specs = list(specs)
        self.mode = mode
        self.clear_states_each_stratum = clear_states_each_stratum
        self.reset_emissions_each_stratum = reset_emissions_each_stratum
        self.groups: Dict[tuple, _Group] = {}
        self._dirty: Dict[tuple, None] = {}  # insertion-ordered set
        self._key_memo: Dict[tuple, tuple] = {}  # row -> extracted key
        self.block_batches = 0
        # Memo accounting, surfaced by repro.obs as memo.groupby.* counters.
        # Per-delta work lives only in the rare branches (miss, eviction);
        # hits are reconstructed once per batch.
        self.memo_hits = 0
        self.memo_misses = 0
        self.memo_evictions = 0

    def open(self, ctx):
        super().open(ctx)
        self.per_tuple_cost = ctx.cost.cpu_tuple_cost + ctx.cost.hash_op_cost

    # -- state updates --------------------------------------------------
    def _group(self, key: tuple) -> _Group:
        self.ctx.worker.charge_state_access()
        group = self.groups.get(key)
        if group is None:
            group = _Group([spec.aggregator.init_state() for spec in self.specs])
            self.groups[key] = group
            self.ctx.worker.add_state_bytes(row_bytes(key) + 32)
        return group

    def process(self, delta: Delta, port: int) -> None:
        if delta.op is DeltaOp.REPLACE:
            old_key = self.key_fn(delta.old)
            new_key = self.key_fn(delta.row)
            if old_key != new_key:
                # The replacement straddles two groups: decompose.
                self.process(Delta(DeltaOp.DELETE, delta.old), port)
                self.process(Delta(DeltaOp.INSERT, delta.row), port)
                return
            key = new_key
        else:
            key = self.key_fn(delta.row)
        group = self._group(key)

        if delta.op is DeltaOp.INSERT:
            group.live += 1
        elif delta.op is DeltaOp.DELETE:
            group.live -= 1
        elif delta.op is DeltaOp.UPDATE:
            # A value-update keeps the group alive even if nothing was
            # ever inserted (PageRank's diff stream works this way).
            group.live = max(group.live, 1)

        for i, spec in enumerate(self.specs):
            value = spec.arg(delta.row) if delta.op is not DeltaOp.UPDATE else None
            old_value = spec.arg(delta.old) if delta.op is DeltaOp.REPLACE else None
            per_delta_cost = getattr(spec.aggregator, "per_delta_cost", None)
            if per_delta_cost is not None:
                self.ctx.charge_cpu(per_delta_cost(self.ctx.cost))
            elif delta.op is DeltaOp.UPDATE:
                # δ(E) payloads are interpreted by user-defined handler
                # code; charge the UDC invocation cost.
                self.ctx.charge_cpu(self.ctx.cost.udf_cost_per_tuple(batched=True))
            group.states[i] = spec.aggregator.agg_state(
                group.states[i], delta, value, old_value
            )

        if self.mode == "stream":
            self._flush_key(key, group)
        else:
            self._dirty[key] = None

    def push_batch(self, deltas, port: int = 0) -> None:
        """Vectorized stratum-mode path: key extraction, state lookup, and
        per-spec dispatch amortized per batch; one dirty-set pass."""
        if self.mode != "stream" and self.specs:
            if self.proof_insert_only:
                self._push_batch_insert_only(deltas)
            elif self.proof_update_only:
                self._push_batch_update_only(deltas)
            else:
                self._push_batch_stratum(deltas, port)
        else:
            super().push_batch(deltas, port)

    def _push_batch_stratum(self, deltas, port: int) -> None:
        if not deltas:
            return
        ctx = self.ctx
        ctx.charge_tuple_batch(len(deltas), self.per_tuple_cost)
        key_fn = self.key_fn
        groups = self.groups
        dirty = self._dirty
        specs = self.specs
        worker = ctx.worker
        charge_state_access = worker.charge_state_access
        # charge_state_access is a no-op until state spills past the
        # memory budget; guard with an inline compare in the hot loop.
        memory_budget = worker.cost.worker_memory_bytes
        charge_cpu = ctx.charge_cpu
        cost = ctx.cost
        # Hoist per-spec dispatch out of the loop: (arg, agg_state, charge).
        spec_plan = []
        for spec in specs:
            per_delta_cost = getattr(spec.aggregator, "per_delta_cost", None)
            spec_plan.append((
                spec.arg, spec.aggregator.agg_state,
                per_delta_cost(cost) if per_delta_cost is not None else None,
            ))
        udf_cost = cost.udf_cost_per_tuple(batched=True)
        insert, delete = DeltaOp.INSERT, DeltaOp.DELETE
        replace, value_update = DeltaOp.REPLACE, DeltaOp.UPDATE
        # CPU charges are constants per spec, so count them in the loop
        # and charge once per batch — the worker's tally accounting makes
        # n charges of v and one charge of (v, n) the same multiset.
        charge_counts = [0] * len(spec_plan)
        udf_charges = 0
        if len(spec_plan) == 1:
            s_arg, s_agg_state, s_per_delta = spec_plan[0]
            single = True
            # Exact-class check so the running-SUM δ fold (PageRank's hot
            # path) can be inlined below; Sum subclasses keep the generic
            # agg_state call.
            s_sum_fast = (specs[0].aggregator.__class__ is Sum
                          and s_per_delta is None)
            # Same idea for ArgMin inserts (SSSP's offer stream): the
            # multiset add is inlined below with _key's exact (value, id)
            # ordering.  ArgMax keeps the generic call (_Rev wrapping).
            s_argmin_fast = (specs[0].aggregator.__class__ is ArgMin
                             and s_per_delta is None)
        else:
            single = False
            s_sum_fast = s_argmin_fast = False
        # row -> key memo: group keys repeat heavily (every δ aimed at a
        # group re-extracts the same key), and key functions are pure.
        key_memo = self._key_memo
        key_memo_cap = self.key_memo_cap
        misses = bypassed = 0
        for delta in deltas:
            op = delta.op
            row = delta.row
            if op is replace:
                # Replacements carry two row images, so they always
                # extract keys directly and bypass the memo.
                bypassed += 1
                old_key = key_fn(delta.old)
                key = key_fn(row)
                if old_key != key:
                    # The replacement straddles two groups: decompose.
                    self.process(Delta(delete, delta.old), port)
                    self.process(Delta(insert, row), port)
                    continue
            else:
                # get() instead of [] + KeyError: streams of mostly-distinct
                # rows (SSSP's offers) miss on nearly every delta, and a
                # raised exception costs far more than a None test (key
                # functions return tuples, never None).
                try:
                    key = key_memo.get(row)
                except TypeError:
                    misses += 1  # unhashable row: uncacheable lookup
                    key = key_fn(row)
                else:
                    if key is None:
                        misses += 1
                        if len(key_memo) >= key_memo_cap:
                            self.memo_evictions += len(key_memo)
                            key_memo.clear()
                        key = key_memo[row] = key_fn(row)
            if worker.state_bytes > memory_budget:
                charge_state_access()
            try:
                group = groups[key]
            except KeyError:
                group = _Group([spec.aggregator.init_state()
                                for spec in specs])
                groups[key] = group
                worker.add_state_bytes(row_bytes(key) + 32)
            if op is insert:
                group.live += 1
                if s_argmin_fast:
                    ident, value = s_arg(row)
                    # ArgMin.agg_state's INSERT branch with _key and the
                    # multiset add inlined (no charge: INSERT carries no
                    # per-delta or UDC cost on this path).
                    state0 = group.states[0]
                    k = (value, ident)
                    mlive = state0._live
                    mlive[k] = mlive.get(k, 0) + 1
                    state0.size += 1
                    if not state0._stale:
                        best = state0._best
                        if best is None or k < best:
                            state0._best = k
                    dirty[key] = None
                    continue
            elif op is delete:
                group.live -= 1
            elif op is value_update:
                if group.live < 1:
                    group.live = 1
                if s_sum_fast:
                    payload = delta.payload
                    # Same fold, charge, and float-operation order as
                    # Sum.agg_state's UPDATE branch; non-plain-numeric
                    # payloads (incl. bool) fall through to it.
                    if (payload.__class__ is float
                            or payload.__class__ is int):
                        state0 = group.states[0]
                        if state0["count"] < 1:
                            state0["count"] = 1
                        state0["sum"] += payload
                        udf_charges += 1
                        dirty[key] = None
                        continue
            is_update = op is value_update
            states = group.states
            if single:
                if s_per_delta is not None:
                    charge_counts[0] += 1
                elif is_update:
                    udf_charges += 1
                states[0] = s_agg_state(
                    states[0], delta,
                    None if is_update else s_arg(row),
                    s_arg(delta.old) if op is replace else None)
            else:
                i = 0
                for arg, agg_state, per_delta in spec_plan:
                    value = None if is_update else arg(delta.row)
                    old_value = arg(delta.old) if op is replace else None
                    if per_delta is not None:
                        charge_counts[i] += 1
                    elif is_update:
                        udf_charges += 1
                    states[i] = agg_state(states[i], delta, value, old_value)
                    i += 1
            dirty[key] = None
        for i, (_, _, per_delta) in enumerate(spec_plan):
            if charge_counts[i]:
                charge_cpu(per_delta, charge_counts[i])
        if udf_charges:
            charge_cpu(udf_cost, udf_charges)
        self.memo_misses += misses
        self.memo_hits += len(deltas) - bypassed - misses

    def _batch_prologue(self, deltas):
        """Shared prologue of the proof-specialized batch loops: the
        batch CPU charge plus the hoisted locals of
        :meth:`_push_batch_stratum` (identical charges, identical spec
        dispatch plan)."""
        ctx = self.ctx
        ctx.charge_tuple_batch(len(deltas), self.per_tuple_cost)
        cost = ctx.cost
        spec_plan = []
        for spec in self.specs:
            per_delta_cost = getattr(spec.aggregator, "per_delta_cost", None)
            spec_plan.append((
                spec.arg, spec.aggregator.agg_state,
                per_delta_cost(cost) if per_delta_cost is not None else None,
            ))
        return ctx, cost, spec_plan

    def _push_batch_insert_only(self, deltas) -> None:
        """Insert-only specialization (REX300 proof): every delta is a
        ``+``, so the op dispatch, the replace decompose, and the
        delete/update live-count branches are all skipped.  Charge
        multiset per delta is identical to the general loop's INSERT
        branch (no UDC charge; per-delta aggregator costs counted and
        charged once per batch)."""
        if not deltas:
            return
        ctx, cost, spec_plan = self._batch_prologue(deltas)
        key_fn = self.key_fn
        groups = self.groups
        dirty = self._dirty
        specs = self.specs
        worker = ctx.worker
        charge_state_access = worker.charge_state_access
        memory_budget = worker.cost.worker_memory_bytes
        charge_cpu = ctx.charge_cpu
        charge_counts = [0] * len(spec_plan)
        if len(spec_plan) == 1:
            s_arg, s_agg_state, s_per_delta = spec_plan[0]
            single = True
            s_argmin_fast = (specs[0].aggregator.__class__ is ArgMin
                             and s_per_delta is None)
        else:
            single = False
            s_argmin_fast = False
        key_memo = self._key_memo
        key_memo_cap = self.key_memo_cap
        misses = 0
        for delta in deltas:
            row = delta.row
            try:
                key = key_memo.get(row)
            except TypeError:
                misses += 1
                key = key_fn(row)
            else:
                if key is None:
                    misses += 1
                    if len(key_memo) >= key_memo_cap:
                        self.memo_evictions += len(key_memo)
                        key_memo.clear()
                    key = key_memo[row] = key_fn(row)
            if worker.state_bytes > memory_budget:
                charge_state_access()
            try:
                group = groups[key]
            except KeyError:
                group = _Group([spec.aggregator.init_state()
                                for spec in specs])
                groups[key] = group
                worker.add_state_bytes(row_bytes(key) + 32)
            group.live += 1
            if s_argmin_fast:
                ident, value = s_arg(row)
                state0 = group.states[0]
                k = (value, ident)
                mlive = state0._live
                mlive[k] = mlive.get(k, 0) + 1
                state0.size += 1
                if not state0._stale:
                    best = state0._best
                    if best is None or k < best:
                        state0._best = k
                dirty[key] = None
                continue
            states = group.states
            if single:
                if s_per_delta is not None:
                    charge_counts[0] += 1
                states[0] = s_agg_state(states[0], delta, s_arg(row), None)
            else:
                i = 0
                for arg, agg_state, per_delta in spec_plan:
                    if per_delta is not None:
                        charge_counts[i] += 1
                    states[i] = agg_state(states[i], delta, arg(row), None)
                    i += 1
            dirty[key] = None
        for i, (_, _, per_delta) in enumerate(spec_plan):
            if charge_counts[i]:
                charge_cpu(per_delta, charge_counts[i])
        self.memo_misses += misses
        self.memo_hits += len(deltas) - misses

    def _push_batch_update_only(self, deltas) -> None:
        """δ-only specialization (the PageRank / K-means hot loop): every
        delta is a value-update, so the op dispatch collapses to the
        UPDATE branch — live pinning, the inline running-SUM fold when it
        applies, and one UDC charge per generic fold, exactly as the
        general loop charges them."""
        if not deltas:
            return
        ctx, cost, spec_plan = self._batch_prologue(deltas)
        key_fn = self.key_fn
        groups = self.groups
        dirty = self._dirty
        specs = self.specs
        worker = ctx.worker
        charge_state_access = worker.charge_state_access
        memory_budget = worker.cost.worker_memory_bytes
        charge_cpu = ctx.charge_cpu
        udf_cost = cost.udf_cost_per_tuple(batched=True)
        charge_counts = [0] * len(spec_plan)
        udf_charges = 0
        if len(spec_plan) == 1:
            s_arg, s_agg_state, s_per_delta = spec_plan[0]
            single = True
            s_sum_fast = (specs[0].aggregator.__class__ is Sum
                          and s_per_delta is None)
        else:
            single = False
            s_sum_fast = False
        key_memo = self._key_memo
        key_memo_cap = self.key_memo_cap
        misses = 0
        for delta in deltas:
            row = delta.row
            try:
                key = key_memo.get(row)
            except TypeError:
                misses += 1
                key = key_fn(row)
            else:
                if key is None:
                    misses += 1
                    if len(key_memo) >= key_memo_cap:
                        self.memo_evictions += len(key_memo)
                        key_memo.clear()
                    key = key_memo[row] = key_fn(row)
            if worker.state_bytes > memory_budget:
                charge_state_access()
            try:
                group = groups[key]
            except KeyError:
                group = _Group([spec.aggregator.init_state()
                                for spec in specs])
                groups[key] = group
                worker.add_state_bytes(row_bytes(key) + 32)
            if group.live < 1:
                group.live = 1
            if s_sum_fast:
                payload = delta.payload
                if (payload.__class__ is float
                        or payload.__class__ is int):
                    state0 = group.states[0]
                    if state0["count"] < 1:
                        state0["count"] = 1
                    state0["sum"] += payload
                    udf_charges += 1
                    dirty[key] = None
                    continue
            states = group.states
            if single:
                if s_per_delta is not None:
                    charge_counts[0] += 1
                else:
                    udf_charges += 1
                states[0] = s_agg_state(states[0], delta, None, None)
            else:
                i = 0
                for _arg, agg_state, per_delta in spec_plan:
                    if per_delta is not None:
                        charge_counts[i] += 1
                    else:
                        udf_charges += 1
                    states[i] = agg_state(states[i], delta, None, None)
                    i += 1
            dirty[key] = None
        for i, (_, _, per_delta) in enumerate(spec_plan):
            if charge_counts[i]:
                charge_cpu(per_delta, charge_counts[i])
        if udf_charges:
            charge_cpu(udf_cost, udf_charges)
        self.memo_misses += misses
        self.memo_hits += len(deltas) - misses

    @columnar_kernel
    def push_block(self, block, port: int = 0) -> None:
        """Columnar kernel: grouped aggregation straight off the block's
        row and payload vectors.  Homogeneous ``+`` and ``δ`` blocks —
        the shapes strata actually emit — run loops that read rows
        positionally and only build a :class:`Delta` when a generic
        aggregator fold needs one; everything else (stream mode, REPLACE
        or mixed polarity) degrades to the row path with identical
        outputs and charges."""
        if not block:
            return
        kind = block.kind
        if (self.mode != "stream" and self.specs
                and kind is DeltaOp.INSERT and block.payloads is None):
            self.block_batches += 1
            self._push_block_insert(block)
        elif (self.mode != "stream" and self.specs
                and kind is DeltaOp.UPDATE):
            self.block_batches += 1
            self._push_block_update(block)
        else:
            deltas = block.to_deltas()
            if deltas:
                # Class-level call: the row entry point charges the
                # batch itself, and any obs wrapper already counted
                # this block at push_block.
                type(self).push_batch(self, deltas, port)

    def _push_block_insert(self, block) -> None:
        """Insert-run kernel — :meth:`_push_batch_insert_only` over the
        row vector (same memo, same state-budget guard, same charge
        multiset), with no deltas on the ArgMin/simple-fold paths."""
        ctx = self.ctx
        rows = block.rows
        ctx.charge_tuple_batch(len(rows), self.per_tuple_cost)
        cost = ctx.cost
        spec_plan = []
        for spec in self.specs:
            per_delta_cost = getattr(spec.aggregator, "per_delta_cost", None)
            spec_plan.append((
                spec.arg, spec.aggregator.agg_state,
                per_delta_cost(cost) if per_delta_cost is not None else None,
            ))
        key_fn = self.key_fn
        groups = self.groups
        dirty = self._dirty
        specs = self.specs
        worker = ctx.worker
        charge_state_access = worker.charge_state_access
        memory_budget = worker.cost.worker_memory_bytes
        charge_cpu = ctx.charge_cpu
        charge_counts = [0] * len(spec_plan)
        if len(spec_plan) == 1:
            s_arg, s_agg_state, s_per_delta = spec_plan[0]
            single = True
            s_argmin_fast = (specs[0].aggregator.__class__ is ArgMin
                             and s_per_delta is None)
        else:
            single = False
            s_argmin_fast = False
        key_memo = self._key_memo
        key_memo_cap = self.key_memo_cap
        insert = DeltaOp.INSERT
        misses = 0
        for row in rows:
            try:
                key = key_memo.get(row)
            except TypeError:
                misses += 1
                key = key_fn(row)
            else:
                if key is None:
                    misses += 1
                    if len(key_memo) >= key_memo_cap:
                        self.memo_evictions += len(key_memo)
                        key_memo.clear()
                    key = key_memo[row] = key_fn(row)
            if worker.state_bytes > memory_budget:
                charge_state_access()
            try:
                group = groups[key]
            except KeyError:
                group = _Group([spec.aggregator.init_state()
                                for spec in specs])
                groups[key] = group
                worker.add_state_bytes(row_bytes(key) + 32)
            group.live += 1
            if s_argmin_fast:
                ident, value = s_arg(row)
                state0 = group.states[0]
                k = (value, ident)
                mlive = state0._live
                mlive[k] = mlive.get(k, 0) + 1
                state0.size += 1
                if not state0._stale:
                    best = state0._best
                    if best is None or k < best:
                        state0._best = k
                dirty[key] = None
                continue
            states = group.states
            if single:
                if s_per_delta is not None:
                    charge_counts[0] += 1
                states[0] = s_agg_state(states[0], Delta(insert, row),
                                        s_arg(row), None)
            else:
                delta = Delta(insert, row)
                i = 0
                for arg, agg_state, per_delta in spec_plan:
                    if per_delta is not None:
                        charge_counts[i] += 1
                    states[i] = agg_state(states[i], delta, arg(row), None)
                    i += 1
            dirty[key] = None
        for i, (_, _, per_delta) in enumerate(spec_plan):
            if charge_counts[i]:
                charge_cpu(per_delta, charge_counts[i])
        self.memo_misses += misses
        self.memo_hits += len(rows) - misses

    def _push_block_update(self, block) -> None:
        """δ-run kernel — :meth:`_push_batch_update_only` over the row
        and payload vectors; the inline running-SUM fold never touches a
        delta, generic folds build one each (exactly what the fallback
        would hand them)."""
        ctx = self.ctx
        rows = block.rows
        n = len(rows)
        ctx.charge_tuple_batch(n, self.per_tuple_cost)
        cost = ctx.cost
        spec_plan = []
        for spec in self.specs:
            per_delta_cost = getattr(spec.aggregator, "per_delta_cost", None)
            spec_plan.append((
                spec.arg, spec.aggregator.agg_state,
                per_delta_cost(cost) if per_delta_cost is not None else None,
            ))
        key_fn = self.key_fn
        groups = self.groups
        dirty = self._dirty
        specs = self.specs
        worker = ctx.worker
        charge_state_access = worker.charge_state_access
        memory_budget = worker.cost.worker_memory_bytes
        charge_cpu = ctx.charge_cpu
        udf_cost = cost.udf_cost_per_tuple(batched=True)
        charge_counts = [0] * len(spec_plan)
        udf_charges = 0
        if len(spec_plan) == 1:
            s_arg, s_agg_state, s_per_delta = spec_plan[0]
            single = True
            s_sum_fast = (specs[0].aggregator.__class__ is Sum
                          and s_per_delta is None)
        else:
            single = False
            s_sum_fast = False
        key_memo = self._key_memo
        key_memo_cap = self.key_memo_cap
        update = DeltaOp.UPDATE
        payloads = block.payloads or ((None,) * n)
        misses = 0
        for row, payload in zip(rows, payloads):
            try:
                key = key_memo.get(row)
            except TypeError:
                misses += 1
                key = key_fn(row)
            else:
                if key is None:
                    misses += 1
                    if len(key_memo) >= key_memo_cap:
                        self.memo_evictions += len(key_memo)
                        key_memo.clear()
                    key = key_memo[row] = key_fn(row)
            if worker.state_bytes > memory_budget:
                charge_state_access()
            try:
                group = groups[key]
            except KeyError:
                group = _Group([spec.aggregator.init_state()
                                for spec in specs])
                groups[key] = group
                worker.add_state_bytes(row_bytes(key) + 32)
            if group.live < 1:
                group.live = 1
            if s_sum_fast:
                if (payload.__class__ is float
                        or payload.__class__ is int):
                    state0 = group.states[0]
                    if state0["count"] < 1:
                        state0["count"] = 1
                    state0["sum"] += payload
                    udf_charges += 1
                    dirty[key] = None
                    continue
            states = group.states
            delta = Delta(update, row, payload=payload)
            if single:
                if s_per_delta is not None:
                    charge_counts[0] += 1
                else:
                    udf_charges += 1
                states[0] = s_agg_state(states[0], delta, None, None)
            else:
                i = 0
                for _arg, agg_state, per_delta in spec_plan:
                    if per_delta is not None:
                        charge_counts[i] += 1
                    else:
                        udf_charges += 1
                    states[i] = agg_state(states[i], delta, None, None)
                    i += 1
            dirty[key] = None
        for i, (_, _, per_delta) in enumerate(spec_plan):
            if charge_counts[i]:
                charge_cpu(per_delta, charge_counts[i])
        if udf_charges:
            charge_cpu(udf_cost, udf_charges)
        self.memo_misses += misses
        self.memo_hits += n - misses

    # -- emission ----------------------------------------------------------
    def _flush_key(self, key: tuple, group: _Group,
                   out: Optional[List[Delta]] = None) -> None:
        emit = self.emit if out is None else out.append
        specs = self.specs
        if len(specs) == 1:
            # Single-aggregate flush (the common shape for the benchmark
            # workloads): skip the generator/zip machinery per key.
            value = specs[0].aggregator.agg_result(group.states[0])
            outputs = (value,)
            empty = group.live <= 0 and value is None
        else:
            outputs = tuple(spec.aggregator.agg_result(state)
                            for spec, state in zip(specs, group.states))
            empty = group.live <= 0 and all(v is None for v in outputs)
        if empty:
            if group.last is not None:
                emit(Delta(DeltaOp.DELETE, group.last))
            del self.groups[key]
            return
        row = key + outputs
        if group.last is None:
            emit(Delta(DeltaOp.INSERT, row))
        elif row != group.last:
            emit(Delta(DeltaOp.REPLACE, row, old=group.last))
        group.last = row

    def on_stratum_end(self, punct: Punctuation) -> None:
        out: Optional[List[Delta]] = (
            [] if self.ctx is not None and self.ctx.batch else None)
        for key in list(self._dirty):
            group = self.groups.get(key)
            if group is not None:
                self._flush_key(key, group, out)
        if out:
            self.emit_batch(out)
        self._dirty.clear()
        if self.clear_states_each_stratum:
            # Re-aggregation mode (REX no-delta / Hadoop-style): aggregate
            # state is rebuilt from scratch every iteration; only the
            # last-emitted map survives so replacements stay correct.
            for group in self.groups.values():
                group.states = [spec.aggregator.init_state()
                                for spec in self.specs]
                group.live = 0
        if self.reset_emissions_each_stratum:
            # Fully stratum-scoped output (wrapped Hadoop reduce tasks):
            # every stratum's flush stands alone as fresh insertions.
            self.groups.clear()

    def state_size(self) -> int:
        return len(self.groups)
