"""Pipelined group-by with delta-aware aggregate state.

Section 3.3's take-aways, implemented literally: (1) the operator's internal
state maps each grouping key to aggregate-function-specific intermediate
state; (2) on receiving a delta the operator determines the key, then each
aggregate function updates its own intermediate state and decides what to
emit.  Built-ins handle insert/delete/replace (and numeric value-updates);
everything else needs a UDA.

Emission: in ``stratum`` mode (the default, matching the paper's punctuated
execution) dirty groups are flushed when the stratum's punctuation arrives —
the first output for a key is an insertion, subsequent changed outputs are
replacements, and a group whose contributors all disappear emits a deletion.
``stream`` mode flushes after every delta (streamed partial aggregation,
Section 4.2), trading more output deltas for no buffering delay.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.common.deltas import Delta, DeltaOp
from repro.common.errors import ExecutionError
from repro.common.punctuation import Punctuation
from repro.common.sizes import row_bytes
from repro.operators.base import Operator
from repro.udf.aggregates import AggregateSpec


class _Group:
    __slots__ = ("states", "live", "last")

    def __init__(self, states: List[Any]):
        self.states = states
        self.live = 0          # net contributing tuples (insert - delete)
        self.last = None       # last emitted output row, if any


class GroupBy(Operator):
    """Hash aggregation keyed by a compiled key extractor."""

    def __init__(self, key_fn: Callable[[tuple], tuple],
                 specs: Sequence[AggregateSpec],
                 mode: str = "stratum",
                 clear_states_each_stratum: bool = False,
                 reset_emissions_each_stratum: bool = False,
                 name: Optional[str] = None):
        if mode not in ("stratum", "stream"):
            raise ExecutionError(f"unknown GroupBy mode {mode!r}")
        super().__init__(name or "GroupBy")
        self.key_fn = key_fn
        self.specs = list(specs)
        self.mode = mode
        self.clear_states_each_stratum = clear_states_each_stratum
        self.reset_emissions_each_stratum = reset_emissions_each_stratum
        self.groups: Dict[tuple, _Group] = {}
        self._dirty: Dict[tuple, None] = {}  # insertion-ordered set

    def open(self, ctx):
        super().open(ctx)
        self.per_tuple_cost = ctx.cost.cpu_tuple_cost + ctx.cost.hash_op_cost

    # -- state updates --------------------------------------------------
    def _group(self, key: tuple) -> _Group:
        self.ctx.worker.charge_state_access()
        group = self.groups.get(key)
        if group is None:
            group = _Group([spec.aggregator.init_state() for spec in self.specs])
            self.groups[key] = group
            self.ctx.worker.add_state_bytes(row_bytes(key) + 32)
        return group

    def process(self, delta: Delta, port: int) -> None:
        if delta.op is DeltaOp.REPLACE:
            old_key = self.key_fn(delta.old)
            new_key = self.key_fn(delta.row)
            if old_key != new_key:
                # The replacement straddles two groups: decompose.
                self.process(Delta(DeltaOp.DELETE, delta.old), port)
                self.process(Delta(DeltaOp.INSERT, delta.row), port)
                return
            key = new_key
        else:
            key = self.key_fn(delta.row)
        group = self._group(key)

        if delta.op is DeltaOp.INSERT:
            group.live += 1
        elif delta.op is DeltaOp.DELETE:
            group.live -= 1
        elif delta.op is DeltaOp.UPDATE:
            # A value-update keeps the group alive even if nothing was
            # ever inserted (PageRank's diff stream works this way).
            group.live = max(group.live, 1)

        for i, spec in enumerate(self.specs):
            value = spec.arg(delta.row) if delta.op is not DeltaOp.UPDATE else None
            old_value = spec.arg(delta.old) if delta.op is DeltaOp.REPLACE else None
            per_delta_cost = getattr(spec.aggregator, "per_delta_cost", None)
            if per_delta_cost is not None:
                self.ctx.charge_cpu(per_delta_cost(self.ctx.cost))
            elif delta.op is DeltaOp.UPDATE:
                # δ(E) payloads are interpreted by user-defined handler
                # code; charge the UDC invocation cost.
                self.ctx.charge_cpu(self.ctx.cost.udf_cost_per_tuple(batched=True))
            group.states[i] = spec.aggregator.agg_state(
                group.states[i], delta, value, old_value
            )

        if self.mode == "stream":
            self._flush_key(key, group)
        else:
            self._dirty[key] = None

    # -- emission ----------------------------------------------------------
    def _flush_key(self, key: tuple, group: _Group) -> None:
        outputs = tuple(spec.aggregator.agg_result(state)
                        for spec, state in zip(self.specs, group.states))
        empty = group.live <= 0 and all(v is None for v in outputs)
        if empty:
            if group.last is not None:
                self.emit(Delta(DeltaOp.DELETE, group.last))
            del self.groups[key]
            return
        row = key + outputs
        if group.last is None:
            self.emit(Delta(DeltaOp.INSERT, row))
        elif row != group.last:
            self.emit(Delta(DeltaOp.REPLACE, row, old=group.last))
        group.last = row

    def on_stratum_end(self, punct: Punctuation) -> None:
        for key in list(self._dirty):
            group = self.groups.get(key)
            if group is not None:
                self._flush_key(key, group)
        self._dirty.clear()
        if self.clear_states_each_stratum:
            # Re-aggregation mode (REX no-delta / Hadoop-style): aggregate
            # state is rebuilt from scratch every iteration; only the
            # last-emitted map survives so replacements stay correct.
            for group in self.groups.values():
                group.states = [spec.aggregator.init_state()
                                for spec in self.specs]
                group.live = 0
        if self.reset_emissions_each_stratum:
            # Fully stratum-scoped output (wrapped Hadoop reduce tasks):
            # every stratum's flush stands alone as fresh insertions.
            self.groups.clear()

    def state_size(self) -> int:
        return len(self.groups)
