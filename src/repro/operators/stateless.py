"""Stateless operators: scan, filter, project, applyFunction.

Delta propagation through stateless operators is mechanical (Section 3.3):
"the operator processes the tuple in the normal fashion (possibly filtering
or projecting the tuple).  Any output tuples receive the same annotation as
the input tuple."  The one exception is applyFunction, "which is stateless
but can create or manipulate annotations in arbitrary ways."
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.common.deltas import Delta, DeltaOp
from repro.common.errors import ExecutionError, RecoveryError
from repro.common.punctuation import Punctuation
from repro.operators.base import ExecContext, Operator, SourceOperator
from repro.operators.blocks import ColumnBlock, columnar_kernel


class TableScan(SourceOperator):
    """Reads this worker's local partition of a table.

    Emits every row as an insertion delta during stratum 0, then bare
    punctuation in later strata (base data does not change between strata;
    downstream join state persists).  Disk time is charged for the bytes
    read; CPU per tuple is charged by the parent on receipt.
    """

    #: Lineage-driven column pruning (REX4xx): when the executor proves
    #: an exact live-column set for this scan's output, blocks built here
    #: carry it and never materialize dead columns.  ``None`` (the
    #: default, and whenever the proof is inexact) disables pruning.
    live_columns: Optional[frozenset] = None

    def __init__(self, table, name: Optional[str] = None):
        super().__init__(name or f"Scan({table.name})")
        self.table = table
        self.blocks_emitted = 0

    def run_stratum(self, stratum: int) -> None:
        if stratum == 0:
            self._emit_partition()
        self.forward_punctuation_from_source(stratum)

    def _emit_partition(self) -> None:
        partition = self.table.partition(self.ctx.node_id)
        if len(partition):
            self.ctx.worker.charge_disk_seek()
            self.ctx.worker.charge_disk_bytes(partition.bytes)
        if self.ctx.columnar and self.parent.accepts_blocks:
            # Columnar fabric: one block, zero Delta constructions here.
            rows = list(partition)
            if rows:
                self.blocks_emitted += 1
                self.emit_block(ColumnBlock.from_rows(
                    rows, live=self.live_columns))
        elif self.ctx.batch:
            insert = DeltaOp.INSERT
            self.emit_batch([Delta(insert, row) for row in partition])
        else:
            for row in partition:
                self.emit(Delta(DeltaOp.INSERT, row))
        self._emit_takeover_rows()

    def reemit_for_recovery(self) -> None:
        """Re-read this worker's partition (plus any takeover ranges it now
        serves) into the pipeline *without* punctuation — used by
        checkpoint-resume recovery to rebuild downstream operator state
        that was reset after a failure."""
        self._emit_partition()

    def _emit_takeover_rows(self) -> None:
        """Serve ranges whose original primary is dead (post-failure
        restart): this node emits the replica copies it now owns."""
        snapshot = self.ctx.snapshot
        if snapshot is None:
            return
        dead = [n for n in snapshot.nodes if n not in snapshot.live_nodes()]
        if not dead:
            return
        for victim in dead:
            lost = self.table.primaries.get(victim)
            if lost and len(lost) and self.table.replication < 2:
                raise RecoveryError(
                    f"table {self.table.name} has no replicas; data on "
                    f"failed node {victim} is unrecoverable"
                )
        key_index = self.table._key_index
        replica = self.table.replica_partition(self.ctx.node_id)
        emitted = 0
        for row in replica:
            key = row[key_index] if key_index is not None else None
            if (snapshot.original_replicas(key, 1)[0] in dead
                    and snapshot.primary(key) == self.ctx.node_id):
                self.emit(Delta(DeltaOp.INSERT, row))
                emitted += 1
        if emitted:
            self.ctx.worker.charge_disk_seek()

    def forward_punctuation_from_source(self, stratum: int) -> None:
        self.parent.on_punctuation(Punctuation.end_of_stratum(stratum),
                                   self.parent_port)


class LocalSource(SourceOperator):
    """A source fed programmatically (tests, Hadoop-wrap input adapters)."""

    def __init__(self, rows_by_stratum=None, name: Optional[str] = None):
        super().__init__(name or "LocalSource")
        self.rows_by_stratum = rows_by_stratum or {}

    def run_stratum(self, stratum: int) -> None:
        rows = self.rows_by_stratum.get(stratum, ())
        if self.ctx.columnar and self.parent.accepts_blocks:
            tuples = [tuple(row) for row in rows]
            if tuples:
                self.emit_block(ColumnBlock.from_rows(tuples))
        elif self.ctx.batch:
            self.emit_batch([Delta(DeltaOp.INSERT, tuple(row)) for row in rows])
        else:
            for row in rows:
                self.emit(Delta(DeltaOp.INSERT, tuple(row)))
        self.parent.on_punctuation(Punctuation.end_of_stratum(stratum),
                                   self.parent_port)


class Filter(Operator):
    """σ: drops deltas whose row fails the predicate.

    A REPLACE whose old and new rows fall on different sides of the
    predicate degrades into a bare insert or delete, per the delta rules.
    """

    #: Set by the executor when the abstract interpretation proves REPLACE
    #: deltas cannot reach this operator (REX304): the batch loop drops the
    #: per-delta REPLACE-straddle test entirely.
    proof_no_replace: bool = False

    accepts_blocks = True

    def __init__(self, predicate: Callable[[tuple], bool],
                 name: Optional[str] = None, per_tuple_cost=None,
                 udf_calls: int = 0):
        super().__init__(name or "Filter")
        self.predicate = predicate
        self.udf_calls = udf_calls
        self.block_batches = 0
        if per_tuple_cost is not None:
            self.per_tuple_cost = per_tuple_cost

    def open(self, ctx):
        super().open(ctx)
        if self.per_tuple_cost is None and self.udf_calls:
            # User-defined predicates pay the (batched) UDC invocation cost.
            self.per_tuple_cost = (ctx.cost.cpu_tuple_cost + self.udf_calls
                                   * ctx.cost.udf_cost_per_tuple(batched=True))

    def process(self, delta: Delta, port: int) -> None:
        if delta.op is DeltaOp.REPLACE:
            new_ok = bool(self.predicate(delta.row))
            old_ok = bool(self.predicate(delta.old))
            if new_ok and old_ok:
                self.emit(delta)
            elif new_ok:
                self.emit(Delta(DeltaOp.INSERT, delta.row))
            elif old_ok:
                self.emit(Delta(DeltaOp.DELETE, delta.old))
            return
        if self.predicate(delta.row):
            self.emit(delta)

    def transform_batch(self, deltas) -> List[Delta]:
        """Charge and filter one batch, returning the surviving deltas.

        The batch entry point and :class:`~repro.operators.fused.FusedKernel`
        both drive this, so fused and unfused execution share one body (same
        outputs, same charge multisets).
        """
        self.ctx.charge_tuple_batch(len(deltas), self.per_tuple_cost)
        predicate = self.predicate
        out: List[Delta] = []
        append = out.append
        if self.proof_no_replace:
            # Proven REPLACE-free input: plain predicate loop, no
            # old/new-straddle decomposition to consider.
            for delta in deltas:
                if predicate(delta.row):
                    append(delta)
            return out
        replace = DeltaOp.REPLACE
        for delta in deltas:
            if delta.op is replace:
                new_ok = bool(predicate(delta.row))
                old_ok = bool(predicate(delta.old))
                if new_ok and old_ok:
                    append(delta)
                elif new_ok:
                    append(Delta(DeltaOp.INSERT, delta.row))
                elif old_ok:
                    append(Delta(DeltaOp.DELETE, delta.old))
            elif predicate(delta.row):
                append(delta)
        return out

    def push_batch(self, deltas, port: int = 0) -> None:
        if not deltas:
            return
        self.emit_batch(self.transform_batch(deltas))

    @columnar_kernel
    def transform_block(self, block: ColumnBlock) -> ColumnBlock:
        """Whole-column filter kernel: one predicate pass builds the
        selection mask, C-level ``compress`` applies it to every column
        vector at once.  Charges are identical to
        :meth:`transform_batch` (one batch CPU charge; predicate calls
        are covered by ``per_tuple_cost``)."""
        self.ctx.charge_tuple_batch(len(block), self.per_tuple_cost)
        predicate = self.predicate
        rows = block.rows
        replace = DeltaOp.REPLACE
        if (self.proof_no_replace
                or (block.kind is not None and block.kind is not replace)
                or (block.kind is None and replace not in block.kinds)):
            mask = list(map(predicate, rows))
            if all(mask):
                return block  # blocks are immutable: reuse, zero copies
            return block.compress(mask)
        # REPLACE-bearing block: per-entry old/new straddle handling,
        # mirroring transform_batch's decomposition exactly.
        out_rows: List[tuple] = []
        out_kinds: List[DeltaOp] = []
        out_olds: List[Optional[tuple]] = []
        out_payloads: List = []
        any_old = any_payload = False
        insert, delete = DeltaOp.INSERT, DeltaOp.DELETE
        for op, row, old, payload in block.entries():
            if op is replace:
                new_ok = bool(predicate(row))
                old_ok = bool(predicate(old))
                if new_ok and old_ok:
                    out_rows.append(row)
                    out_kinds.append(replace)
                    out_olds.append(old)
                    out_payloads.append(None)
                    any_old = True
                elif new_ok:
                    out_rows.append(row)
                    out_kinds.append(insert)
                    out_olds.append(None)
                    out_payloads.append(None)
                elif old_ok:
                    out_rows.append(old)
                    out_kinds.append(delete)
                    out_olds.append(None)
                    out_payloads.append(None)
            elif predicate(row):
                out_rows.append(row)
                out_kinds.append(op)
                out_olds.append(None)
                out_payloads.append(payload)
                if payload is not None:
                    any_payload = True
        return ColumnBlock(out_rows, kinds=out_kinds,
                           olds=out_olds if any_old else None,
                           payloads=out_payloads if any_payload else None,
                           live=block.live, names=block.names)

    def push_block(self, block, port: int = 0) -> None:
        if not block:
            return
        self.block_batches += 1
        out = self.transform_block(block)
        if out:
            self.emit_block(out)


class Project(Operator):
    """π: maps each delta's row(s) through a compiled row function."""

    #: See :attr:`Filter.proof_no_replace`.
    proof_no_replace: bool = False

    accepts_blocks = True

    def __init__(self, row_fn: Callable[[tuple], tuple],
                 name: Optional[str] = None):
        super().__init__(name or "Project")
        self.row_fn = row_fn
        self.block_batches = 0

    def process(self, delta: Delta, port: int) -> None:
        if delta.op is DeltaOp.REPLACE:
            self.emit(delta.with_row(self.row_fn(delta.row),
                                     old=self.row_fn(delta.old)))
        else:
            self.emit(delta.with_row(self.row_fn(delta.row)))

    def transform_batch(self, deltas) -> List[Delta]:
        """Charge and project one batch (shared by ``push_batch`` and
        fused-kernel execution)."""
        self.ctx.charge_tuple_batch(len(deltas), self.per_tuple_cost)
        row_fn = self.row_fn
        out: List[Delta] = []
        append = out.append
        if self.proof_no_replace:
            # Proven REPLACE-free input: single row image per delta.
            for delta in deltas:
                append(Delta(delta.op, row_fn(delta.row),
                             payload=delta.payload))
            return out
        replace = DeltaOp.REPLACE
        for delta in deltas:
            if delta.op is replace:
                append(Delta(replace, row_fn(delta.row),
                             old=row_fn(delta.old)))
            else:
                append(Delta(delta.op, row_fn(delta.row),
                             payload=delta.payload))
        return out

    def push_batch(self, deltas, port: int = 0) -> None:
        if not deltas:
            return
        self.emit_batch(self.transform_batch(deltas))

    @columnar_kernel
    def transform_block(self, block: ColumnBlock) -> ColumnBlock:
        """Whole-column projection: one C-driven ``map`` over the row
        vector; polarity and payload vectors carry over untouched.  The
        row function reshapes columns arbitrarily, so the output block
        drops the input's lineage/live metadata."""
        self.ctx.charge_tuple_batch(len(block), self.per_tuple_cost)
        row_fn = self.row_fn
        rows = block.rows
        replace = DeltaOp.REPLACE
        if (self.proof_no_replace
                or (block.kind is not None and block.kind is not replace)
                or (block.kind is None and replace not in block.kinds)):
            return ColumnBlock(list(map(row_fn, rows)), kind=block.kind,
                               kinds=block.kinds, payloads=block.payloads)
        if block.kind is replace:
            return ColumnBlock(list(map(row_fn, rows)), kind=replace,
                               olds=list(map(row_fn, block.olds)))
        olds = block.olds or [None] * len(rows)
        return ColumnBlock(
            list(map(row_fn, rows)), kinds=block.kinds,
            olds=[None if old is None else row_fn(old) for old in olds],
            payloads=block.payloads)

    def push_block(self, block, port: int = 0) -> None:
        if not block:
            return
        self.block_batches += 1
        self.emit_block(self.transform_block(block))


class ApplyFunction(Operator):
    """Invokes a user-defined function over each tuple (Section 3.2).

    Three shapes are supported:

    * scalar UDF: output row = input row extended with the return value;
    * table-valued UDF: emits one delta per returned row, carrying the
      input annotation;
    * annotation-aware UDF (``delta_aware=True``): the function receives
      the :class:`Delta` itself and returns an iterable of deltas — this is
      how applyFunction "can create or manipulate annotations in arbitrary
      ways".

    UDC invocation cost (the paper's Java-reflection overhead) is charged
    per call, amortized by the engine's input batching.
    """

    #: See :attr:`Filter.proof_no_replace`.
    proof_no_replace: bool = False

    accepts_blocks = True

    def __init__(self, udf, arg_fn: Callable[[tuple], tuple],
                 mode: str = "extend", delta_aware: bool = False,
                 name: Optional[str] = None):
        if mode not in ("extend", "replace"):
            raise ExecutionError(f"unknown ApplyFunction mode {mode!r}")
        super().__init__(name or f"Apply({getattr(udf, 'name', udf)})")
        self.udf = udf
        self.arg_fn = arg_fn
        self.mode = mode
        self.delta_aware = delta_aware
        self.calls = 0
        self.block_batches = 0

    def _charge_call(self) -> None:
        self.calls += 1
        per_call = getattr(self.udf, "per_call_cost", None)
        if per_call is not None:
            self.ctx.charge_cpu(per_call(self.ctx.cost))
        else:
            self.ctx.charge_cpu(self.ctx.cost.udf_cost_per_tuple(batched=True))

    def _invoke(self, row) -> List[tuple]:
        args = self.arg_fn(row)
        self._charge_call()
        result = self.udf(*args)
        if getattr(self.udf, "table_valued", False):
            rows = [tuple(r) for r in (result or ())]
        else:
            rows = [(result,)]
        if self.mode == "extend":
            return [row + r for r in rows]
        return rows

    def process(self, delta: Delta, port: int) -> None:
        if self.delta_aware:
            self._charge_call()
            for out in self.udf(delta) or ():
                self.emit(out)
            return
        if delta.op is DeltaOp.REPLACE:
            new_rows = self._invoke(delta.row)
            old_rows = self._invoke(delta.old)
            if len(new_rows) == len(old_rows):
                for new, old in zip(new_rows, old_rows):
                    self.emit(Delta(DeltaOp.REPLACE, new, old=old))
            else:
                for old in old_rows:
                    self.emit(Delta(DeltaOp.DELETE, old))
                for new in new_rows:
                    self.emit(Delta(DeltaOp.INSERT, new))
            return
        for out in self._invoke(delta.row):
            self.emit(delta.with_row(out))

    def transform_batch(self, deltas) -> List[Delta]:
        """Charge and apply the UDF over one batch (shared by
        ``push_batch`` and fused-kernel execution)."""
        ctx = self.ctx
        ctx.charge_tuple_batch(len(deltas), self.per_tuple_cost)
        udf = self.udf
        per_call = getattr(udf, "per_call_cost", None)
        call_cost = (per_call(ctx.cost) if per_call is not None
                     else ctx.cost.udf_cost_per_tuple(batched=True))
        out: List[Delta] = []
        calls = 0
        if self.delta_aware:
            for delta in deltas:
                calls += 1
                result = udf(delta)
                if result:
                    out.extend(result)
        else:
            arg_fn = self.arg_fn
            table_valued = getattr(udf, "table_valued", False)
            extend_mode = self.mode == "extend"
            replace = DeltaOp.REPLACE

            def invoke(row):
                result = udf(*arg_fn(row))
                if table_valued:
                    rows = [tuple(r) for r in (result or ())]
                else:
                    rows = [(result,)]
                if extend_mode:
                    return [row + r for r in rows]
                return rows

            if self.proof_no_replace:
                # Proven REPLACE-free input: exactly one UDF call per
                # delta, no old/new double-invocation to arbitrate.
                for delta in deltas:
                    calls += 1
                    for row in invoke(delta.row):
                        out.append(delta.with_row(row))
            else:
                for delta in deltas:
                    if delta.op is replace:
                        calls += 2
                        new_rows = invoke(delta.row)
                        old_rows = invoke(delta.old)
                        if len(new_rows) == len(old_rows):
                            for new, old in zip(new_rows, old_rows):
                                out.append(Delta(replace, new, old=old))
                        else:
                            for old in old_rows:
                                out.append(Delta(DeltaOp.DELETE, old))
                            for new in new_rows:
                                out.append(Delta(DeltaOp.INSERT, new))
                    else:
                        calls += 1
                        for row in invoke(delta.row):
                            out.append(delta.with_row(row))
        self.calls += calls
        ctx.charge_cpu(call_cost, calls)
        return out

    def push_batch(self, deltas, port: int = 0) -> None:
        if not deltas:
            return
        self.emit_batch(self.transform_batch(deltas))

    @columnar_kernel
    def transform_block(self, block: ColumnBlock) -> ColumnBlock:
        """Columnar UDF application.  The hot shape — scalar UDF in
        ``extend`` mode over a REPLACE-free block — runs as one
        list-comprehension pass with a single batched call charge.  The
        general shapes (delta-aware, table-valued, REPLACE traffic)
        route through :meth:`transform_batch`, whose bodies already
        charge the oracle's multiset, and re-columnarize the output."""
        udf = self.udf
        replace = DeltaOp.REPLACE
        scalar_extend = (not self.delta_aware and self.mode == "extend"
                         and not getattr(udf, "table_valued", False))
        no_replace = (self.proof_no_replace
                      or (block.kind is not None and block.kind is not replace)
                      or (block.kind is None and replace not in block.kinds))
        if not (scalar_extend and no_replace):
            return ColumnBlock.from_deltas(
                self.transform_batch(block.to_deltas()))
        ctx = self.ctx
        n = len(block)
        ctx.charge_tuple_batch(n, self.per_tuple_cost)
        per_call = getattr(udf, "per_call_cost", None)
        call_cost = (per_call(ctx.cost) if per_call is not None
                     else ctx.cost.udf_cost_per_tuple(batched=True))
        arg_fn = self.arg_fn
        out_rows = [row + (udf(*arg_fn(row)),) for row in block.rows]
        self.calls += n
        ctx.charge_cpu(call_cost, n)
        return ColumnBlock(out_rows, kind=block.kind, kinds=block.kinds,
                           payloads=block.payloads)

    def push_block(self, block, port: int = 0) -> None:
        if not block:
            return
        self.block_batches += 1
        out = self.transform_block(block)
        if out:
            self.emit_block(out)
