"""FusedKernel: one operator driving a chain of stateless transforms.

The fusion pass (:mod:`repro.optimizer.fusion`) replaces a maximal chain
of stateless operators with a single :class:`FusedKernel` holding the
real constituent operator instances.  Per batch, the kernel calls each
constituent's ``transform_batch`` in data-flow order — the same bodies
the unfused pipeline runs, including their cost charges — and emits the
final batch once.  That removes the per-operator ``emit_batch`` →
``push_batch`` dispatch between chain links while keeping outputs, state,
and charge multisets identical, so ``QueryMetrics.fingerprint`` does not
depend on fusion.

With observability attached the kernel instead delegates to the
constituents wired as a real chain, so each keeps its own ``op.*``
attribution frames and EXPLAIN ANALYZE row; the kernel's row then shows
only the dispatch glue.  The per-tuple path (``batch=False``) always
runs through the wired chain — it is the compatibility path, not the
hot one.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.common.deltas import Delta
from repro.operators.base import Operator


class _Outlet:
    """Terminal stub for the wired constituent chain: routes the last
    constituent's output through the kernel's own emit entry points (so
    instrumentation sees the kernel's tuples_out) and on to its parent."""

    __slots__ = ("kernel",)

    def __init__(self, kernel: "FusedKernel"):
        self.kernel = kernel

    def push_batch(self, deltas, port: int = 0) -> None:
        self.kernel.emit_batch(deltas)

    def push_block(self, block, port: int = 0) -> None:
        self.kernel.emit_block(block)

    def receive(self, delta, port: int = 0) -> None:
        self.kernel.emit(delta)


class FusedKernel(Operator):
    """Executes ``constituents`` (stateless operators, data-flow order)
    as one pipeline stage."""

    #: Every fusable constituent (Filter/Project/ApplyFunction) carries a
    #: ``transform_block`` columnar kernel, so a fused chain is always
    #: block-capable: one block flows through every constituent kernel
    #: with zero intermediate delta materialization.
    accepts_blocks = True

    def __init__(self, constituents: Sequence[Operator],
                 name: Optional[str] = None):
        if len(constituents) < 2:
            raise ValueError("FusedKernel needs at least two constituents")
        # Default label from the constituents' base names only — the
        # parenthesized detail (e.g. Apply's UDF repr) varies per worker
        # instance and would split one plan position into many op_ids.
        super().__init__(
            name or "Fused[" + "→".join(c.name.split("(", 1)[0]
                                        for c in constituents) + "]")
        self.constituents: List[Operator] = list(constituents)
        #: Batches executed through the fused fast path (surfaced by
        #: repro.obs as the ``op.*.fused_batches`` counter).
        self.fused_batches = 0
        #: Column blocks executed through the fused columnar chain
        #: (surfaced by repro.obs as ``op.*.block_batches``).
        self.block_batches = 0
        self._use_chain = False

    def open(self, ctx) -> None:
        super().open(ctx)
        # Wire the constituents as a real chain ending at an outlet that
        # re-enters this kernel's emit path.  The chain carries the
        # per-tuple mode and, under obs, the batch mode too — each
        # constituent's open() is what installs its instrumentation.
        chain = self.constituents
        for upstream, downstream in zip(chain, chain[1:]):
            downstream.add_input(upstream)
        outlet = _Outlet(self)
        chain[-1].parent = outlet
        chain[-1].parent_port = 0
        for constituent in chain:
            constituent.open(ctx)
        self._use_chain = ctx.obs is not None

    def receive(self, delta: Delta, port: int = 0) -> None:
        # Per-tuple mode: run the wired chain; every constituent charges
        # its own per-tuple cost exactly as the unfused pipeline would.
        self.constituents[0].receive(delta, 0)

    def push_batch(self, deltas: List[Delta], port: int = 0) -> None:
        if not deltas:
            return
        self.fused_batches += 1
        if self._use_chain:
            # Obs mode: real chain dispatch, so each constituent's
            # instrumentation frame attributes its own charges.
            self.constituents[0].push_batch(deltas, 0)
            return
        for constituent in self.constituents:
            deltas = constituent.transform_batch(deltas)
            if not deltas:
                return
        self.emit_batch(deltas)

    def push_block(self, block, port: int = 0) -> None:
        """Fused columnar chain: each constituent's ``transform_block``
        kernel runs in data-flow order on the same block — identical
        charges to the fused row path, no per-link dispatch, and no
        delta materialization until a row-only consumer needs one."""
        if not block:
            return
        self.block_batches += 1
        if self._use_chain:
            # Obs mode: real chain dispatch so each constituent's
            # instrumentation frame attributes its own charges.
            self.constituents[0].push_block(block, 0)
            return
        for constituent in self.constituents:
            block = constituent.transform_block(block)
            if not block:
                return
        self.emit_block(block)

    def process(self, delta: Delta, port: int) -> None:  # pragma: no cover
        # receive() is overridden; nothing routes through process().
        self.constituents[0].receive(delta, 0)
