"""Physical operators of the REX engine (Sections 3 and 4 of the paper)."""

from repro.operators.base import ExecContext, Operator, RuntimeHooks, SourceOperator
from repro.operators.exchange import ExchangeReceiver, RehashSender
from repro.operators.expressions import (
    BinaryOp,
    BoolOp,
    ColumnRef,
    Expr,
    FuncCall,
    Literal,
    TupleField,
    make_key_fn,
    make_row_fn,
)
from repro.operators.fixpoint import FeedbackSource, Fixpoint
from repro.operators.fused import FusedKernel
from repro.operators.groupby import GroupBy
from repro.operators.join import HashJoin
from repro.operators.misc import REQUESTOR_NODE, Collect, ResultSink, Union
from repro.operators.stateless import (
    ApplyFunction,
    Filter,
    LocalSource,
    Project,
    TableScan,
)

__all__ = [
    "Operator",
    "SourceOperator",
    "ExecContext",
    "RuntimeHooks",
    "TableScan",
    "LocalSource",
    "Filter",
    "Project",
    "ApplyFunction",
    "FusedKernel",
    "HashJoin",
    "GroupBy",
    "Fixpoint",
    "FeedbackSource",
    "RehashSender",
    "ExchangeReceiver",
    "Union",
    "Collect",
    "ResultSink",
    "REQUESTOR_NODE",
    "Expr",
    "ColumnRef",
    "Literal",
    "BinaryOp",
    "BoolOp",
    "FuncCall",
    "TupleField",
    "make_key_fn",
    "make_row_fn",
]
