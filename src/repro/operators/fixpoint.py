"""The while/fixpoint operator governing recursion (Sections 3.2 and 4.2).

"The fixpoint operator has a dual function: it forwards its input data back
to the input of one operator in the recursive query plan, and also removes
duplicate tuples according to a query-specified key, by maintaining a set of
processed tuples."

Port 0 receives the base case (active in stratum 0); port 1 receives the
recursive case (strata >= 1).  Deltas that survive duplicate elimination are
*admitted* into the pending Δᵢ set; the runtime driver collects pending
counts from every worker's fixpoint (the punctuation "vote" to the
requestor), decides termination, and on continuation feeds the pending set
to the :class:`FeedbackSource` at the leaf of the recursive sub-plan.

Duplicate-elimination semantics:

* ``keyed``  — the paper's ``FIXPOINT BY k``: state maps key -> row; an
  arriving row equal to the stored row is a duplicate derivation and is
  dropped; a differing row *refines* the state (replacement) and is
  admitted.  This is the state-refinement at the heart of the paper.
* ``set``    — plain set semantics over whole rows.
* ``bag``    — UNION ALL with no elimination (termination must be explicit
  or bounded); used by the no-delta configuration.

A user :class:`~repro.udf.aggregates.WhileDeltaHandler` overrides all of the
above, receiving the mutable while-relation and each delta.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.common.deltas import Delta, DeltaOp
from repro.common.errors import ExecutionError
from repro.common.punctuation import Punctuation
from repro.common.sizes import row_bytes
from repro.operators.base import Operator, SourceOperator
from repro.udf.aggregates import WhileDeltaHandler, as_deltas

BASE_PORT = 0
RECURSIVE_PORT = 1


class Fixpoint(Operator):
    """Fixpoint/while state: dedup, refinement, and the pending Δᵢ set."""

    #: Proofs from the delta-polarity abstract interpretation
    #: (:mod:`repro.analysis.absint`), set by the executor.
    #: ``proof_polarity`` is the statically proven input kind set (the
    #: sanitizer asserts it; a contradiction is REX307).
    #: ``proof_no_delete`` arms the retraction-free keyed loop below;
    #: ``proof_monotone`` (REX301) lets the sanitizer downgrade shadow
    #: replay to the cheap assertion mode.
    proof_polarity: Optional[frozenset] = None
    proof_no_delete: bool = False
    proof_monotone: bool = False

    def __init__(self, key_fn: Optional[Callable[[tuple], tuple]] = None,
                 semantics: str = "keyed",
                 while_handler: Optional[WhileDeltaHandler] = None,
                 admit_unchanged: bool = False,
                 name: Optional[str] = None):
        if semantics not in ("keyed", "set", "bag"):
            raise ExecutionError(f"unknown fixpoint semantics {semantics!r}")
        if semantics == "keyed" and key_fn is None and while_handler is None:
            raise ExecutionError("keyed fixpoint requires a key function")
        super().__init__(name or "Fixpoint")
        self.key_fn = key_fn
        self.semantics = semantics
        self.while_handler = while_handler
        self.admit_unchanged = admit_unchanged
        self.state: Dict[tuple, tuple] = {}   # keyed/while-handler state
        self.row_set: set = set()             # set-semantics state
        self.pending: List[Delta] = []
        self.admitted_this_stratum = 0

    # -- delta admission ---------------------------------------------------
    def _admit(self, delta: Delta) -> None:
        self.pending.append(delta)
        self.admitted_this_stratum += 1
        self.ctx.hooks.count_admitted(1)

    def process(self, delta: Delta, port: int) -> None:
        if self.while_handler is not None:
            self.ctx.charge_cpu(self.ctx.cost.udf_cost_per_tuple(batched=True))
            for out in as_deltas(None, self.while_handler.update(self.state, delta)):
                self._admit(out)
            return
        if self.semantics == "bag":
            self._admit(delta)
            return
        if self.semantics == "set":
            self._process_set(delta)
            return
        self._process_keyed(delta)

    def push_batch(self, deltas, port: int = 0) -> None:
        """Batched duplicate-elimination against the Δ-set: one charge for
        the batch, handler/dedup loop with locals bound, admission counters
        updated once."""
        if not deltas:
            return
        ctx = self.ctx
        ctx.charge_tuple_batch(len(deltas), self.per_tuple_cost)
        pending = self.pending
        admitted_before = len(pending)
        handler = self.while_handler
        if handler is not None:
            update = handler.update
            state = self.state
            for delta in deltas:
                result = update(state, delta)
                if result:
                    pending.extend(as_deltas(None, result))
            ctx.charge_cpu(ctx.cost.udf_cost_per_tuple(batched=True),
                           len(deltas))
        elif self.semantics == "bag":
            pending.extend(deltas)
        elif self.semantics == "set":
            process_set = self._process_set
            for delta in deltas:
                process_set(delta)
            return  # _process_set already maintained the admission counters
        elif self.proof_no_delete:
            # Retraction-free keyed loop (REX300/REX304 proof): the
            # abstract interpretation guarantees only INSERT/REPLACE
            # kinds reach this operator, so the per-delta op dispatch —
            # the delete pop and the UPDATE rejection — is dropped
            # entirely.  Dedup/refinement and charges are identical to
            # the general keyed loop below.
            key_fn = self.key_fn
            state = self.state
            add_state_bytes = ctx.worker.add_state_bytes
            admit_unchanged = self.admit_unchanged
            append = pending.append
            insert, replace = DeltaOp.INSERT, DeltaOp.REPLACE
            for delta in deltas:
                row = delta.row
                key = key_fn(row)
                current = state.get(key)
                if current is None:
                    state[key] = row
                    add_state_bytes(row_bytes(row))
                    append(Delta(insert, row))
                elif current == row:
                    if admit_unchanged:
                        append(Delta(insert, row))
                else:
                    state[key] = row
                    append(Delta(replace, row, old=current))
        else:
            # Keyed dedup/refinement inlined with locals bound (the hot
            # path for every recursive benchmark).
            key_fn = self.key_fn
            state = self.state
            add_state_bytes = ctx.worker.add_state_bytes
            admit_unchanged = self.admit_unchanged
            append = pending.append
            insert, delete = DeltaOp.INSERT, DeltaOp.DELETE
            replace = DeltaOp.REPLACE
            for delta in deltas:
                op = delta.op
                if op is delete:
                    key = key_fn(delta.row)
                    current = state.pop(key, None)
                    if current is not None:
                        append(Delta(delete, current))
                    continue
                if op is not insert and op is not replace:
                    raise ExecutionError(
                        "keyed fixpoint cannot interpret UPDATE deltas; "
                        "supply a while delta handler"
                    )
                row = delta.row
                key = key_fn(row)
                current = state.get(key)
                if current is None:
                    state[key] = row
                    add_state_bytes(row_bytes(row))
                    append(Delta(insert, row))
                elif current == row:
                    if admit_unchanged:
                        append(Delta(insert, row))
                else:
                    state[key] = row
                    append(Delta(replace, row, old=current))
        admitted = len(pending) - admitted_before
        if admitted:
            self.admitted_this_stratum += admitted
            ctx.hooks.count_admitted(admitted)

    def _process_set(self, delta: Delta) -> None:
        if delta.op in (DeltaOp.INSERT, DeltaOp.UPDATE):
            if delta.row not in self.row_set:
                self.row_set.add(delta.row)
                self.ctx.worker.add_state_bytes(row_bytes(delta.row))
                self._admit(Delta(DeltaOp.INSERT, delta.row))
            elif self.admit_unchanged:
                self._admit(Delta(DeltaOp.INSERT, delta.row))
        elif delta.op is DeltaOp.DELETE:
            if delta.row in self.row_set:
                self.row_set.discard(delta.row)
                self._admit(delta)
        elif delta.op is DeltaOp.REPLACE:
            self._process_set(Delta(DeltaOp.DELETE, delta.old))
            self._process_set(Delta(DeltaOp.INSERT, delta.row))

    def _process_keyed(self, delta: Delta) -> None:
        if delta.op is DeltaOp.DELETE:
            key = self.key_fn(delta.row)
            current = self.state.pop(key, None)
            if current is not None:
                self._admit(Delta(DeltaOp.DELETE, current))
            return
        if delta.op is DeltaOp.UPDATE:
            raise ExecutionError(
                "keyed fixpoint cannot interpret UPDATE deltas; "
                "supply a while delta handler"
            )
        # INSERT and REPLACE: what matters is the new row image; the
        # operator keeps its own notion of the previous row per key.
        row = delta.row
        key = self.key_fn(row)
        current = self.state.get(key)
        if current is None:
            self.state[key] = row
            self.ctx.worker.add_state_bytes(row_bytes(row))
            self._admit(Delta(DeltaOp.INSERT, row))
        elif current == row:
            if self.admit_unchanged:
                self._admit(Delta(DeltaOp.INSERT, row))
        else:
            self.state[key] = row
            self._admit(Delta(DeltaOp.REPLACE, row, old=current))

    # -- stratum protocol -------------------------------------------------
    def forward_punctuation(self, punct: Punctuation) -> None:
        """The stratum ends here; only end-of-query flows to the output."""
        if punct.is_final:
            self._flush_final()
            if self.parent is not None:
                self.parent.on_punctuation(punct, self.parent_port)

    def _flush_final(self) -> None:
        """Emit the final while-relation to the output (the query result)."""
        if self.semantics == "set":
            rows = sorted(self.row_set)
        else:
            rows = list(self.state.values())
        if self.ctx is not None and self.ctx.batch:
            self.emit_batch([Delta(DeltaOp.INSERT, row) for row in rows])
            return
        for row in rows:
            self.emit(Delta(DeltaOp.INSERT, row))

    def take_pending(self, mode: str = "delta") -> List[Delta]:
        """Hand the Δᵢ set (or, for no-delta execution, the full mutable
        set) to the driver for feedback into the next stratum."""
        if mode == "delta":
            out, self.pending = self.pending, []
        elif mode == "full":
            self.pending = []
            if self.semantics == "set":
                out = [Delta(DeltaOp.INSERT, r) for r in sorted(self.row_set)]
            else:
                out = [Delta(DeltaOp.INSERT, r) for r in self.state.values()]
        else:
            raise ExecutionError(f"unknown feedback mode {mode!r}")
        self.admitted_this_stratum = 0
        ctx = self.ctx
        if ctx is not None and ctx.obs is not None:
            # Per-worker Δ-set / mutable-set size series (Figures 2-3 at
            # node granularity); recorded here because take_pending is the
            # stratum boundary as seen by this fixpoint.
            ctx.obs.record_fixpoint(ctx.node_id, ctx.obs.stratum,
                                    len(out), self.mutable_size())
        return out

    def mutable_size(self) -> int:
        return len(self.row_set) if self.semantics == "set" else len(self.state)


class FeedbackSource(SourceOperator):
    """The "fixpoint receiver" at the leaf of the recursive sub-plan.

    The driver deposits each stratum's feedback deltas here; running the
    stratum pushes them into the recursive pipeline followed by punctuation.
    """

    def __init__(self, name: Optional[str] = None):
        super().__init__(name or "FeedbackSource")
        self.queue: List[Delta] = []

    def deposit(self, deltas: List[Delta]) -> None:
        self.queue.extend(deltas)

    def run_stratum(self, stratum: int) -> None:
        batch, self.queue = self.queue, []
        if self.ctx.batch:
            self.emit_batch(batch)
        else:
            for delta in batch:
                self.emit(delta)
        self.parent.on_punctuation(Punctuation.end_of_stratum(stratum),
                                   self.parent_port)
