"""Pipelined symmetric hash join with delta propagation.

"The join operator, in its pipelined form, will accumulate each tuple it
receives and immediately probe it against any tuples accumulated from the
opposite relation" (Section 3.2).  Delta rules follow Gupta et al. [12]
(Section 3.3): insertions/deletions apply to the bucket then probe and
propagate; replacements become replace outputs when the join key is
unchanged, otherwise delete+insert pairs; ``δ(E)`` updates require a
user-defined join delta handler (e.g. the paper's ``PRAgg``), which is
given both matching buckets and full control over state and output.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.deltas import Delta, DeltaOp
from repro.common.errors import ExecutionError
from repro.common.sizes import row_bytes
from repro.operators.base import Operator
from repro.udf.aggregates import JoinDeltaHandler, as_deltas

LEFT = 0
RIGHT = 1


class HashJoin(Operator):
    """Equi-join on compiled key extractors; port 0 = left, port 1 = right.

    ``handler`` (a :class:`~repro.udf.aggregates.JoinDeltaHandler`) takes
    over processing for deltas arriving on ``handler_side`` (both sides if
    ``handler_side is None``); it receives the left and right buckets for
    the delta's key and returns the deltas to propagate.
    """

    per_tuple_cost = None  # set from cost model at open()

    #: Proofs from the delta-polarity abstract interpretation, set by the
    #: executor.  ``proof_insert_only_ports`` lists non-handler ports whose
    #: input is statically proven insert-only: their probe loop drops the
    #: per-delta op dispatch.  ``proof_polarity`` is asserted (not trusted
    #: blindly) by the sanitizer; a contradiction is REX307.
    proof_polarity: Optional[frozenset] = None
    proof_insert_only_ports: frozenset = frozenset()

    def __init__(self, left_key: Callable[[tuple], tuple],
                 right_key: Callable[[tuple], tuple],
                 handler: Optional[JoinDeltaHandler] = None,
                 handler_side: Optional[int] = RIGHT,
                 name: Optional[str] = None):
        super().__init__(name or "HashJoin")
        self.keys = (left_key, right_key)
        self.handler = handler
        self.handler_side = handler_side
        # key -> (left rows, right rows); plain lists preserve duplicates.
        self.buckets: Dict[tuple, Tuple[list, list]] = {}

    def open(self, ctx):
        super().open(ctx)
        self.per_tuple_cost = ctx.cost.cpu_tuple_cost + ctx.cost.hash_op_cost

    # -- bucket plumbing ----------------------------------------------------
    def _bucket(self, key: tuple) -> Tuple[list, list]:
        self.ctx.worker.charge_state_access()
        bucket = self.buckets.get(key)
        if bucket is None:
            bucket = ([], [])
            self.buckets[key] = bucket
        return bucket

    def _combine(self, left_row, right_row) -> tuple:
        return tuple(left_row) + tuple(right_row)

    def _pairs(self, row, side: int, opposite_rows) -> List[tuple]:
        if side == LEFT:
            return [self._combine(row, r) for r in opposite_rows]
        return [self._combine(r, row) for r in opposite_rows]

    def _uses_handler(self, port: int) -> bool:
        return (self.handler is not None
                and (self.handler_side is None or port == self.handler_side))

    # -- delta rules -------------------------------------------------------
    def process(self, delta: Delta, port: int) -> None:
        if port not in (LEFT, RIGHT):
            raise ExecutionError(f"{self.name}: bad port {port}")
        if self._uses_handler(port):
            self._process_with_handler(delta, port)
            return
        out: List[Delta] = []
        self._apply_rules(delta, port, out)
        self.emit_all(out)

    def push_batch(self, deltas, port: int = 0) -> None:
        """Vectorized probe loop: batch charging, locals bound, and one
        downstream batch emission covering the whole input batch."""
        if not deltas:
            return
        if port not in (LEFT, RIGHT):
            raise ExecutionError(f"{self.name}: bad port {port}")
        ctx = self.ctx
        ctx.charge_tuple_batch(len(deltas), self.per_tuple_cost)
        out: List[Delta] = []
        if self._uses_handler(port):
            handler = self.handler
            update = handler.update
            key_fn = self.keys[port]
            buckets = self.buckets
            worker = ctx.worker
            charge_state_access = worker.charge_state_access
            # charge_state_access is a no-op until state spills past the
            # memory budget; guard with an inline compare in the hot loop.
            memory_budget = worker.cost.worker_memory_bytes
            per_delta_cost = getattr(handler, "per_delta_cost", None)
            call_cost = (per_delta_cost(ctx.cost)
                         if per_delta_cost is not None
                         else ctx.cost.udf_cost_per_tuple(batched=True))
            out_extend = out.extend
            for delta in deltas:
                key = key_fn(delta.row)
                if worker.state_bytes > memory_budget:
                    charge_state_access()
                try:
                    bucket = buckets[key]
                except KeyError:
                    bucket = buckets[key] = ([], [])
                result = update(bucket[0], bucket[1], delta, port)
                if result:
                    out_extend(as_deltas(key, result))
            ctx.charge_cpu(call_cost, len(deltas))
        elif port in self.proof_insert_only_ports:
            # Insert-only probe loop (REX300 proof): the abstract
            # interpretation guarantees every delta on this port is an
            # insertion, so the per-delta op dispatch disappears and the
            # bulk-load body runs unconditionally.  State mutation and
            # charges are identical to the general loop below.
            key_fn = self.keys[port]
            buckets = self.buckets
            worker = ctx.worker
            charge_state_access = worker.charge_state_access
            memory_budget = worker.cost.worker_memory_bytes
            add_state_bytes = worker.add_state_bytes
            insert_op = DeltaOp.INSERT
            opp = 1 - port
            append_out = out.append
            for delta in deltas:
                row = delta.row
                key = key_fn(row)
                if worker.state_bytes > memory_budget:
                    charge_state_access()
                try:
                    bucket = buckets[key]
                except KeyError:
                    bucket = buckets[key] = ([], [])
                bucket[port].append(row)
                add_state_bytes(row_bytes(row))
                if bucket[opp]:
                    for pair in self._pairs(row, port, bucket[opp]):
                        append_out(Delta(insert_op, pair))
        else:
            apply_rules = self._apply_rules
            key_fn = self.keys[port]
            buckets = self.buckets
            worker = ctx.worker
            charge_state_access = worker.charge_state_access
            memory_budget = worker.cost.worker_memory_bytes
            add_state_bytes = worker.add_state_bytes
            insert_op = DeltaOp.INSERT
            opp = 1 - port
            append_out = out.append
            for delta in deltas:
                # Insert fast path (bulk loading a build side): same state
                # mutation and charges as _insert, fewer frames.
                if delta.op is insert_op:
                    row = delta.row
                    key = key_fn(row)
                    if worker.state_bytes > memory_budget:
                        charge_state_access()
                    try:
                        bucket = buckets[key]
                    except KeyError:
                        bucket = buckets[key] = ([], [])
                    bucket[port].append(row)
                    add_state_bytes(row_bytes(row))
                    if bucket[opp]:
                        for pair in self._pairs(row, port, bucket[opp]):
                            append_out(Delta(insert_op, pair))
                else:
                    apply_rules(delta, port, out)
        self.emit_batch(out)

    def _apply_rules(self, delta: Delta, side: int, out: List[Delta]) -> None:
        if delta.op is DeltaOp.INSERT:
            self._insert(delta.row, side, out)
        elif delta.op is DeltaOp.DELETE:
            self._delete(delta.row, side, out)
        elif delta.op is DeltaOp.REPLACE:
            self._replace(delta.old, delta.row, side, out)
        else:
            # No handler: propagate the annotation "as if it were another
            # (hidden) attribute" — probe without touching state.
            self._passthrough_update(delta, side, out)

    def _insert(self, row: tuple, side: int, out: List[Delta]) -> None:
        key = self.keys[side](row)
        bucket = self._bucket(key)
        bucket[side].append(row)
        self.ctx.worker.add_state_bytes(row_bytes(row))
        for pair in self._pairs(row, side, bucket[1 - side]):
            out.append(Delta(DeltaOp.INSERT, pair))

    def _delete(self, row: tuple, side: int, out: List[Delta]) -> None:
        key = self.keys[side](row)
        bucket = self._bucket(key)
        try:
            bucket[side].remove(row)
        except ValueError:
            raise ExecutionError(
                f"{self.name}: deletion of absent row {row!r}"
            ) from None
        for pair in self._pairs(row, side, bucket[1 - side]):
            out.append(Delta(DeltaOp.DELETE, pair))

    def _replace(self, old: tuple, new: tuple, side: int,
                 out: List[Delta]) -> None:
        old_key = self.keys[side](old)
        new_key = self.keys[side](new)
        if old_key == new_key:
            bucket = self._bucket(old_key)
            try:
                idx = bucket[side].index(old)
            except ValueError:
                raise ExecutionError(
                    f"{self.name}: replacement of absent row {old!r}"
                ) from None
            bucket[side][idx] = new
            for opp in bucket[1 - side]:
                out.append(Delta(
                    DeltaOp.REPLACE,
                    self._pairs(new, side, [opp])[0],
                    old=self._pairs(old, side, [opp])[0],
                ))
        else:
            # Key changed: the replacement decomposes into delete+insert
            # affecting two different buckets.
            self._delete(old, side, out)
            self._insert(new, side, out)

    def _passthrough_update(self, delta: Delta, side: int,
                            out: List[Delta]) -> None:
        key = self.keys[side](delta.row)
        bucket = self._bucket(key)
        for pair in self._pairs(delta.row, side, bucket[1 - side]):
            out.append(Delta(DeltaOp.UPDATE, pair, payload=delta.payload))

    def _process_with_handler(self, delta: Delta, side: int) -> None:
        key = self.keys[side](delta.row)
        left_bucket, right_bucket = self._bucket(key)
        per_delta_cost = getattr(self.handler, "per_delta_cost", None)
        if per_delta_cost is not None:
            self.ctx.charge_cpu(per_delta_cost(self.ctx.cost))
        else:
            self.ctx.charge_cpu(self.ctx.cost.udf_cost_per_tuple(batched=True))
        out = self.handler.update(left_bucket, right_bucket, delta, side)
        self.emit_all(as_deltas(key, out))

    # -- introspection -----------------------------------------------------
    def state_size(self) -> int:
        return sum(len(left) + len(right)
                   for left, right in self.buckets.values())

    def state_breakdown(self) -> Dict[str, int]:
        """Side-resolved state summary for the observability registry:
        number of distinct join keys and accumulated rows per side."""
        left_rows = right_rows = 0
        for left, right in self.buckets.values():
            left_rows += len(left)
            right_rows += len(right)
        return {"keys": len(self.buckets),
                "left_rows": left_rows, "right_rows": right_rows}
