"""Pipelined symmetric hash join with delta propagation.

"The join operator, in its pipelined form, will accumulate each tuple it
receives and immediately probe it against any tuples accumulated from the
opposite relation" (Section 3.2).  Delta rules follow Gupta et al. [12]
(Section 3.3): insertions/deletions apply to the bucket then probe and
propagate; replacements become replace outputs when the join key is
unchanged, otherwise delete+insert pairs; ``δ(E)`` updates require a
user-defined join delta handler (e.g. the paper's ``PRAgg``), which is
given both matching buckets and full control over state and output.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.deltas import Delta, DeltaOp
from repro.common.errors import ExecutionError
from repro.common.sizes import row_bytes
from repro.operators.base import Operator
from repro.udf.aggregates import JoinDeltaHandler, as_deltas

LEFT = 0
RIGHT = 1


class HashJoin(Operator):
    """Equi-join on compiled key extractors; port 0 = left, port 1 = right.

    ``handler`` (a :class:`~repro.udf.aggregates.JoinDeltaHandler`) takes
    over processing for deltas arriving on ``handler_side`` (both sides if
    ``handler_side is None``); it receives the left and right buckets for
    the delta's key and returns the deltas to propagate.
    """

    per_tuple_cost = None  # set from cost model at open()

    def __init__(self, left_key: Callable[[tuple], tuple],
                 right_key: Callable[[tuple], tuple],
                 handler: Optional[JoinDeltaHandler] = None,
                 handler_side: Optional[int] = RIGHT,
                 name: Optional[str] = None):
        super().__init__(name or "HashJoin")
        self.keys = (left_key, right_key)
        self.handler = handler
        self.handler_side = handler_side
        # key -> (left rows, right rows); plain lists preserve duplicates.
        self.buckets: Dict[tuple, Tuple[list, list]] = {}

    def open(self, ctx):
        super().open(ctx)
        self.per_tuple_cost = ctx.cost.cpu_tuple_cost + ctx.cost.hash_op_cost

    # -- bucket plumbing ----------------------------------------------------
    def _bucket(self, key: tuple) -> Tuple[list, list]:
        self.ctx.worker.charge_state_access()
        bucket = self.buckets.get(key)
        if bucket is None:
            bucket = ([], [])
            self.buckets[key] = bucket
        return bucket

    def _combine(self, left_row, right_row) -> tuple:
        return tuple(left_row) + tuple(right_row)

    def _pairs(self, row, side: int, opposite_rows) -> List[tuple]:
        if side == LEFT:
            return [self._combine(row, r) for r in opposite_rows]
        return [self._combine(r, row) for r in opposite_rows]

    # -- delta rules -------------------------------------------------------
    def process(self, delta: Delta, port: int) -> None:
        if port not in (LEFT, RIGHT):
            raise ExecutionError(f"{self.name}: bad port {port}")
        use_handler = (self.handler is not None
                       and (self.handler_side is None or port == self.handler_side))
        if use_handler:
            self._process_with_handler(delta, port)
            return
        if delta.op is DeltaOp.INSERT:
            self._insert(delta.row, port)
        elif delta.op is DeltaOp.DELETE:
            self._delete(delta.row, port)
        elif delta.op is DeltaOp.REPLACE:
            self._replace(delta.old, delta.row, port)
        else:
            # No handler: propagate the annotation "as if it were another
            # (hidden) attribute" — probe without touching state.
            self._passthrough_update(delta, port)

    def _insert(self, row: tuple, side: int) -> None:
        key = self.keys[side](row)
        bucket = self._bucket(key)
        bucket[side].append(row)
        self.ctx.worker.add_state_bytes(row_bytes(row))
        for out in self._pairs(row, side, bucket[1 - side]):
            self.emit(Delta(DeltaOp.INSERT, out))

    def _delete(self, row: tuple, side: int) -> None:
        key = self.keys[side](row)
        bucket = self._bucket(key)
        try:
            bucket[side].remove(row)
        except ValueError:
            raise ExecutionError(
                f"{self.name}: deletion of absent row {row!r}"
            ) from None
        for out in self._pairs(row, side, bucket[1 - side]):
            self.emit(Delta(DeltaOp.DELETE, out))

    def _replace(self, old: tuple, new: tuple, side: int) -> None:
        old_key = self.keys[side](old)
        new_key = self.keys[side](new)
        if old_key == new_key:
            bucket = self._bucket(old_key)
            try:
                idx = bucket[side].index(old)
            except ValueError:
                raise ExecutionError(
                    f"{self.name}: replacement of absent row {old!r}"
                ) from None
            bucket[side][idx] = new
            for opp in bucket[1 - side]:
                self.emit(Delta(
                    DeltaOp.REPLACE,
                    self._pairs(new, side, [opp])[0],
                    old=self._pairs(old, side, [opp])[0],
                ))
        else:
            # Key changed: the replacement decomposes into delete+insert
            # affecting two different buckets.
            self._delete(old, side)
            self._insert(new, side)

    def _passthrough_update(self, delta: Delta, side: int) -> None:
        key = self.keys[side](delta.row)
        bucket = self._bucket(key)
        for out in self._pairs(delta.row, side, bucket[1 - side]):
            self.emit(Delta(DeltaOp.UPDATE, out, payload=delta.payload))

    def _process_with_handler(self, delta: Delta, side: int) -> None:
        key = self.keys[side](delta.row)
        left_bucket, right_bucket = self._bucket(key)
        per_delta_cost = getattr(self.handler, "per_delta_cost", None)
        if per_delta_cost is not None:
            self.ctx.charge_cpu(per_delta_cost(self.ctx.cost))
        else:
            self.ctx.charge_cpu(self.ctx.cost.udf_cost_per_tuple(batched=True))
        out = self.handler.update(left_bucket, right_bucket, delta, side)
        self.emit_all(as_deltas(key, out))

    # -- introspection -----------------------------------------------------
    def state_size(self) -> int:
        return sum(len(left) + len(right)
                   for left, right in self.buckets.values())
