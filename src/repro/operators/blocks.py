"""Column-major delta blocks: the columnar backend's unit of data flow.

``ExecOptions(columnar=True)`` switches the batch pipeline from
``List[Delta]`` to :class:`ColumnBlock` wherever a whole-column kernel
exists (Filter/Project/ApplyFunction, the local half of Rehash, GroupBy,
and fused stateless chains).  A block is a struct-of-arrays view of one
delta batch:

* ``rows`` — the authoritative row images (tuples, row-major order is
  preserved so fold order and message boundaries match the row path);
* ``kind`` / ``kinds`` — the polarity vector: a single
  :class:`~repro.common.deltas.DeltaOp` when the block is homogeneous
  (the common case — a stratum emits runs of ``+`` or ``δ``), or a
  per-entry list for mixed blocks;
* ``payloads`` / ``olds`` — optional per-entry value-update payloads and
  REPLACE old images, ``None`` when absent everywhere;
* column arrays, materialized lazily per column index and gated by the
  ``live`` set from the column-lineage analysis (REX4xx): a pruned
  column never materializes.

Blocks are bit-compatible with the row path: :meth:`ColumnBlock.to_deltas`
reconstructs exactly the deltas the row pipeline would have carried, so
any operator without a columnar kernel falls back transparently through
the boundary adapter (``Operator.push_block``) and
``QueryMetrics.fingerprint`` does not depend on the backend.
"""

from __future__ import annotations

from itertools import compress as _compress
from typing import Any, List, Optional, Sequence, Tuple

from repro.common.deltas import Delta, DeltaOp

try:  # NumPy accelerates numeric column extraction when present.
    import numpy as _np
except Exception:  # pragma: no cover - numpy is baked into the image
    _np = None

#: Registry of columnar kernel bodies, filled by :func:`columnar_kernel`.
#: The REX108 lint rule walks these functions' ASTs to keep per-row
#: idioms (``row["col"]``, ``.items()`` loops) off the columnar hot path.
COLUMNAR_KERNELS: List[Tuple[str, Any]] = []


def columnar_kernel(fn):
    """Decorator registering ``fn`` as a columnar kernel body (for the
    REX108 lint rule and the kernel table in ``docs/performance.md``)."""
    COLUMNAR_KERNELS.append((fn.__qualname__, fn))
    return fn


_INSERT = DeltaOp.INSERT
_REPLACE = DeltaOp.REPLACE
_UPDATE = DeltaOp.UPDATE


class ColumnBlock:
    """One delta batch in column-major form.

    ``rows`` stays authoritative (UDFs, predicates, and key extractors
    are opaque callables over full row tuples — REX402 — so kernels
    evaluate them against rows), while per-column arrays are derived
    views materialized on demand and only for ``live`` columns.
    """

    __slots__ = ("rows", "kind", "kinds", "payloads", "olds", "live",
                 "names", "_columns")

    def __init__(self, rows: List[tuple],
                 kind: Optional[DeltaOp] = None,
                 kinds: Optional[List[DeltaOp]] = None,
                 payloads: Optional[List[Any]] = None,
                 olds: Optional[List[Optional[tuple]]] = None,
                 live: Optional[frozenset] = None,
                 names: Optional[Tuple[str, ...]] = None):
        if (kind is None) == (kinds is None):
            raise ValueError("exactly one of kind/kinds must be given")
        self.rows = rows
        self.kind = kind          # uniform polarity, or None when mixed
        self.kinds = kinds        # per-entry polarity vector when mixed
        self.payloads = payloads  # aligned UPDATE payloads, None if absent
        self.olds = olds          # aligned REPLACE old images, None if absent
        self.live = live          # materializable column indices (REX4xx)
        self.names = names        # optional column names for keyed access
        self._columns = None      # lazily-built {index: column list}

    # -- construction ---------------------------------------------------
    @classmethod
    def from_rows(cls, rows: Sequence[tuple], kind: DeltaOp = _INSERT,
                  live: Optional[frozenset] = None,
                  names: Optional[Tuple[str, ...]] = None) -> "ColumnBlock":
        """A homogeneous block of bare row images (the scan path: no
        :class:`Delta` objects are ever constructed)."""
        return cls(list(rows), kind=kind, live=live, names=names)

    @classmethod
    def from_deltas(cls, deltas: Sequence[Delta],
                    live: Optional[frozenset] = None) -> "ColumnBlock":
        """Columnarize an existing delta batch (boundary adapter into the
        block pipeline)."""
        rows = [d.row for d in deltas]
        first = deltas[0].op if deltas else _INSERT
        uniform = True
        for d in deltas:
            if d.op is not first:
                uniform = False
                break
        payloads = olds = None
        if uniform:
            if first is _UPDATE:
                payloads = [d.payload for d in deltas]
            elif first is _REPLACE:
                olds = [d.old for d in deltas]
            return cls(rows, kind=first, payloads=payloads, olds=olds,
                       live=live)
        kinds = [d.op for d in deltas]
        if any(d.payload is not None for d in deltas):
            payloads = [d.payload for d in deltas]
        if any(d.old is not None for d in deltas):
            olds = [d.old for d in deltas]
        return cls(rows, kinds=kinds, payloads=payloads, olds=olds, live=live)

    # -- row-path boundary ----------------------------------------------
    def to_deltas(self) -> List[Delta]:
        """The exact delta batch the row pipeline would carry: same rows,
        same order, same annotations.  This is the block→row boundary;
        operators without a columnar kernel consume blocks through it."""
        rows = self.rows
        kind = self.kind
        payloads = self.payloads
        olds = self.olds
        if kind is not None:
            if payloads is None and olds is None:
                return [Delta(kind, row) for row in rows]
            if kind is _UPDATE:
                return [Delta(kind, row, payload=p)
                        for row, p in zip(rows, payloads)]
            if kind is _REPLACE and olds is not None:
                return [Delta(kind, row, old=old)
                        for row, old in zip(rows, olds)]
            return [Delta(kind, row) for row in rows]
        n = len(rows)
        payloads = payloads or [None] * n
        olds = olds or [None] * n
        return [Delta(op, row, old=old, payload=p)
                for op, row, old, p in zip(self.kinds, rows, olds, payloads)]

    def entries(self):
        """Iterate ``(op, row, old, payload)`` without building deltas."""
        rows = self.rows
        n = len(rows)
        kinds = self.kinds if self.kind is None else [self.kind] * n
        payloads = self.payloads or [None] * n
        olds = self.olds or [None] * n
        return zip(kinds, rows, olds, payloads)

    # -- column access ---------------------------------------------------
    def column(self, index: int) -> List[Any]:
        """Materialize column ``index`` (a plain list, cached).  Columns
        outside the lineage ``live`` set are pruned: they never
        materialize, and asking for one is an error — the lineage proof
        says nothing downstream can read it."""
        if self.live is not None and index not in self.live:
            raise KeyError(
                f"column {index} is pruned (live set {sorted(self.live)})")
        columns = self._columns
        if columns is None:
            columns = self._columns = {}
        col = columns.get(index)
        if col is None:
            col = columns[index] = [row[index] for row in self.rows]
        return col

    def column_by_name(self, name: str) -> List[Any]:
        if not self.names:
            raise KeyError(f"block has no column names (wanted {name!r})")
        return self.column(self.names.index(name))

    def column_array(self, index: int):
        """Column ``index`` as a NumPy array when NumPy is available
        (numeric kernels), else the plain list."""
        col = self.column(index)
        if _np is None:
            return col
        return _np.asarray(col)

    def materialized_columns(self) -> List[int]:
        """Which columns have been materialized so far (tests/obs)."""
        return sorted(self._columns) if self._columns else []

    # -- kernel helpers --------------------------------------------------
    def compress(self, mask: Sequence[Any]) -> "ColumnBlock":
        """Mask-based selection: keep entries whose mask value is truthy
        (the Filter kernel's output).  Derived column caches are dropped;
        lineage and names survive."""
        rows = list(_compress(self.rows, mask))
        kinds = (None if self.kind is not None
                 else list(_compress(self.kinds, mask)))
        payloads = (None if self.payloads is None
                    else list(_compress(self.payloads, mask)))
        olds = (None if self.olds is None
                else list(_compress(self.olds, mask)))
        return ColumnBlock(rows, kind=self.kind, kinds=kinds,
                           payloads=payloads, olds=olds, live=self.live,
                           names=self.names)

    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __repr__(self) -> str:
        pol = self.kind.value if self.kind is not None else "mixed"
        return (f"<ColumnBlock n={len(self.rows)} kind={pol}"
                f"{' pruned' if self.live is not None else ''}>")
