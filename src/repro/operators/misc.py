"""Union, the collect sink, and the requestor-side result assembler."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.deltas import Delta, DeltaOp
from repro.common.errors import ExecutionError
from repro.common.punctuation import Punctuation
from repro.net.network import Message
from repro.operators.base import Operator

#: Pseudo node id of the query requestor (it is not a data-holding worker;
#: "the node making a query request is responsible for coordinating it").
REQUESTOR_NODE = -1


class Union(Operator):
    """N-ary bag union: passes deltas through; punctuation waits on all
    inputs per the n-ary operator rule."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name or "Union")

    def process(self, delta: Delta, port: int) -> None:
        self.emit(delta)

    def push_batch(self, deltas, port: int = 0) -> None:
        if not deltas:
            return
        self.ctx.charge_tuple_batch(len(deltas), self.per_tuple_cost)
        self.emit_batch(deltas)


class Collect(Operator):
    """Per-worker sink shipping result deltas to the query requestor.

    "The results of the plan execution are ultimately forwarded to the
    query requestor node, which unions the received results from all nodes
    in the cluster."
    """

    def __init__(self, exchange: str = "collect", batch_size: int = 256,
                 name: Optional[str] = None):
        super().__init__(name or "Collect")
        self.exchange = exchange
        self.batch_size = batch_size
        self._buffer: List[Delta] = []

    def process(self, delta: Delta, port: int) -> None:
        self._buffer.append(delta)
        if len(self._buffer) >= self.batch_size:
            self._flush()

    def push_batch(self, deltas, port: int = 0) -> None:
        """Buffer the batch, flushing at the same ``batch_size`` crossings
        as per-delta processing so the requestor sees identical messages."""
        if not deltas:
            return
        self.ctx.charge_tuple_batch(len(deltas), self.per_tuple_cost)
        batch_size = self.batch_size
        append = self._buffer.append
        for delta in deltas:
            append(delta)
            if len(self._buffer) >= batch_size:
                self._flush()
                append = self._buffer.append

    def _flush(self) -> None:
        if self._buffer:
            batch, self._buffer = self._buffer, []
            self.ctx.cluster.network.send(Message(
                src=self.ctx.node_id, dst=REQUESTOR_NODE,
                exchange=self.exchange, deltas=batch,
            ))

    def on_punctuation(self, punct: Punctuation, port: int = 0) -> None:
        self._flush()
        self.ctx.cluster.network.send(Message(
            src=self.ctx.node_id, dst=REQUESTOR_NODE,
            exchange=self.exchange, punct=punct,
        ))


class ResultSink:
    """Requestor-side assembly of the final relation from result deltas.

    Maintains a multiset so deletions and replacements arriving from
    different workers compose correctly.  ``rows()`` yields the final bag.
    """

    def __init__(self, network, exchange: str = "collect",
                 expected_workers: int = 1):
        self.exchange = exchange
        self.expected_workers = expected_workers
        self._counts: Dict[tuple, int] = {}
        self._final_puncts = 0
        self.done = False
        network.register(REQUESTOR_NODE, self.exchange, self.handle_message)

    def set_expected_workers(self, n: int) -> None:
        self.expected_workers = n

    def handle_message(self, msg: Message) -> None:
        if msg.punct is not None:
            if msg.punct.is_final:
                self._final_puncts += 1
                if self._final_puncts >= self.expected_workers:
                    self.done = True
            return
        for delta in msg.deltas or ():
            self._apply(delta)

    def _apply(self, delta: Delta) -> None:
        if delta.op is DeltaOp.INSERT or delta.op is DeltaOp.UPDATE:
            self._counts[delta.row] = self._counts.get(delta.row, 0) + 1
        elif delta.op is DeltaOp.DELETE:
            n = self._counts.get(delta.row, 0)
            if n <= 1:
                self._counts.pop(delta.row, None)
            else:
                self._counts[delta.row] = n - 1
        elif delta.op is DeltaOp.REPLACE:
            self._apply(Delta(DeltaOp.DELETE, delta.old))
            self._apply(Delta(DeltaOp.INSERT, delta.row))

    def rows(self) -> List[tuple]:
        out: List[tuple] = []
        for row, n in self._counts.items():
            out.extend([row] * n)
        return out

    def sorted_rows(self) -> List[tuple]:
        return sorted(self.rows(), key=repr)
