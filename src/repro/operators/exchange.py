"""Rehash: the cross-worker exchange operator (Sections 3.2 and 4.2).

"Whenever needed, a rehash operator re-partitions data among worker nodes
based on the partitioning snapshot for the current query."  A rehash edge is
split into a :class:`RehashSender` on the producing worker (batches deltas
per destination and ships them) and an :class:`ExchangeReceiver` on each
consuming worker (feeds the deltas into the consuming operator and counts
per-sender punctuation).  ``broadcast=True`` ships every delta to all live
workers (used for small relations such as K-means centroids).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.common.deltas import Delta, DeltaOp
from repro.common.errors import ExecutionError
from repro.common.punctuation import Punctuation
from repro.net.network import Message
from repro.operators.base import Operator
from repro.storage.hashing import normalize_key


class RehashSender(Operator):
    """Routes deltas by partition key to peer workers, in batches.

    A replacement whose routing key changed is split into a deletion routed
    to the old owner and an insertion routed to the new owner — the two
    images live in different partitions.
    """

    def __init__(self, exchange: str,
                 key_fn: Optional[Callable[[tuple], tuple]] = None,
                 batch_size: int = 256, broadcast: bool = False,
                 name: Optional[str] = None):
        if not broadcast and key_fn is None:
            raise ExecutionError("rehash requires a key function (or broadcast)")
        super().__init__(name or f"Rehash({exchange})")
        self.exchange = exchange
        self.key_fn = key_fn
        self.batch_size = batch_size
        self.broadcast = broadcast
        self._buffers: Dict[int, List[Delta]] = {}

    def open(self, ctx):
        super().open(ctx)
        self.per_tuple_cost = ctx.cost.cpu_tuple_cost + ctx.cost.hash_op_cost

    def _destinations(self, row: tuple) -> List[int]:
        if self.broadcast:
            return self.ctx.snapshot.live_nodes()
        key = normalize_key(self.key_fn(row))
        return [self.ctx.snapshot.primary(key)]

    def _route(self, delta: Delta) -> None:
        for dst in self._destinations(delta.row):
            buf = self._buffers.setdefault(dst, [])
            buf.append(delta)
            if len(buf) >= self.batch_size:
                self._flush(dst)

    def process(self, delta: Delta, port: int) -> None:
        if (delta.op is DeltaOp.REPLACE and not self.broadcast
                and self.key_fn(delta.old) != self.key_fn(delta.row)):
            self._route(Delta(DeltaOp.DELETE, delta.old))
            self._route(Delta(DeltaOp.INSERT, delta.row))
        else:
            self._route(delta)

    def _flush(self, dst: int) -> None:
        batch = self._buffers.pop(dst, None)
        if batch:
            self.ctx.cluster.network.send(Message(
                src=self.ctx.node_id, dst=dst,
                exchange=self.exchange, deltas=batch,
            ))

    def on_punctuation(self, punct: Punctuation, port: int = 0) -> None:
        """Flush everything, then punctuate every receiver (each receiver
        counts one punctuation per live sender)."""
        for dst in list(self._buffers):
            self._flush(dst)
        for dst in self.ctx.snapshot.live_nodes():
            self.ctx.cluster.network.send(Message(
                src=self.ctx.node_id, dst=dst,
                exchange=self.exchange, punct=punct,
            ))


class ExchangeReceiver(Operator):
    """The receiving half of a rehash; registered on the network fabric.

    Expects one punctuation per live sender before closing the stratum and
    forwarding a single punctuation to its consumer.
    """

    def __init__(self, exchange: str, expected_senders: int,
                 name: Optional[str] = None):
        super().__init__(name or f"Receive({exchange})")
        self.exchange = exchange
        self.expected_senders = expected_senders
        self._punct_count = 0

    def open(self, ctx):
        super().open(ctx)
        ctx.cluster.network.register(ctx.node_id, self.exchange,
                                     self.handle_message)

    def set_expected_senders(self, n: int) -> None:
        """Adjusted by recovery when the sender population changes."""
        self.expected_senders = n

    def handle_message(self, msg: Message) -> None:
        if msg.punct is not None:
            self._punct_count += 1
            if self._punct_count >= self.expected_senders:
                self._punct_count = 0
                self.forward_punctuation(msg.punct)
            return
        for delta in msg.deltas or ():
            self.ctx.charge_tuple(self.per_tuple_cost)
            self.emit(delta)

    def process(self, delta: Delta, port: int) -> None:
        raise ExecutionError("ExchangeReceiver is fed by the network fabric")
