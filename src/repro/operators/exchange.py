"""Rehash: the cross-worker exchange operator (Sections 3.2 and 4.2).

"Whenever needed, a rehash operator re-partitions data among worker nodes
based on the partitioning snapshot for the current query."  A rehash edge is
split into a :class:`RehashSender` on the producing worker (batches deltas
per destination and ships them) and an :class:`ExchangeReceiver` on each
consuming worker (feeds the deltas into the consuming operator and counts
per-sender punctuation).  ``broadcast=True`` ships every delta to all live
workers (used for small relations such as K-means centroids).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.common.deltas import Delta, DeltaOp
from repro.common.errors import ExecutionError
from repro.common.punctuation import Punctuation
from repro.net.network import Message
from repro.operators.base import Operator
from repro.storage.hashing import normalize_key


class RehashSender(Operator):
    """Routes deltas by partition key to peer workers, in batches.

    A replacement whose routing key changed is split into a deletion routed
    to the old owner and an insertion routed to the new owner — the two
    images live in different partitions.
    """

    #: Routing-memo capacity: the row->destination cache is wiped when it
    #: reaches this many entries (bulk eviction keeps the hot loop to one
    #: dict probe).  Class attribute so tests can pin eviction behavior
    #: with a small cap.
    memo_cap: int = 131072

    def __init__(self, exchange: str,
                 key_fn: Optional[Callable[[tuple], tuple]] = None,
                 batch_size: int = 256, broadcast: bool = False,
                 name: Optional[str] = None):
        if not broadcast and key_fn is None:
            raise ExecutionError("rehash requires a key function (or broadcast)")
        super().__init__(name or f"Rehash({exchange})")
        self.exchange = exchange
        self.key_fn = key_fn
        self.batch_size = batch_size
        self.broadcast = broadcast
        self._buffers: Dict[int, List[Delta]] = {}
        # row -> destination memo, invalidated when the snapshot's live
        # set changes (node failure re-routes ranges mid-query).  A second
        # key -> destination level backs it: streams of mostly-distinct
        # rows over few keys (SSSP's distance offers) miss the row level
        # but skip the ring hash via the key level.
        self._dst_cache: Dict[tuple, int] = {}
        self._key_dst_cache: Dict[tuple, int] = {}
        self._dst_version = -1
        # Memo accounting, surfaced by repro.obs as memo.rehash.* counters.
        # Only exceptional branches touch these per-delta (misses, cap
        # evictions); hits are reconstructed once per batch, so the
        # counters cost nothing measurable when observability is off.
        self.memo_hits = 0
        self.memo_misses = 0
        self.memo_evictions = 0

    def open(self, ctx):
        super().open(ctx)
        self.per_tuple_cost = ctx.cost.cpu_tuple_cost + ctx.cost.hash_op_cost

    def _destinations(self, row: tuple) -> List[int]:
        if self.broadcast:
            return self.ctx.snapshot.live_nodes()
        key = normalize_key(self.key_fn(row))
        return [self.ctx.snapshot.primary(key)]

    def _route(self, delta: Delta) -> None:
        # Hot loop: bind lookups to locals (satellite of the batch PR).
        buffers = self._buffers
        batch_size = self.batch_size
        if self.broadcast:
            destinations = self.ctx.snapshot.live_nodes()
        else:
            destinations = (self.ctx.snapshot.primary(
                normalize_key(self.key_fn(delta.row))),)
        for dst in destinations:
            buf = buffers.get(dst)
            if buf is None:
                buf = buffers[dst] = []
            buf.append(delta)
            if len(buf) >= batch_size:
                self._flush(dst)

    def process(self, delta: Delta, port: int) -> None:
        if (delta.op is DeltaOp.REPLACE and not self.broadcast
                and self.key_fn(delta.old) != self.key_fn(delta.row)):
            self._route(Delta(DeltaOp.DELETE, delta.old))
            self._route(Delta(DeltaOp.INSERT, delta.row))
        else:
            self._route(delta)

    def push_batch(self, deltas, port: int = 0) -> None:
        """Route a whole batch in one partition pass.

        Message boundaries are unchanged from per-tuple routing (a buffer
        still flushes the moment it reaches ``batch_size``), so the network
        sees the same messages and bytes in both execution modes.
        """
        if not deltas:
            return
        ctx = self.ctx
        ctx.charge_tuple_batch(len(deltas), self.per_tuple_cost)
        buffers = self._buffers
        batch_size = self.batch_size
        flush = self._flush
        snapshot = ctx.snapshot
        if self.broadcast:
            live = snapshot.live_nodes()
            for delta in deltas:
                for dst in live:
                    buf = buffers.get(dst)
                    if buf is None:
                        buf = buffers[dst] = []
                    buf.append(delta)
                    if len(buf) >= batch_size:
                        flush(dst)
            return
        key_fn = self.key_fn
        normalize = normalize_key
        primary = snapshot.primary
        replace = DeltaOp.REPLACE
        if self._dst_version != snapshot.version:
            if self._dst_cache:
                # Snapshot change (failure re-routing) invalidates every
                # memoized destination: count it as a bulk eviction.
                self.memo_evictions += len(self._dst_cache)
            self._dst_cache.clear()
            self._key_dst_cache.clear()
            self._dst_version = snapshot.version
        # The memo is keyed by the *row*, not the extracted key: equal rows
        # extract equal keys (key functions are pure), so a hit skips both
        # the key_fn call and the ring lookup.
        dst_for_row = self._dst_cache
        dst_for_key = self._key_dst_cache
        memo_cap = self.memo_cap
        misses = splits = 0
        for delta in deltas:
            row = delta.row
            if delta.op is replace:
                if key_fn(delta.old) != key_fn(row):
                    # Split replacement: two partitions; route each half
                    # exactly as the per-tuple path would.
                    splits += 1
                    self._route(Delta(DeltaOp.DELETE, delta.old))
                    self._route(Delta(DeltaOp.INSERT, row))
                    continue
            # get() instead of [] + KeyError: mostly-distinct row streams
            # (SSSP offers) miss the row level on nearly every delta, and
            # a raised exception costs far more than a None test.
            try:
                dst = dst_for_row.get(row)
            except TypeError:
                misses += 1  # unhashable row: uncacheable lookup
                dst = primary(normalize(key_fn(row)))
            else:
                if dst is None:
                    misses += 1
                    key = key_fn(row)
                    dst = dst_for_key.get(key)
                    if dst is None:
                        dst = primary(normalize(key))
                        if len(dst_for_key) >= memo_cap:
                            dst_for_key.clear()
                        dst_for_key[key] = dst
                    if len(dst_for_row) >= memo_cap:
                        self.memo_evictions += len(dst_for_row)
                        dst_for_row.clear()
                    dst_for_row[row] = dst
            try:
                buf = buffers[dst]
            except KeyError:
                buf = buffers[dst] = []
            buf.append(delta)
            if len(buf) >= batch_size:
                flush(dst)
        self.memo_misses += misses
        self.memo_hits += len(deltas) - splits - misses

    def _flush(self, dst: int) -> None:
        batch = self._buffers.pop(dst, None)
        if batch:
            self.ctx.cluster.network.send(Message(
                src=self.ctx.node_id, dst=dst,
                exchange=self.exchange, deltas=batch,
            ))

    def on_punctuation(self, punct: Punctuation, port: int = 0) -> None:
        """Flush everything, then punctuate every receiver (each receiver
        counts one punctuation per live sender)."""
        for dst in list(self._buffers):
            self._flush(dst)
        ctx = self.ctx
        live = ctx.snapshot.live_nodes()
        if ctx.fuse:
            # Bulk broadcast: identical message stream and charge
            # multisets to the loop below (the network falls back to
            # per-message sends itself whenever an observer is attached).
            ctx.cluster.network.send_punct_fanout(
                ctx.node_id, live, self.exchange, punct)
            return
        for dst in live:
            ctx.cluster.network.send(Message(
                src=ctx.node_id, dst=dst,
                exchange=self.exchange, punct=punct,
            ))


class ExchangeReceiver(Operator):
    """The receiving half of a rehash; registered on the network fabric.

    Expects one punctuation per live sender before closing the stratum and
    forwarding a single punctuation to its consumer.
    """

    def __init__(self, exchange: str, expected_senders: int,
                 name: Optional[str] = None):
        super().__init__(name or f"Receive({exchange})")
        self.exchange = exchange
        self.expected_senders = expected_senders
        self._punct_count = 0

    def open(self, ctx):
        super().open(ctx)
        ctx.cluster.network.register(ctx.node_id, self.exchange,
                                     self.handle_message)

    def set_expected_senders(self, n: int) -> None:
        """Adjusted by recovery when the sender population changes."""
        self.expected_senders = n

    def handle_message(self, msg: Message) -> None:
        if msg.punct is not None:
            self._punct_count += 1
            if self._punct_count >= self.expected_senders:
                self._punct_count = 0
                self.forward_punctuation(msg.punct)
            return
        deltas = msg.deltas or ()
        if not deltas:
            return
        if self.ctx.batch:
            self.ctx.charge_tuple_batch(len(deltas), self.per_tuple_cost)
            self.emit_batch(deltas if isinstance(deltas, list)
                            else list(deltas))
            return
        charge_tuple = self.ctx.charge_tuple
        per_tuple_cost = self.per_tuple_cost
        emit = self.emit
        for delta in deltas:
            charge_tuple(per_tuple_cost)
            emit(delta)

    def process(self, delta: Delta, port: int) -> None:
        raise ExecutionError("ExchangeReceiver is fed by the network fabric")
