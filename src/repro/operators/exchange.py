"""Rehash: the cross-worker exchange operator (Sections 3.2 and 4.2).

"Whenever needed, a rehash operator re-partitions data among worker nodes
based on the partitioning snapshot for the current query."  A rehash edge is
split into a :class:`RehashSender` on the producing worker (batches deltas
per destination and ships them) and an :class:`ExchangeReceiver` on each
consuming worker (feeds the deltas into the consuming operator and counts
per-sender punctuation).  ``broadcast=True`` ships every delta to all live
workers (used for small relations such as K-means centroids).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.common.deltas import Delta, DeltaOp
from repro.common.errors import ExecutionError
from repro.common.punctuation import Punctuation
from repro.common.sizes import row_bytes, value_bytes
from repro.net.network import Message, PUNCT_BYTES
from repro.operators.base import Operator
from repro.operators.blocks import columnar_kernel
from repro.storage.hashing import normalize_key


class RehashSender(Operator):
    """Routes deltas by partition key to peer workers, in batches.

    A replacement whose routing key changed is split into a deletion routed
    to the old owner and an insertion routed to the new owner — the two
    images live in different partitions.
    """

    #: Routing-memo capacity: the row->destination cache is wiped when it
    #: reaches this many entries (bulk eviction keeps the hot loop to one
    #: dict probe).  Class attribute so tests can pin eviction behavior
    #: with a small cap.
    memo_cap: int = 131072

    accepts_blocks = True

    def __init__(self, exchange: str,
                 key_fn: Optional[Callable[[tuple], tuple]] = None,
                 batch_size: int = 256, broadcast: bool = False,
                 name: Optional[str] = None):
        if not broadcast and key_fn is None:
            raise ExecutionError("rehash requires a key function (or broadcast)")
        super().__init__(name or f"Rehash({exchange})")
        self.exchange = exchange
        self.key_fn = key_fn
        self.batch_size = batch_size
        self.broadcast = broadcast
        self._buffers: Dict[int, List[Delta]] = {}
        # Running wire size of each buffer (the exact per-delta terms of
        # Message.size_bytes, accumulated at append time): _flush ships
        # it precomputed via int Message.meta, so the network never
        # re-walks a payload this sender already walked.
        self._buf_bytes: Dict[int, int] = {}
        # row -> (destination, wire base bytes) memo, invalidated when
        # the snapshot's live set changes (node failure re-routes ranges
        # mid-query).  The base is ``1 + row_bytes(row)`` — the delta's
        # wire contribution before old/payload extras — cached next to
        # the destination because both are pure functions of the row.  A
        # second key -> destination level backs it: streams of
        # mostly-distinct rows over few keys (SSSP's distance offers)
        # miss the row level but skip the ring hash via the key level.
        self._dst_cache: Dict[tuple, tuple] = {}
        self._key_dst_cache: Dict[tuple, int] = {}
        self.block_batches = 0
        self._dst_version = -1
        # Memo accounting, surfaced by repro.obs as memo.rehash.* counters.
        # Only exceptional branches touch these per-delta (misses, cap
        # evictions); hits are reconstructed once per batch, so the
        # counters cost nothing measurable when observability is off.
        self.memo_hits = 0
        self.memo_misses = 0
        self.memo_evictions = 0

    def open(self, ctx):
        super().open(ctx)
        self.per_tuple_cost = ctx.cost.cpu_tuple_cost + ctx.cost.hash_op_cost

    def _destinations(self, row: tuple) -> List[int]:
        if self.broadcast:
            return self.ctx.snapshot.live_nodes()
        key = normalize_key(self.key_fn(row))
        return [self.ctx.snapshot.primary(key)]

    @staticmethod
    def _wire_bytes(delta: Delta) -> int:
        """This delta's exact contribution to ``Message.size_bytes`` —
        the accumulation term behind the precomputed-meta fast path."""
        nbytes = 1 + row_bytes(delta.row)
        old = delta.old
        if old is not None:
            nbytes += row_bytes(old)
        payload = delta.payload
        if payload is not None:
            nbytes += (8 if payload.__class__ is float
                       else value_bytes(payload))
        return nbytes

    def _route(self, delta: Delta) -> None:
        # Hot loop: bind lookups to locals (satellite of the batch PR).
        buffers = self._buffers
        buf_bytes = self._buf_bytes
        batch_size = self.batch_size
        nbytes = self._wire_bytes(delta)
        if self.broadcast:
            destinations = self.ctx.snapshot.live_nodes()
        else:
            destinations = (self.ctx.snapshot.primary(
                normalize_key(self.key_fn(delta.row))),)
        for dst in destinations:
            buf = buffers.get(dst)
            if buf is None:
                buf = buffers[dst] = []
            buf.append(delta)
            buf_bytes[dst] = buf_bytes.get(dst, 0) + nbytes
            if len(buf) >= batch_size:
                self._flush(dst)

    def process(self, delta: Delta, port: int) -> None:
        if (delta.op is DeltaOp.REPLACE and not self.broadcast
                and self.key_fn(delta.old) != self.key_fn(delta.row)):
            self._route(Delta(DeltaOp.DELETE, delta.old))
            self._route(Delta(DeltaOp.INSERT, delta.row))
        else:
            self._route(delta)

    def push_batch(self, deltas, port: int = 0) -> None:
        """Route a whole batch in one partition pass.

        Message boundaries are unchanged from per-tuple routing (a buffer
        still flushes the moment it reaches ``batch_size``), so the network
        sees the same messages and bytes in both execution modes.
        """
        if not deltas:
            return
        ctx = self.ctx
        ctx.charge_tuple_batch(len(deltas), self.per_tuple_cost)
        buffers = self._buffers
        buf_bytes = self._buf_bytes
        batch_size = self.batch_size
        flush = self._flush
        snapshot = ctx.snapshot
        if self.broadcast:
            live = snapshot.live_nodes()
            wire_bytes = self._wire_bytes
            for delta in deltas:
                nbytes = wire_bytes(delta)
                for dst in live:
                    buf = buffers.get(dst)
                    if buf is None:
                        buf = buffers[dst] = []
                    buf.append(delta)
                    buf_bytes[dst] = buf_bytes.get(dst, 0) + nbytes
                    if len(buf) >= batch_size:
                        flush(dst)
            return
        key_fn = self.key_fn
        normalize = normalize_key
        primary = snapshot.primary
        replace = DeltaOp.REPLACE
        size_row = row_bytes
        size_value = value_bytes
        if self._dst_version != snapshot.version:
            if self._dst_cache:
                # Snapshot change (failure re-routing) invalidates every
                # memoized destination: count it as a bulk eviction.
                self.memo_evictions += len(self._dst_cache)
            self._dst_cache.clear()
            self._key_dst_cache.clear()
            self._dst_version = snapshot.version
        # The memo is keyed by the *row*, not the extracted key: equal rows
        # extract equal keys (key functions are pure), so a hit skips the
        # key_fn call, the ring lookup, and the row's wire-size terms.
        dst_for_row = self._dst_cache
        dst_for_key = self._key_dst_cache
        memo_cap = self.memo_cap
        misses = splits = 0
        for delta in deltas:
            row = delta.row
            extra = 0
            if delta.op is replace:
                old = delta.old
                if key_fn(old) != key_fn(row):
                    # Split replacement: two partitions; route each half
                    # exactly as the per-tuple path would.
                    splits += 1
                    self._route(Delta(DeltaOp.DELETE, old))
                    self._route(Delta(DeltaOp.INSERT, row))
                    continue
                extra = size_row(old)
            # get() instead of [] + KeyError: mostly-distinct row streams
            # (SSSP offers) miss the row level on nearly every delta, and
            # a raised exception costs far more than a None test.
            try:
                memo = dst_for_row.get(row)
            except TypeError:
                misses += 1  # unhashable row: uncacheable lookup
                memo = (primary(normalize(key_fn(row))), 1 + size_row(row))
            else:
                if memo is None:
                    misses += 1
                    key = key_fn(row)
                    dst = dst_for_key.get(key)
                    if dst is None:
                        dst = primary(normalize(key))
                        if len(dst_for_key) >= memo_cap:
                            dst_for_key.clear()
                        dst_for_key[key] = dst
                    if len(dst_for_row) >= memo_cap:
                        self.memo_evictions += len(dst_for_row)
                        dst_for_row.clear()
                    memo = dst_for_row[row] = (dst, 1 + size_row(row))
            dst, nbytes = memo
            payload = delta.payload
            if payload is not None:
                nbytes += (8 if payload.__class__ is float
                           else size_value(payload))
            try:
                buf = buffers[dst]
            except KeyError:
                buf = buffers[dst] = []
            buf.append(delta)
            buf_bytes[dst] = buf_bytes.get(dst, 0) + nbytes + extra
            if len(buf) >= batch_size:
                flush(dst)
        self.memo_misses += misses
        self.memo_hits += len(deltas) - splits - misses

    @columnar_kernel
    def push_block(self, block, port: int = 0) -> None:
        """Columnar kernel for the exchange's local half: routes the
        block's row vector through the destination memo and materializes
        wire deltas straight into the per-destination send buffers (the
        wire format is row deltas, so this is the natural block→row
        boundary).  Broadcast, mixed-polarity, and REPLACE blocks take
        the row fallback — the key-straddle split needs per-delta
        treatment — with identical routing, message boundaries, and
        charges either way."""
        if not block:
            return
        kind = block.kind
        if self.broadcast or kind is None or kind is DeltaOp.REPLACE:
            deltas = block.to_deltas()
            if deltas:
                # Class-level call: the row entry point charges the batch
                # itself, and any obs wrapper already counted this block.
                type(self).push_batch(self, deltas, port)
            return
        self.block_batches += 1
        ctx = self.ctx
        n = len(block)
        ctx.charge_tuple_batch(n, self.per_tuple_cost)
        buffers = self._buffers
        buf_bytes = self._buf_bytes
        batch_size = self.batch_size
        flush = self._flush
        snapshot = ctx.snapshot
        key_fn = self.key_fn
        normalize = normalize_key
        primary = snapshot.primary
        size_row = row_bytes
        size_value = value_bytes
        if self._dst_version != snapshot.version:
            if self._dst_cache:
                self.memo_evictions += len(self._dst_cache)
            self._dst_cache.clear()
            self._key_dst_cache.clear()
            self._dst_version = snapshot.version
        dst_for_row = self._dst_cache
        dst_for_key = self._key_dst_cache
        memo_cap = self.memo_cap
        misses = 0
        payloads = block.payloads or ((None,) * n)
        for row, payload in zip(block.rows, payloads):
            try:
                memo = dst_for_row.get(row)
            except TypeError:
                misses += 1
                memo = (primary(normalize(key_fn(row))), 1 + size_row(row))
            else:
                if memo is None:
                    misses += 1
                    key = key_fn(row)
                    dst = dst_for_key.get(key)
                    if dst is None:
                        dst = primary(normalize(key))
                        if len(dst_for_key) >= memo_cap:
                            dst_for_key.clear()
                        dst_for_key[key] = dst
                    if len(dst_for_row) >= memo_cap:
                        self.memo_evictions += len(dst_for_row)
                        dst_for_row.clear()
                    memo = dst_for_row[row] = (dst, 1 + size_row(row))
            dst, nbytes = memo
            if payload is not None:
                nbytes += (8 if payload.__class__ is float
                           else size_value(payload))
                delta = Delta(kind, row, payload=payload)
            else:
                delta = Delta(kind, row)
            try:
                buf = buffers[dst]
            except KeyError:
                buf = buffers[dst] = []
            buf.append(delta)
            buf_bytes[dst] = buf_bytes.get(dst, 0) + nbytes
            if len(buf) >= batch_size:
                flush(dst)
        self.memo_misses += misses
        self.memo_hits += n - misses

    def _flush(self, dst: int) -> None:
        batch = self._buffers.pop(dst, None)
        nbytes = self._buf_bytes.pop(dst, 0)
        if batch:
            self.ctx.cluster.network.send(Message(
                src=self.ctx.node_id, dst=dst,
                exchange=self.exchange, deltas=batch,
                meta=nbytes + PUNCT_BYTES,
            ))

    def on_punctuation(self, punct: Punctuation, port: int = 0) -> None:
        """Flush everything, then punctuate every receiver (each receiver
        counts one punctuation per live sender)."""
        for dst in list(self._buffers):
            self._flush(dst)
        ctx = self.ctx
        live = ctx.snapshot.live_nodes()
        if ctx.fuse:
            # Bulk broadcast: identical message stream and charge
            # multisets to the loop below (the network falls back to
            # per-message sends itself whenever an observer is attached).
            ctx.cluster.network.send_punct_fanout(
                ctx.node_id, live, self.exchange, punct)
            return
        for dst in live:
            ctx.cluster.network.send(Message(
                src=ctx.node_id, dst=dst,
                exchange=self.exchange, punct=punct,
            ))


class ExchangeReceiver(Operator):
    """The receiving half of a rehash; registered on the network fabric.

    Expects one punctuation per live sender before closing the stratum and
    forwarding a single punctuation to its consumer.
    """

    def __init__(self, exchange: str, expected_senders: int,
                 name: Optional[str] = None):
        super().__init__(name or f"Receive({exchange})")
        self.exchange = exchange
        self.expected_senders = expected_senders
        self._punct_count = 0

    def open(self, ctx):
        super().open(ctx)
        ctx.cluster.network.register(ctx.node_id, self.exchange,
                                     self.handle_message)

    def set_expected_senders(self, n: int) -> None:
        """Adjusted by recovery when the sender population changes."""
        self.expected_senders = n

    def handle_message(self, msg: Message) -> None:
        if msg.punct is not None:
            self._punct_count += 1
            if self._punct_count >= self.expected_senders:
                self._punct_count = 0
                self.forward_punctuation(msg.punct)
            return
        deltas = msg.deltas or ()
        if not deltas:
            return
        if self.ctx.batch:
            self.ctx.charge_tuple_batch(len(deltas), self.per_tuple_cost)
            self.emit_batch(deltas if isinstance(deltas, list)
                            else list(deltas))
            return
        charge_tuple = self.ctx.charge_tuple
        per_tuple_cost = self.per_tuple_cost
        emit = self.emit
        for delta in deltas:
            charge_tuple(per_tuple_cost)
            emit(delta)

    def process(self, delta: Delta, port: int) -> None:
        raise ExecutionError("ExchangeReceiver is fed by the network fabric")
