"""Point-to-point batched message transport between worker nodes.

The network is simulated: delivery is immediate and reliable (failures are
injected at the *node* level by the cluster, not as message loss), but every
byte is accounted against the sending and receiving nodes' network resource
usage so bandwidth figures (paper Figure 11) fall out of real traffic counts.

Messages are addressed to ``(dst_node, exchange_id)`` pairs; an *exchange* is
one cross-worker edge of a physical plan (a rehash, a collect, a checkpoint
stream).  The receiving side registers a handler per exchange.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.common.errors import ExecutionError
from repro.common.punctuation import Punctuation
from repro.common.sizes import row_bytes, value_bytes

PUNCT_BYTES = 16


@dataclass(slots=True)
class Message:
    """One batched transmission on an exchange.

    Either ``deltas`` (a batch of annotated tuples) or ``punct`` is set.
    ``sender`` identifies the source node so n-ary receivers can count
    punctuation from every upstream worker.
    """

    src: int
    dst: int
    exchange: str
    deltas: Optional[List[Any]] = None
    punct: Optional[Punctuation] = None
    meta: Any = None
    """Optional transport annotation.  An ``int`` is a precomputed wire
    size for the whole message (``size_bytes()`` of it, computed once by
    a sender that already walked the deltas — e.g. the executor's
    memoized checkpoint replication); :meth:`SimulatedNetwork.send` then
    accounts that size without recounting the payload."""

    def size_bytes(self) -> int:
        if self.punct is not None:
            return PUNCT_BYTES
        total = 0
        size_row = row_bytes
        size_value = value_bytes
        for d in self.deltas or ():
            total += 1 + size_row(d.row)
            old = d.old
            if old is not None:
                total += size_row(old)
            payload = d.payload
            if payload is not None:
                total += size_value(payload)
        return total + PUNCT_BYTES  # batch framing


@dataclass(slots=True)
class LinkStats:
    """Traffic accounting for one directed node pair."""

    messages: int = 0
    bytes: int = 0


class SimulatedNetwork:
    """FIFO message fabric with per-node byte accounting.

    Delivery is deferred: :meth:`send` enqueues; the cluster's event loop
    drains queues via :meth:`pop`.  Local sends (src == dst) are queued the
    same way, preserving the paper's message-driven execution, but cost
    nothing on the wire.
    """

    def __init__(self, on_bytes: Optional[Callable[[int, int, int], None]] = None,
                 on_bytes_fanout: Optional[Callable[[int, List[int], int], None]] = None):
        """``on_bytes(src, dst, nbytes)`` is invoked for every remote send so
        the cluster can charge network time to both endpoints.
        ``on_bytes_fanout(src, dsts, nbytes)`` is the bulk form used by
        :meth:`send_punct_fanout`: one call covering ``len(dsts)`` equal
        sends, charged so the endpoint tallies are identical to that many
        ``on_bytes`` calls."""
        self._queue: Deque[Message] = deque()
        self._handlers: Dict[Tuple[int, str], Callable[[Message], None]] = {}
        self._on_bytes = on_bytes
        self._on_bytes_fanout = on_bytes_fanout
        self.links: Dict[Tuple[int, int], LinkStats] = {}
        self.total_bytes = 0
        self.bytes_by_node: Dict[int, int] = {}
        self._dead: set = set()
        #: Armed by the executor on fused, unperturbed runs: enables the
        #: observer-free drain loop and bulk punctuation fanout.  Every
        #: fast path preserves message order, delivery semantics, and
        #: charge multisets exactly; paths that an observer must see fall
        #: back to the hooked implementations automatically.
        self.fast_path = False
        #: Optional observability hook (repro.obs / the sanitizer): an
        #: object with ``on_send(msg, wire_bytes)`` / ``on_deliver(msg)``
        #: and, optionally, ``on_drop(msg)`` for mail discarded at dead
        #: destinations.  Purely passive — it never affects delivery or
        #: byte accounting.
        self.observer = None

    def register(self, node: int, exchange: str,
                 handler: Callable[[Message], None]) -> None:
        """Route messages for ``(node, exchange)`` to ``handler``."""
        key = (node, exchange)
        if key in self._handlers:
            raise ExecutionError(f"exchange {exchange!r} already registered on node {node}")
        self._handlers[key] = handler

    def unregister_node(self, node: int) -> None:
        """Drop all handlers on a failed node; in-flight messages to it are
        discarded at delivery time."""
        self._dead.add(node)
        for key in [k for k in self._handlers if k[0] == node]:
            del self._handlers[key]

    def revive_node(self, node: int) -> None:
        self._dead.discard(node)

    def send(self, msg: Message) -> None:
        if msg.src in self._dead:
            return  # a dead node cannot transmit
        nbytes = 0  # local sends cost nothing on the wire
        if msg.src != msg.dst:
            meta = msg.meta
            # A sender that already walked the payload ships its wire
            # size precomputed (int meta); recounting via size_bytes()
            # would walk every delta a second time.
            nbytes = meta if type(meta) is int else msg.size_bytes()
            self.total_bytes += nbytes
            self.bytes_by_node[msg.src] = self.bytes_by_node.get(msg.src, 0) + nbytes
            stats = self.links.setdefault((msg.src, msg.dst), LinkStats())
            stats.messages += 1
            stats.bytes += nbytes
            if self._on_bytes is not None:
                self._on_bytes(msg.src, msg.dst, nbytes)
        if self.observer is not None:
            self.observer.on_send(msg, nbytes)
        self._queue.append(msg)

    def send_punct_fanout(self, src: int, dsts, exchange: str,
                          punct: Punctuation) -> None:
        """Broadcast one punctuation to every node in ``dsts`` (in order).

        The message stream, enqueue order, link stats, and per-endpoint
        charge multisets are identical to ``len(dsts)`` individual
        :meth:`send` calls; the bulk form only batches the bookkeeping
        (one ``total_bytes`` update, one sender net-out tally covering
        all remote copies).  Falls back to per-message sends whenever an
        observer is attached or the fast path is off, so hooks see every
        message individually.
        """
        if src in self._dead:
            return  # a dead node cannot transmit
        if self.observer is not None or not self.fast_path:
            for dst in dsts:
                self.send(Message(src=src, dst=dst, exchange=exchange,
                                  punct=punct))
            return
        links = self.links
        append = self._queue.append
        remotes: List[int] = []
        for dst in dsts:
            if dst != src:
                stats = links.get((src, dst))
                if stats is None:
                    stats = links[(src, dst)] = LinkStats()
                stats.messages += 1
                stats.bytes += PUNCT_BYTES
                remotes.append(dst)
            append(Message(src=src, dst=dst, exchange=exchange, punct=punct))
        if remotes:
            nbytes = len(remotes) * PUNCT_BYTES
            self.total_bytes += nbytes
            self.bytes_by_node[src] = self.bytes_by_node.get(src, 0) + nbytes
            if self._on_bytes_fanout is not None:
                self._on_bytes_fanout(src, remotes, PUNCT_BYTES)
            elif self._on_bytes is not None:
                for dst in remotes:
                    self._on_bytes(src, dst, PUNCT_BYTES)

    def pending(self) -> int:
        return len(self._queue)

    def pop(self) -> Optional[Message]:
        """Dequeue the next deliverable message (dropping mail for the dead)."""
        while self._queue:
            msg = self._queue.popleft()
            if msg.dst in self._dead:
                if self.observer is not None:
                    on_drop = getattr(self.observer, "on_drop", None)
                    if on_drop is not None:
                        on_drop(msg)
                continue
            return msg
        return None

    def dispatch(self, msg: Message) -> None:
        """Deliver a popped message to its registered handler."""
        handler = self._handlers.get((msg.dst, msg.exchange))
        if handler is None:
            raise ExecutionError(
                f"no handler for exchange {msg.exchange!r} on node {msg.dst}"
            )
        if self.observer is not None:
            self.observer.on_deliver(msg)
        handler(msg)

    def drain(self) -> int:
        """Deliver queued messages until quiescent; returns count delivered.

        Handlers may send further messages; those are delivered too.  This is
        the inner loop of stratified execution: a stratum is complete when
        the fabric is quiet and all punctuation has settled.
        """
        delivered = 0
        if self.fast_path and self.observer is None and not self._dead:
            # Observer-free drain: same FIFO order and handler dispatch
            # as pop()+dispatch(), minus the per-message hook probes and
            # dead-mail checks — neither can fire on this configuration
            # (and a mid-run failure empties into the hooked loop below
            # on the next call, because ``_dead`` becomes non-empty).
            queue = self._queue
            handlers = self._handlers
            while queue:
                msg = queue.popleft()
                handler = handlers.get((msg.dst, msg.exchange))
                if handler is None:
                    raise ExecutionError(
                        f"no handler for exchange {msg.exchange!r} on "
                        f"node {msg.dst}"
                    )
                handler(msg)
                delivered += 1
            return delivered
        while True:
            msg = self.pop()
            if msg is None:
                return delivered
            self.dispatch(msg)
            delivered += 1
