"""Simulated batched network transport (Section 4.1).

"Communication is achieved via TCP with destinations chosen by partitions:
there is no abstraction of a distributed filesystem, and query processing
passes batched messages."
"""

from repro.net.network import Message, SimulatedNetwork

__all__ = ["Message", "SimulatedNetwork"]
