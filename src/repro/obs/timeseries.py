"""Live telemetry: time-series sampling of a running fixpoint.

PR 2's registry records what a query did *after* it finishes; this module
watches it *while it runs*.  A :class:`TelemetrySampler` is attached to an
:class:`~repro.obs.context.ObsContext` (on by default) and is driven by
the runtime driver at every stratum boundary — the only points where the
simulated clock advances, since strata are barriers.  Each sample
snapshots the engine's moving parts into ring-bounded ``telemetry.*``
series in the metrics registry:

* ``telemetry.stratum.*`` — Δ-set cardinality decay, per-stratum simulated
  seconds, bytes shuffled, mutable-set growth, tuples processed;
* ``telemetry.node.n<K>.stratum_seconds`` — per-node simulated wall time,
  the skew view the paper's iterative cost estimation consumes;
* ``telemetry.net.*`` — cumulative exchange traffic plus the fabric's
  peak in-flight message depth per stratum (queue pressure);
* ``telemetry.memo.hit_rate`` — aggregate memo-cache hit rate over time;
* ``telemetry.clock.*`` — the same cardinalities resampled on a fixed
  *simulated-time* grid (every ``interval`` simulated seconds), so runs
  with different stratum counts line up on one time axis.

Sampling is charge-neutral by construction: the sampler only reads values
the engine already computed and writes to its own instruments, so
``QueryMetrics.fingerprint`` is bit-identical with sampling on or off
(pinned by ``tests/test_telemetry_equivalence.py``).

All series are rings (default 256 points) and the simulated-clock
resampler emits at most ``max_ticks_per_sample`` ticks per stratum
(counting the rest in ``ticks_dropped``), so a pathological stratum that
advances the clock by hours cannot flood the registry.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.registry import MetricsRegistry

#: Default simulated seconds between clock-grid samples.
DEFAULT_INTERVAL = 0.25

#: Default ring capacity for every ``telemetry.*`` series.
DEFAULT_CAPACITY = 256

#: Upper bound on clock-grid ticks emitted for one stratum.
MAX_TICKS_PER_SAMPLE = 64


class TelemetrySampler:
    """Samples engine state into bounded ``telemetry.*`` time series."""

    def __init__(self, registry: MetricsRegistry,
                 interval: float = DEFAULT_INTERVAL,
                 capacity: int = DEFAULT_CAPACITY,
                 max_ticks_per_sample: int = MAX_TICKS_PER_SAMPLE):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        self.registry = registry
        self.interval = interval
        self.capacity = capacity
        self.max_ticks_per_sample = max_ticks_per_sample
        self.samples = 0
        self.ticks = 0
        self.ticks_dropped = 0
        self.sim_seconds = 0.0        # cumulative simulated clock
        self._next_tick = interval

    # ------------------------------------------------------------------
    def _series(self, name: str):
        return self.registry.series(name, capacity=self.capacity)

    def sample_stratum(self, obs, stratum: int, seconds: float,
                       bytes_sent: int, delta_count: int, mutable_size: int,
                       tuples_processed: int,
                       node_seconds: Optional[Dict[int, float]] = None
                       ) -> None:
        """One sample at a stratum boundary.

        ``obs`` is the owning :class:`~repro.obs.context.ObsContext`; the
        sampler reads its exchange tallies, memo-capable operators, and
        in-flight message peak — all values the context already tracks.
        """
        self.samples += 1
        self.sim_seconds += seconds
        ser = self._series
        ser("telemetry.stratum.seconds").append(stratum, seconds)
        ser("telemetry.stratum.delta_count").append(stratum, delta_count)
        ser("telemetry.stratum.mutable_size").append(stratum, mutable_size)
        ser("telemetry.stratum.bytes_sent").append(stratum, bytes_sent)
        ser("telemetry.stratum.tuples").append(stratum, tuples_processed)
        self.registry.histogram("telemetry.stratum.seconds_hist").record(
            seconds)

        if node_seconds:
            for node in sorted(node_seconds):
                ser(f"telemetry.node.n{node}.stratum_seconds").append(
                    stratum, node_seconds[node])

        # Fabric pressure: cumulative wire traffic and the stratum's peak
        # in-flight (sent, not yet delivered) message count.
        msgs = nbytes = deltas = 0
        for m, b, d in obs._exchange_stats.values():
            msgs += m
            nbytes += b
            deltas += d
        ser("telemetry.net.messages_total").append(stratum, msgs)
        ser("telemetry.net.bytes_total").append(stratum, nbytes)
        ser("telemetry.net.deltas_total").append(stratum, deltas)
        ser("telemetry.net.inflight_peak").append(
            stratum, obs.take_inflight_peak())

        # Memo effectiveness so far (cumulative hit rate at this boundary).
        hits = misses = 0
        for op, _stats in obs._ops:
            op_hits = getattr(op, "memo_hits", None)
            if op_hits is not None:
                hits += op_hits
                misses += op.memo_misses
        if hits or misses:
            ser("telemetry.memo.hit_rate").append(
                stratum, hits / (hits + misses))

        # Simulated-clock grid: emit one sample per interval boundary the
        # stratum's seconds advanced the clock across.
        emitted = 0
        while self.sim_seconds >= self._next_tick:
            if emitted >= self.max_ticks_per_sample:
                skipped = int((self.sim_seconds - self._next_tick)
                              / self.interval) + 1
                self.ticks_dropped += skipped
                self._next_tick += skipped * self.interval
                break
            tick = self.ticks
            ser("telemetry.clock.delta_count").append(tick, delta_count)
            ser("telemetry.clock.mutable_size").append(tick, mutable_size)
            ser("telemetry.clock.stratum").append(tick, stratum)
            self.ticks += 1
            emitted += 1
            self._next_tick += self.interval

        # Sampler health, for the exposition endpoints.
        reg = self.registry
        reg.counter("telemetry.sampler.samples").value = self.samples
        reg.counter("telemetry.sampler.ticks").value = self.ticks
        reg.counter("telemetry.sampler.ticks_dropped").value = (
            self.ticks_dropped)
        reg.gauge("telemetry.sampler.sim_seconds").set(self.sim_seconds)
