"""Structured event tracing for the delta engine.

A :class:`Tracer` emits :class:`TraceEvent` records to pluggable sinks.
Event categories mirror the engine's moving parts:

* ``operator`` — one record per ``receive``/``push_batch`` call, carrying
  the operator id, input port, delta counts by annotation kind, and the
  call's wall-clock duration;
* ``exchange`` — one record per network send/delivery with exchange id,
  endpoints, delta count and wire bytes;
* ``stratum`` — begin/end of each fixpoint stratum with its simulated
  seconds, Δ-set size and bytes shuffled;
* ``checkpoint`` — Δ-set replication writes and recovery restores.

Timestamps are wall-clock seconds from the tracer's epoch
(``time.perf_counter`` based); simulated time never appears in ``ts`` —
it travels in ``args`` so the two clocks cannot be confused.

The Chrome trace-event export (:func:`chrome_trace`) renders the same
records as ``{"traceEvents": [...]}`` JSON that loads directly in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``, one process row per
simulated node.
"""

from __future__ import annotations

import json
import re
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

#: JSON-lines schema: keys every serialized event must carry.
REQUIRED_KEYS = ("name", "cat", "ph", "ts", "node")


@dataclass(slots=True)
class TraceEvent:
    """One structured record.

    ``ph`` follows the Chrome trace-event phase vocabulary: ``"X"`` for a
    complete span (with ``dur``), ``"i"`` for an instant event.
    """

    name: str
    cat: str
    ph: str
    ts: float
    node: int
    dur: float = 0.0
    stratum: Optional[int] = None
    args: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {
            "name": self.name, "cat": self.cat, "ph": self.ph,
            "ts": self.ts, "node": self.node,
        }
        if self.ph == "X":
            d["dur"] = self.dur
        if self.stratum is not None:
            d["stratum"] = self.stratum
        if self.args:
            d["args"] = self.args
        return d


class TraceSink:
    """Receives events; subclasses override :meth:`emit`."""

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release any underlying resource (idempotent)."""


class RingBufferSink(TraceSink):
    """Keeps the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: Optional[int] = None):
        self.buffer: deque = deque(maxlen=capacity)
        self.dropped = 0

    def emit(self, event: TraceEvent) -> None:
        if (self.buffer.maxlen is not None
                and len(self.buffer) == self.buffer.maxlen):
            self.dropped += 1
        self.buffer.append(event)

    def events(self) -> List[TraceEvent]:
        return list(self.buffer)


class JsonlSink(TraceSink):
    """Streams each event as one JSON object per line."""

    def __init__(self, path_or_file):
        if hasattr(path_or_file, "write"):
            self._fh = path_or_file
            self._owns = False
        else:
            self._fh = open(path_or_file, "w")
            self._owns = True

    def emit(self, event: TraceEvent) -> None:
        self._fh.write(json.dumps(event.to_dict(), sort_keys=True,
                                  default=str))
        self._fh.write("\n")

    def flush(self) -> None:
        if not getattr(self._fh, "closed", False):
            self._fh.flush()

    def close(self) -> None:
        """Flush buffered lines (idempotent) so error-path dumps — flight
        bundles, ``--trace`` files on a crashed run — are never truncated;
        borrowed file objects are flushed but left open."""
        if getattr(self._fh, "closed", False):
            return
        self._fh.flush()
        if self._owns:
            self._fh.close()


class Tracer:
    """Front-end the instrumentation layer writes through.

    ``enabled=False`` turns every emit into a no-op; the engine goes one
    step further and never installs instrumentation hooks at all unless an
    observability context is attached (see :mod:`repro.obs.context`), so a
    run without one pays zero tracing overhead.
    """

    def __init__(self, sinks: Iterable[TraceSink] = (), enabled: bool = True,
                 clock=time.perf_counter):
        self.sinks: List[TraceSink] = list(sinks)
        self.enabled = enabled
        self.closed = False
        self._clock = clock
        self._epoch = clock()

    def now(self) -> float:
        """Seconds since the tracer's epoch."""
        return self._clock() - self._epoch

    def emit(self, event: TraceEvent) -> None:
        if not self.enabled:
            return
        for sink in self.sinks:
            sink.emit(event)

    def instant(self, name: str, cat: str, node: int,
                stratum: Optional[int] = None, **args) -> None:
        if not self.enabled:
            return
        self.emit(TraceEvent(name, cat, "i", self.now(), node,
                             stratum=stratum, args=args))

    def complete(self, name: str, cat: str, node: int, ts: float, dur: float,
                 stratum: Optional[int] = None, **args) -> None:
        if not self.enabled:
            return
        self.emit(TraceEvent(name, cat, "X", ts, node, dur=dur,
                             stratum=stratum, args=args))

    def events(self) -> List[TraceEvent]:
        """Events from the first ring-buffer sink (convenience)."""
        for sink in self.sinks:
            if isinstance(sink, RingBufferSink):
                return sink.events()
        return []

    def close(self) -> None:
        """Close every sink exactly once; later calls are no-ops and later
        emits are dropped (the tracer is disabled on close)."""
        if self.closed:
            return
        self.closed = True
        self.enabled = False
        for sink in self.sinks:
            sink.close()


def chrome_trace(events: Iterable[TraceEvent],
                 process_name: str = "rex-node") -> Dict[str, Any]:
    """Render events as a Chrome trace-event / Perfetto JSON object.

    Each simulated node becomes one process (pid = node id); the requestor
    (node -1) is mapped to its own row.  Timestamps are converted from
    seconds to the format's microseconds.
    """
    trace_events: List[Dict[str, Any]] = []
    nodes_seen = set()
    for ev in events:
        pid = ev.node
        if pid not in nodes_seen:
            nodes_seen.add(pid)
            trace_events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": f"{process_name} {pid}" if pid >= 0
                         else f"{process_name} requestor"},
            })
        record: Dict[str, Any] = {
            "name": ev.name, "cat": ev.cat, "ph": ev.ph,
            "ts": ev.ts * 1e6, "pid": pid, "tid": 0,
        }
        if ev.ph == "X":
            record["dur"] = ev.dur * 1e6
        args = dict(ev.args)
        if ev.stratum is not None:
            args["stratum"] = ev.stratum
        if args:
            record["args"] = args
        if ev.ph == "i":
            record["s"] = "t"  # instant scope: thread
        trace_events.append(record)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def validate_jsonl(lines: Iterable[str]) -> int:
    """Validate a JSON-lines trace stream; returns the event count.

    Raises ``ValueError`` on the first malformed line (bad JSON, missing
    required keys, or a complete span without a duration).
    """
    count = 0
    for i, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {i}: invalid JSON: {exc}") from None
        for key in REQUIRED_KEYS:
            if key not in record:
                raise ValueError(f"line {i}: missing key {key!r}")
        if record["ph"] not in ("X", "i", "M"):
            raise ValueError(f"line {i}: unknown phase {record['ph']!r}")
        if record["ph"] == "X" and "dur" not in record:
            raise ValueError(f"line {i}: complete event without dur")
        count += 1
    return count


#: Exchange ids carry a per-attempt uniquifier (``x0.a3``) so restarted
#: queries never collide with stale handlers; the *logical* channel is the
#: part before ``.a<N>``.  Canonicalizing it keeps fingerprints comparable
#: across runs in one process.
_ATTEMPT_SUFFIX = re.compile(r"\.a\d+\b")


def _canon(name: Any) -> Any:
    return _ATTEMPT_SUFFIX.sub("", name) if isinstance(name, str) else name


def delta_flow_fingerprint(events: Iterable[TraceEvent]) -> tuple:
    """A canonical digest of *what flowed where*, invariant to batching.

    Batch and per-tuple execution produce different numbers of operator
    events (one per batch vs one per delta) but move the same multiset of
    deltas through the same operators in the same strata.  The fingerprint
    therefore aggregates: per (stratum, node, operator, annotation kind)
    input delta counts, per (stratum, exchange) wire bytes and delta
    counts, and the ordered stratum boundary sequence.  Operator and
    exchange names are canonicalized (the per-attempt ``.a<N>`` exchange
    uniquifier is stripped).  Two runs of the same query in different
    execution modes must fingerprint identically.
    """
    op_counts: Dict[tuple, int] = {}
    exchange_counts: Dict[tuple, int] = {}
    strata: List[tuple] = []
    for ev in events:
        if ev.cat == "operator":
            kinds = ev.args.get("kinds") or {}
            for kind, n in kinds.items():
                key = (ev.stratum, ev.node,
                       _canon(ev.args.get("op", ev.name)), kind)
                op_counts[key] = op_counts.get(key, 0) + n
        elif ev.cat == "exchange" and ev.name == "send":
            key = (ev.stratum, _canon(ev.args.get("exchange")))
            exchange_counts[key] = (exchange_counts.get(key, 0)
                                    + ev.args.get("deltas", 0))
        elif ev.cat == "stratum" and ev.name == "stratum.end":
            strata.append((ev.stratum, ev.args.get("delta_count"),
                           ev.args.get("bytes_sent")))
    return (tuple(sorted(op_counts.items())),
            tuple(sorted(exchange_counts.items())),
            tuple(strata))
