"""EXPLAIN ANALYZE: post-run per-operator cost table and stratum timeline.

The table is denominated in *simulated resource-seconds* — the CPU, disk
and network time each operator charged against its worker while its frame
was on top of the attribution stack (see :mod:`repro.obs.context`).  The
per-stratum timeline is denominated in simulated *wall* time — the
slowest node's overlap-combined resource vector per stratum, exactly what
:class:`~repro.cluster.metrics.QueryMetrics` records.  The two views are
intentionally different units: resource-seconds explain *where work went*,
wall seconds explain *what the query cost*; control-plane constants
(query startup, stratum barriers) appear as explicit rows so nothing is
silently unaccounted.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.obs.context import ObsContext, OperatorStats

_KIND_COLUMNS = ("+", "-", "->", "δ")


class _Agg:
    __slots__ = ("op_id", "nodes", "calls", "tuples_in", "tuples_out",
                 "sim_seconds", "wall_seconds", "kinds")

    def __init__(self, op_id: str):
        self.op_id = op_id
        self.nodes = 0
        self.calls = 0
        self.tuples_in = 0
        self.tuples_out = 0
        self.sim_seconds = 0.0
        self.wall_seconds = 0.0
        self.kinds: Dict[str, int] = {}


def _aggregate(stats: List[OperatorStats],
               per_node: bool) -> List[_Agg]:
    """Group per-node operator stats; ``op_id`` aligns instances of the
    same plan position across workers (plans are instantiated in the same
    order on every node)."""
    groups: Dict[str, _Agg] = {}
    sim_parts: Dict[str, List[float]] = {}
    wall_parts: Dict[str, List[float]] = {}
    for s in stats:
        key = f"{s.op_id}@n{s.node}" if per_node else s.op_id
        agg = groups.get(key)
        if agg is None:
            agg = groups[key] = _Agg(key)
            sim_parts[key] = []
            wall_parts[key] = []
        agg.nodes += 1
        agg.calls += s.calls
        agg.tuples_in += s.tuples_in
        agg.tuples_out += s.tuples_out
        sim_parts[key].append(s.sim_seconds)
        wall_parts[key].append(s.wall_seconds)
        for sym, n in s.kinds.items():
            agg.kinds[sym] = agg.kinds.get(sym, 0) + n
    # Combine float addends order-independently so the table is identical
    # regardless of the stats iteration order (bit-identical metrics
    # contract; see repro.cluster.cluster._tally_total).
    for key, agg in groups.items():
        agg.sim_seconds = math.fsum(sorted(sim_parts[key]))
        agg.wall_seconds = math.fsum(sorted(wall_parts[key]))
    return sorted(groups.values(), key=lambda a: -a.sim_seconds)


def attribution_coverage(obs: ObsContext) -> float:
    """Fraction of all charged simulated resource-seconds attributed to a
    concrete operator (the acceptance bar is >= 0.95)."""
    attributed, unattributed = obs.attribution()
    total = attributed + unattributed
    return attributed / total if total > 0 else 1.0


def _fmt_seconds(s: float) -> str:
    return f"{s:.6f}" if s < 10 else f"{s:.3f}"


def explain_analyze(obs: ObsContext, metrics=None, per_node: bool = False,
                    top: Optional[int] = None,
                    diagnostics=None, properties=None,
                    lineage=None) -> str:
    """Render the post-run report as a plain-text table pair.

    ``diagnostics`` is an optional
    :class:`~repro.analysis.diagnostics.DiagnosticReport` from the static
    analyzer; when given (and non-empty) its findings are appended so the
    cost table and the plan's static findings read as one report.
    ``properties`` is an optional inferred-properties listing from the
    abstract interpretation (``repro.analysis.absint.properties_report``):
    per-node delta polarity, monotonicity, and dead-delta facts, rendered
    as their own column block after the cost table.
    ``lineage`` is an optional per-edge live-column listing from the
    column-lineage analysis (``repro.analysis.lineage.lineage_report``),
    rendered the same way: which output positions each operator's
    consumers actually read, and what each node's own callables read.
    """
    rows = _aggregate(obs.operator_stats(), per_node)
    attributed, unattributed = obs.attribution()
    total_charged = attributed + unattributed
    lines: List[str] = []
    lines.append("EXPLAIN ANALYZE — per-operator simulated cost "
                 "(resource-seconds)")

    headers = ["operator", "nodes", "calls", "tuples_in", "tuples_out",
               "Δ+", "Δ-", "Δ->", "Δδ", "sim_s", "sim_%", "wall_ms"]
    table: List[List[str]] = []
    shown = rows if top is None else rows[:top]
    for agg in shown:
        share = (agg.sim_seconds / total_charged * 100.0
                 if total_charged > 0 else 0.0)
        table.append([
            agg.op_id, str(agg.nodes), str(agg.calls),
            str(agg.tuples_in), str(agg.tuples_out),
            *(str(agg.kinds.get(sym, 0)) for sym in _KIND_COLUMNS),
            _fmt_seconds(agg.sim_seconds), f"{share:.1f}",
            f"{agg.wall_seconds * 1e3:.2f}",
        ])
    if unattributed > 0:
        share = (unattributed / total_charged * 100.0
                 if total_charged > 0 else 0.0)
        table.append(["(unattributed)", "", "", "", "", "", "", "", "",
                      _fmt_seconds(unattributed), f"{share:.1f}", ""])
    widths = [max(len(h), *(len(r[i]) for r in table)) if table else len(h)
              for i, h in enumerate(headers)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in table:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    if top is not None and len(rows) > top:
        lines.append(f"... ({len(rows) - top} more operators)")

    coverage = attribution_coverage(obs)
    lines.append("")
    lines.append(f"operator attribution: {attributed:.6f}s of "
                 f"{total_charged:.6f}s charged ({coverage * 100.0:.1f}%)")

    if metrics is not None:
        lines.append("control plane: query startup "
                     f"{metrics.startup_seconds:.4f}s"
                     + (f", recovery {metrics.recovery_seconds:.4f}s"
                        if metrics.recovery_seconds else ""))
        lines.append("")
        lines.append("per-stratum timeline (simulated wall seconds)")
        theaders = ["stratum", "sim_s", "cumulative", "Δ-set", "mutable",
                    "bytes", "tuples"]
        trows: List[List[str]] = []
        cumulative = metrics.cumulative_seconds()
        for it, cum in zip(metrics.iterations, cumulative):
            trows.append([
                str(it.stratum), f"{it.seconds:.4f}", f"{cum:.4f}",
                str(it.delta_count), str(it.mutable_size),
                str(it.bytes_sent), str(it.tuples_processed),
            ])
        twidths = [max(len(h), *(len(r[i]) for r in trows)) if trows
                   else len(h) for i, h in enumerate(theaders)]
        lines.append("  ".join(h.rjust(w)
                               for h, w in zip(theaders, twidths)))
        for r in trows:
            lines.append("  ".join(c.rjust(w) for c, w in zip(r, twidths)))
        lines.append(f"total: {metrics.total_seconds():.4f}s simulated over "
                     f"{metrics.num_iterations} strata, "
                     f"{metrics.total_bytes()} bytes shuffled, "
                     f"{metrics.total_tuples()} tuples processed")

    fusion = obs.fusion_groups()
    if fusion:
        lines.append("")
        lines.append("fusion groups (constituents keep their own cost rows "
                     "above)")
        # One line per distinct kernel shape: instances across workers are
        # the same plan position, so aggregate like the cost table does.
        by_label: Dict[str, List[Dict]] = {}
        for group in fusion:
            by_label.setdefault(group["label"], []).append(group)
        for label in sorted(by_label):
            groups = by_label[label]
            batches = sum(g["fused_batches"] for g in groups)
            lines.append(f"  {label}: {len(groups)} instance(s), "
                         f"{batches} fused batch(es)")

    memo_names = obs.registry.names("memo.")
    if memo_names:
        lines.append("")
        lines.append("memo caches (hits/misses/evictions)")
        bases = sorted({n.rsplit(".", 1)[0] for n in memo_names})
        for base in bases:
            hits = obs.registry.counter(f"{base}.hits").value
            misses = obs.registry.counter(f"{base}.misses").value
            evictions = obs.registry.counter(f"{base}.evictions").value
            total = hits + misses
            rate = hits / total * 100.0 if total else 0.0
            lines.append(f"  {base}: {hits}/{misses}/{evictions} "
                         f"({rate:.1f}% hit rate)")

    lines.extend(_telemetry_section(obs))

    sanitizer_names = obs.registry.names("sanitizer.")
    if sanitizer_names:
        checks = obs.registry.counter("sanitizer.checks").value
        violations = obs.registry.counter("sanitizer.violations").value
        overhead = obs.registry.gauge("sanitizer.overhead_seconds").value
        lines.append("")
        lines.append(f"runtime sanitizer: {checks} checks, "
                     f"{violations} violation(s), "
                     f"{overhead:.4f}s host overhead (not simulated)")

    if properties:
        lines.append("")
        lines.append("inferred properties (abstract interpretation)")
        pheaders = ["operator", "Δ polarity", "notes"]
        prows: List[List[str]] = []
        for p in properties:
            notes = []
            if "monotone" in p:
                notes.append("monotone" if p["monotone"] else "non-monotone")
            if "key_preserving" in p:
                notes.append("key-preserving" if p["key_preserving"]
                             else "key-destroying")
            if "dead_kinds" in p:
                notes.append("dead={" + ",".join(p["dead_kinds"]) + "}")
            polarity = p["polarity"] + ("" if p["exact"] else "?")
            prows.append([p["path"], polarity, " ".join(notes)])
        pwidths = [max(len(h), *(len(r[i]) for r in prows)) if prows
                   else len(h) for i, h in enumerate(pheaders)]
        lines.append("  ".join(h.ljust(w)
                               for h, w in zip(pheaders, pwidths)))
        for r in prows:
            lines.append("  ".join(c.ljust(w)
                                   for c, w in zip(r, pwidths)).rstrip())

    if lineage:
        lines.append("")
        lines.append("column lineage (live = read by downstream consumers)")
        lheaders = ["operator", "live", "reads"]
        lrows: List[List[str]] = []
        for n in lineage:
            if n["live_exact"]:
                live = "{" + ",".join(map(str, n["live"])) + "}"
            else:
                live = "all?"
            if "out_arity" in n:
                live += f"/{n['out_arity']}"
            reads = ""
            if "reads" in n:
                reads = "{" + ",".join(map(str, n["reads"])) + "}"
                if not n.get("reads_exact", False):
                    reads += "?"
            lrows.append([n["path"], live, reads])
        lwidths = [max(len(h), *(len(r[i]) for r in lrows)) if lrows
                   else len(h) for i, h in enumerate(lheaders)]
        lines.append("  ".join(h.ljust(w)
                               for h, w in zip(lheaders, lwidths)))
        for r in lrows:
            lines.append("  ".join(c.ljust(w)
                                   for c, w in zip(r, lwidths)).rstrip())

    if diagnostics is not None and len(diagnostics):
        lines.append("")
        lines.append("static analysis (repro analyze)")
        lines.append(diagnostics.format())
    return "\n".join(lines)


#: (registry series name, timeline label) pairs shown as sparklines.
_SPARK_SERIES = (
    ("telemetry.stratum.delta_count", "Δ-set"),
    ("telemetry.stratum.seconds", "sim_s"),
    ("telemetry.stratum.bytes_sent", "bytes"),
    ("telemetry.net.inflight_peak", "inflight"),
    ("telemetry.memo.hit_rate", "memo hit"),
)

_SPARK_WIDTH = 48


def _telemetry_section(obs: ObsContext) -> List[str]:
    """Per-stratum sparkline timeline from the live-telemetry series."""
    from repro.obs.export import sparkline

    picked = []
    for name, label in _SPARK_SERIES:
        series = obs.registry.get(name)
        if series is not None and series.points:
            picked.append((label, series))
    if not picked:
        return []
    lines = ["", "live telemetry (per-stratum sparklines, oldest → newest)"]
    width = max(len(label) for label, _ in picked)
    for label, series in picked:
        values = series.values()
        spark = sparkline(values, width=_SPARK_WIDTH)
        lo, hi = min(values), max(values)
        suffix = f"  [{lo:.4g} .. {hi:.4g}]"
        if series.dropped:
            suffix += f" (+{series.dropped} dropped)"
        lines.append(f"  {label.ljust(width)}  {spark}{suffix}")
    sampler = getattr(obs, "telemetry", None)
    if sampler is not None:
        lines.append(f"  sampler: {sampler.samples} sample(s), "
                     f"{sampler.ticks} clock tick(s) @ "
                     f"{sampler.interval}s simulated"
                     + (f", {sampler.ticks_dropped} tick(s) dropped"
                        if sampler.ticks_dropped else ""))
    return lines
