"""The observability context: hook installation and cost attribution.

An :class:`ObsContext` is the one object a caller attaches to a query run
(via ``ExecOptions(obs=...)``).  When present, the executor instruments

* every **operator** instance — its ``receive``/``push_batch``/
  ``on_punctuation`` (plus ``run_stratum`` for sources and
  ``handle_message`` for exchange receivers) entry points are wrapped with
  a frame that counts tuples and delta kinds, measures wall-clock
  self-time, and attributes every simulated charge landed while the frame
  is on top of the stack;
* every **worker** — its ``charge_*`` methods additionally report the
  seconds they charged to the current operator frame;
* the **network** — send/delivery of every message is counted per
  exchange and emitted as trace events.

All hooks are *instance-attribute* wrappers: a run without an ObsContext
executes the original unwrapped methods, so the disabled path costs
nothing (the zero-overhead-when-disabled requirement).  The hooks only
observe — they never charge, reorder, or suppress work — so simulated
metrics are bit-identical with observability on or off, and between batch
and per-tuple modes.

Because pushes nest (an operator's ``emit`` runs the parent's push inside
the child's frame), attribution uses a frame stack: a charge belongs to
the operator on top, and wall-clock *self*-time subtracts nested frames —
standard profiler semantics.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.deltas import DeltaOp
from repro.obs.registry import MetricsRegistry
from repro.obs.timeseries import DEFAULT_INTERVAL, TelemetrySampler
from repro.obs.trace import RingBufferSink, Tracer, TraceSink

#: DeltaOp symbol -> registry-safe label.
KIND_LABELS = {"+": "insert", "-": "delete", "->": "replace", "δ": "update"}

# Enum members bound as module locals: the hot counting loops classify
# deltas with identity compares instead of `.op.value` property accesses.
_INS = DeltaOp.INSERT
_DEL = DeltaOp.DELETE
_REP = DeltaOp.REPLACE
_UPD = DeltaOp.UPDATE

_WORKER_CHARGE_METHODS = (
    "charge_cpu", "charge_tuples", "charge_disk_bytes", "charge_disk_seek",
    "charge_net_out", "charge_net_in", "charge_state_access",
)


class OperatorStats:
    """Everything measured about one operator instance on one node."""

    __slots__ = ("op_id", "name", "node", "calls", "tuples_in", "tuples_out",
                 "sim_seconds", "wall_seconds", "kinds")

    def __init__(self, op_id: str, name: str, node: int):
        self.op_id = op_id
        self.name = name
        self.node = node
        self.calls = 0
        self.tuples_in = 0
        self.tuples_out = 0
        self.sim_seconds = 0.0     # simulated resource-seconds charged
        self.wall_seconds = 0.0    # wall-clock self-time (children excluded)
        self.kinds: Dict[str, int] = {}  # input deltas by annotation symbol

    def __repr__(self):
        return (f"OperatorStats({self.op_id}@n{self.node}: "
                f"in={self.tuples_in} sim={self.sim_seconds:.6f}s)")


class ObsContext:
    """Tracer + registry + attribution state for one (or more) query runs.

    ``trace_pushes=False`` keeps stratum/exchange/checkpoint events but
    suppresses the high-volume per-push operator events (the metrics
    registry and EXPLAIN ANALYZE attribution still work in full).
    """

    def __init__(self, tracer: Optional[Tracer] = None,
                 registry: Optional[MetricsRegistry] = None,
                 trace_pushes: bool = True, telemetry: bool = True,
                 telemetry_interval: float = DEFAULT_INTERVAL):
        self.tracer = tracer if tracer is not None else Tracer(
            sinks=[RingBufferSink()])
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace_pushes = trace_pushes
        #: Live time-series sampling (:mod:`repro.obs.timeseries`), on by
        #: default; ``telemetry=False`` keeps PR 2's post-hoc-only shape.
        self.telemetry: Optional[TelemetrySampler] = (
            TelemetrySampler(self.registry, interval=telemetry_interval)
            if telemetry else None)
        self.stratum: Optional[int] = None
        self.unattributed_seconds = 0.0
        self._clock = time.perf_counter
        self._stack: List[list] = []          # [stats, child_wall_seconds]
        self._ops: List[Tuple[object, OperatorStats]] = []
        self._op_counters: Dict[int, int] = {}
        self._workers_instrumented: set = set()
        self._exchange_stats: Dict[str, list] = {}  # [msgs, bytes, deltas]
        self._system_stats: Dict[str, OperatorStats] = {}
        # In-flight message depth (sends minus deliveries/drops) and its
        # per-stratum peak — the telemetry sampler's queue-pressure view.
        self._inflight = 0
        self._inflight_peak = 0

    # ------------------------------------------------------------------
    # Attribution frames
    # ------------------------------------------------------------------
    def _enter(self, stats: OperatorStats) -> list:
        frame = [stats, 0.0]
        self._stack.append(frame)
        return frame

    def _leave(self, frame: list, elapsed: float) -> None:
        self._stack.pop()
        frame[0].wall_seconds += elapsed - frame[1]
        if self._stack:
            self._stack[-1][1] += elapsed

    def record_seconds(self, seconds: float) -> None:
        """Attribute simulated seconds to the operator currently on top."""
        if self._stack:
            self._stack[-1][0].sim_seconds += seconds
        else:
            self.unattributed_seconds += seconds

    def attribution(self) -> Tuple[float, float]:
        """(attributed, unattributed) simulated resource-seconds."""
        return (sum(s.sim_seconds for _, s in self._ops),
                self.unattributed_seconds)

    @contextmanager
    def system_frame(self, name: str) -> Iterator[None]:
        """Attribute charges made inside the block to a synthetic system
        activity (e.g. ``(checkpoint)``, ``(recovery)``) rather than an
        operator — control-plane work shows up named in the cost table
        instead of drowning in the unattributed bucket."""
        stats = self._system_stats.get(name)
        if stats is None:
            stats = OperatorStats(name, name, -1)
            self._system_stats[name] = stats
            self._ops.append((None, stats))
        stats.calls += 1
        frame = self._enter(stats)
        t0 = self._clock()
        try:
            yield
        finally:
            self._leave(frame, self._clock() - t0)

    def operator_stats(self) -> List[OperatorStats]:
        return [s for _, s in self._ops]

    def fusion_groups(self) -> List[Dict]:
        """Fused kernels seen by this context: one entry per instrumented
        :class:`~repro.operators.fused.FusedKernel` instance, with its
        constituent operator names (data-flow order) and the number of
        batches that entered the kernel."""
        groups = []
        for op, stats in self._ops:
            constituents = getattr(op, "constituents", None)
            if constituents is None:
                continue
            groups.append({
                "op_id": stats.op_id,
                "node": stats.node,
                "label": stats.name,
                "constituents": [c.name for c in constituents],
                "fused_batches": getattr(op, "fused_batches", 0),
                "block_batches": getattr(op, "block_batches", 0),
            })
        return groups

    # ------------------------------------------------------------------
    # Operator instrumentation
    # ------------------------------------------------------------------
    def instrument_operator(self, op, node: int) -> None:
        if getattr(op, "_obs_stats", None) is not None:
            return
        index = self._op_counters.get(node, 0)
        self._op_counters[node] = index + 1
        stats = OperatorStats(f"{op.name}#{index}", op.name, node)
        op._obs_stats = stats
        self._ops.append((op, stats))
        self._wrap_receive(op, stats)
        self._wrap_push_batch(op, stats)
        if getattr(type(op), "accepts_blocks", False):
            self._wrap_push_block(op, stats)
        self._wrap_frame_only(op, stats, "on_punctuation")
        if hasattr(op, "run_stratum"):
            self._wrap_run_stratum(op, stats)
        if hasattr(op, "handle_message"):
            self._wrap_handle_message(op, stats)
        self._wrap_emits(op, stats)

    def _wrap_receive(self, op, stats: OperatorStats) -> None:
        orig = op.receive
        tracer = self.tracer
        clock = self._clock

        def receive(delta, port=0):
            stats.calls += 1
            stats.tuples_in += 1
            op = delta.op
            if op is _INS:
                sym = "+"
            elif op is _UPD:
                sym = "δ"
            elif op is _REP:
                sym = "->"
            else:
                sym = "-"
            kinds = stats.kinds
            kinds[sym] = kinds.get(sym, 0) + 1
            frame = self._enter(stats)
            t0 = clock()
            try:
                orig(delta, port)
            finally:
                elapsed = clock() - t0
                self._leave(frame, elapsed)
                if tracer.enabled and self.trace_pushes:
                    tracer.complete(
                        "push", "operator", stats.node, ts=tracer.now(),
                        dur=elapsed, stratum=self.stratum, op=stats.op_id,
                        port=port, n=1, kinds={sym: 1})

        op.receive = receive

    def _wrap_push_batch(self, op, stats: OperatorStats) -> None:
        orig = op.push_batch
        tracer = self.tracer
        clock = self._clock

        # One record per batch: annotation counts in a single identity-
        # compare pass (no enum `.value` or dict ops per delta).
        def push_batch(deltas, port=0):
            n = len(deltas)
            if n == 0:
                return orig(deltas, port)
            stats.calls += 1
            stats.tuples_in += n
            n_ins = n_del = n_rep = n_upd = 0
            for d in deltas:
                kind = d.op
                if kind is _INS:
                    n_ins += 1
                elif kind is _UPD:
                    n_upd += 1
                elif kind is _REP:
                    n_rep += 1
                else:
                    n_del += 1
            kinds = stats.kinds
            if n_ins:
                kinds["+"] = kinds.get("+", 0) + n_ins
            if n_del:
                kinds["-"] = kinds.get("-", 0) + n_del
            if n_rep:
                kinds["->"] = kinds.get("->", 0) + n_rep
            if n_upd:
                kinds["δ"] = kinds.get("δ", 0) + n_upd
            frame = self._enter(stats)
            t0 = clock()
            try:
                orig(deltas, port)
            finally:
                elapsed = clock() - t0
                self._leave(frame, elapsed)
                if tracer.enabled and self.trace_pushes:
                    batch_kinds = {}
                    if n_ins:
                        batch_kinds["+"] = n_ins
                    if n_del:
                        batch_kinds["-"] = n_del
                    if n_rep:
                        batch_kinds["->"] = n_rep
                    if n_upd:
                        batch_kinds["δ"] = n_upd
                    tracer.complete(
                        "push_batch", "operator", stats.node,
                        ts=tracer.now(), dur=elapsed, stratum=self.stratum,
                        op=stats.op_id, port=port, n=n, kinds=batch_kinds)

        op.push_batch = push_batch

    def _wrap_push_block(self, op, stats: OperatorStats) -> None:
        """Instrument the columnar entry point like ``push_batch``.

        Installed only on block-capable operator classes
        (``accepts_blocks``); a block counts its entries as tuples_in and
        its kind vector as the same ``+/-/->/δ`` annotation symbols, so
        EXPLAIN ANALYZE rows read identically columnar on or off.  Block
        kernels that internally fall back to the row loop do so through
        the *class-level* ``push_batch`` precisely so this wrapper and
        the batch wrapper never both count one physical batch.
        """
        orig = op.push_block
        tracer = self.tracer
        clock = self._clock

        def push_block(block, port=0):
            n = len(block)
            if n == 0:
                return orig(block, port)
            stats.calls += 1
            stats.tuples_in += n
            batch_kinds = {}
            if block.kinds is None:
                kind = block.kind
                if kind is _INS:
                    sym = "+"
                elif kind is _UPD:
                    sym = "δ"
                elif kind is _REP:
                    sym = "->"
                else:
                    sym = "-"
                batch_kinds[sym] = n
            else:
                for kind in block.kinds:
                    if kind is _INS:
                        sym = "+"
                    elif kind is _UPD:
                        sym = "δ"
                    elif kind is _REP:
                        sym = "->"
                    else:
                        sym = "-"
                    batch_kinds[sym] = batch_kinds.get(sym, 0) + 1
            kinds = stats.kinds
            for sym, count in batch_kinds.items():
                kinds[sym] = kinds.get(sym, 0) + count
            frame = self._enter(stats)
            t0 = clock()
            try:
                orig(block, port)
            finally:
                elapsed = clock() - t0
                self._leave(frame, elapsed)
                if tracer.enabled and self.trace_pushes:
                    tracer.complete(
                        "push_block", "operator", stats.node,
                        ts=tracer.now(), dur=elapsed, stratum=self.stratum,
                        op=stats.op_id, port=port, n=n, kinds=batch_kinds)

        op.push_block = push_block

    def _wrap_frame_only(self, op, stats: OperatorStats, name: str) -> None:
        """Attribute charges made inside ``name`` (e.g. punctuation-driven
        flushes) without counting tuples or emitting per-call events."""
        orig = getattr(op, name)
        clock = self._clock

        def wrapped(*args, **kwargs):
            frame = self._enter(stats)
            t0 = clock()
            try:
                return orig(*args, **kwargs)
            finally:
                self._leave(frame, clock() - t0)

        setattr(op, name, wrapped)

    def _wrap_run_stratum(self, op, stats: OperatorStats) -> None:
        orig = op.run_stratum
        tracer = self.tracer
        clock = self._clock

        def run_stratum(stratum):
            stats.calls += 1
            frame = self._enter(stats)
            t0 = clock()
            try:
                orig(stratum)
            finally:
                elapsed = clock() - t0
                self._leave(frame, elapsed)
                if tracer.enabled:
                    tracer.complete("run_stratum", "source", stats.node,
                                    ts=tracer.now(), dur=elapsed,
                                    stratum=stratum, op=stats.op_id)

        op.run_stratum = run_stratum

    def _wrap_handle_message(self, op, stats: OperatorStats) -> None:
        orig = op.handle_message
        clock = self._clock

        def handle_message(msg):
            deltas = msg.deltas
            if deltas:
                n = len(deltas)
                stats.calls += 1
                stats.tuples_in += n
                n_ins = n_del = n_rep = n_upd = 0
                for d in deltas:
                    kind = d.op
                    if kind is _INS:
                        n_ins += 1
                    elif kind is _UPD:
                        n_upd += 1
                    elif kind is _REP:
                        n_rep += 1
                    else:
                        n_del += 1
                kinds = stats.kinds
                if n_ins:
                    kinds["+"] = kinds.get("+", 0) + n_ins
                if n_del:
                    kinds["-"] = kinds.get("-", 0) + n_del
                if n_rep:
                    kinds["->"] = kinds.get("->", 0) + n_rep
                if n_upd:
                    kinds["δ"] = kinds.get("δ", 0) + n_upd
            frame = self._enter(stats)
            t0 = clock()
            try:
                orig(msg)
            finally:
                self._leave(frame, clock() - t0)

        op.handle_message = handle_message

    def _wrap_emits(self, op, stats: OperatorStats) -> None:
        orig_emit = op.emit
        orig_emit_batch = op.emit_batch

        def emit(delta):
            stats.tuples_out += 1
            orig_emit(delta)

        def emit_batch(deltas):
            stats.tuples_out += len(deltas)
            orig_emit_batch(deltas)

        orig_emit_block = op.emit_block

        def emit_block(block):
            stats.tuples_out += len(block)
            orig_emit_block(block)

        op.emit = emit
        op.emit_batch = emit_batch
        op.emit_block = emit_block

    # ------------------------------------------------------------------
    # Worker instrumentation
    # ------------------------------------------------------------------
    def instrument_worker(self, worker) -> None:
        """Wrap every ``charge_*`` so charged seconds reach the frame stack.

        Relies on the charge methods returning the seconds they charged;
        a method returning ``None`` (e.g. a stub in tests) is observed as
        charging nothing.
        """
        if worker.id in self._workers_instrumented:
            return
        self._workers_instrumented.add(worker.id)
        record = self.record_seconds
        for name in _WORKER_CHARGE_METHODS:
            orig = getattr(worker, name)

            def wrapped(*args, _orig=orig, **kwargs):
                seconds = _orig(*args, **kwargs)
                if seconds:
                    record(seconds)
                return seconds

            setattr(worker, name, wrapped)

    # ------------------------------------------------------------------
    # Network instrumentation (installed as SimulatedNetwork.observer)
    # ------------------------------------------------------------------
    def instrument_network(self, network) -> None:
        network.observer = self

    def on_send(self, msg, nbytes: int) -> None:
        entry = self._exchange_stats.get(msg.exchange)
        if entry is None:
            entry = self._exchange_stats[msg.exchange] = [0, 0, 0]
        n_deltas = len(msg.deltas) if msg.deltas else 0
        entry[0] += 1
        entry[1] += nbytes
        entry[2] += n_deltas
        depth = self._inflight + 1
        self._inflight = depth
        if depth > self._inflight_peak:
            self._inflight_peak = depth
        if self.tracer.enabled:
            self.tracer.instant(
                "send", "exchange", msg.src, stratum=self.stratum,
                exchange=msg.exchange, dst=msg.dst, deltas=n_deltas,
                bytes=nbytes, punct=msg.punct is not None)

    def on_deliver(self, msg) -> None:
        self._inflight -= 1
        if self.tracer.enabled and self.trace_pushes:
            self.tracer.instant(
                "recv", "exchange", msg.dst, stratum=self.stratum,
                exchange=msg.exchange, src=msg.src,
                deltas=len(msg.deltas) if msg.deltas else 0,
                punct=msg.punct is not None)

    def on_drop(self, msg) -> None:
        """Mail discarded at a dead destination still left the queue."""
        self._inflight -= 1

    def take_inflight_peak(self) -> int:
        """The peak in-flight message depth since the last call (the
        telemetry sampler reads this once per stratum)."""
        peak = self._inflight_peak
        self._inflight_peak = self._inflight
        return peak

    # ------------------------------------------------------------------
    # Stratum / checkpoint lifecycle (called by the executor)
    # ------------------------------------------------------------------
    def begin_stratum(self, stratum: int) -> None:
        self.stratum = stratum
        self._stratum_t0 = self.tracer.now()
        self.tracer.instant("stratum.begin", "stratum", -1, stratum=stratum)

    def end_stratum(self, stratum: int, seconds: float, bytes_sent: int,
                    delta_count: int, mutable_size: int,
                    tuples_processed: int,
                    node_seconds: Optional[Dict[int, float]] = None) -> None:
        t0 = getattr(self, "_stratum_t0", self.tracer.now())
        self.tracer.complete(
            "stratum.end", "stratum", -1, ts=t0,
            dur=self.tracer.now() - t0, stratum=stratum,
            sim_seconds=seconds, bytes_sent=bytes_sent,
            delta_count=delta_count, mutable_size=mutable_size,
            tuples_processed=tuples_processed)
        reg = self.registry
        reg.series("stratum.seconds").append(stratum, seconds)
        reg.series("stratum.bytes_sent").append(stratum, bytes_sent)
        reg.series("stratum.delta_count").append(stratum, delta_count)
        reg.series("stratum.mutable_size").append(stratum, mutable_size)
        if self.telemetry is not None:
            self.telemetry.sample_stratum(
                self, stratum, seconds, bytes_sent, delta_count,
                mutable_size, tuples_processed, node_seconds=node_seconds)

    def record_fixpoint(self, node: int, stratum: int, delta_out: int,
                        mutable_size: int) -> None:
        """Per-worker Δ-set / mutable-set sizes over strata."""
        reg = self.registry
        reg.series(f"fixpoint.n{node}.delta_out").append(stratum, delta_out)
        reg.series(f"fixpoint.n{node}.mutable_size").append(
            stratum, mutable_size)

    def checkpoint_write(self, node: int, n_deltas: int,
                         n_replicas: int) -> None:
        self.registry.counter("checkpoint.deltas_replicated").inc(n_deltas)
        self.tracer.instant("checkpoint.write", "checkpoint", node,
                            stratum=self.stratum, deltas=n_deltas,
                            replicas=n_replicas)

    def checkpoint_restore(self, victim: int, rows_restored: int,
                           rows_reread: int) -> None:
        self.registry.counter("checkpoint.rows_restored").inc(rows_restored)
        self.tracer.instant("checkpoint.restore", "checkpoint", victim,
                            stratum=self.stratum, restored=rows_restored,
                            reread=rows_reread)

    # ------------------------------------------------------------------
    # Registry publishing
    # ------------------------------------------------------------------
    def publish(self) -> MetricsRegistry:
        """Sync per-operator stats, memo caches, and channel counters into
        the registry.  Assignment-based, so calling it repeatedly (or after
        a restart re-execution) is idempotent."""
        reg = self.registry
        for op, stats in self._ops:
            base = f"op.n{stats.node}.{stats.op_id}"
            reg.counter(f"{base}.calls").value = stats.calls
            reg.counter(f"{base}.tuples_in").value = stats.tuples_in
            reg.counter(f"{base}.tuples_out").value = stats.tuples_out
            reg.gauge(f"{base}.sim_seconds").set(stats.sim_seconds)
            reg.gauge(f"{base}.wall_seconds").set(stats.wall_seconds)
            for sym, count in stats.kinds.items():
                label = KIND_LABELS.get(sym, sym)
                reg.counter(f"{base}.deltas_in.{label}").value = count
            if hasattr(op, "memo_hits"):
                kind = ("rehash" if hasattr(op, "exchange") else "groupby")
                memo = f"memo.{kind}.n{stats.node}.{stats.op_id}"
                reg.counter(f"{memo}.hits").value = op.memo_hits
                reg.counter(f"{memo}.misses").value = op.memo_misses
                reg.counter(f"{memo}.evictions").value = op.memo_evictions
            fused_batches = getattr(op, "fused_batches", None)
            if fused_batches is not None:
                reg.counter(f"{base}.fused_batches").value = fused_batches
            block_batches = getattr(op, "block_batches", None)
            if block_batches is not None:
                reg.counter(f"{base}.block_batches").value = block_batches
            state_size = getattr(op, "state_size", None)
            if state_size is not None:
                reg.gauge(f"{base}.state_size").set(state_size())
            breakdown = getattr(op, "state_breakdown", None)
            if breakdown is not None:
                for part, value in breakdown().items():
                    reg.gauge(f"{base}.state.{part}").set(value)
        for exchange, (msgs, nbytes, deltas) in self._exchange_stats.items():
            base = f"net.exchange.{exchange}"
            reg.counter(f"{base}.messages").value = msgs
            reg.counter(f"{base}.bytes").value = nbytes
            reg.counter(f"{base}.deltas").value = deltas
        return reg

    def close(self) -> None:
        self.tracer.close()
