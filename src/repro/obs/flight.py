"""Flight recorder: always-on post-mortem capture for query runs.

A query that dies mid-fixpoint — an operator exception, a REX2xx
sanitizer trip, a determinism race — used to leave nothing behind unless
the run happened to have tracing attached.  The :class:`FlightRecorder`
fixes that: the executor keeps one per run (``ExecOptions(flight=True)``,
the default), feeding it a bounded ring of cheap breadcrumb *notes* (one
per stratum boundary, plus failure/recovery/checkpoint events).  On a
trigger it assembles a **self-contained JSON bundle**: the note ring, the
most recent trace events and the published metrics registry when an
:class:`~repro.obs.ObsContext` is attached, the triggering error or
diagnostics, and enough environment detail to read the bundle cold.

The recorder is deliberately lighter than the obs layer: it installs no
operator hooks and never touches a hot loop, so it stays on by default in
every run (including benchmarks) at well under the 5% overhead bar.

Bundles are written to the first of: an explicit ``path``, the recorder's
``directory`` (``ExecOptions.flight_dir``), or the ``REX_FLIGHT_DIR``
environment variable.  With none set the bundle is still assembled and
kept on ``recorder.last_bundle`` (and attached to the raising exception
as ``rex_flight_bundle``) — nothing is silently written to disk.

Inspect bundles with ``python -m repro.cli flight BUNDLE.json``.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
import traceback
from collections import deque
from typing import Any, Dict, List, Optional

#: Bundle schema tag; bump on incompatible layout changes.
FORMAT = "rex-flight/1"

#: Environment variable naming a default bundle directory.
ENV_DIR = "REX_FLIGHT_DIR"

#: Most recent trace events included in a bundle.
MAX_TRACE_EVENTS = 400


class FlightRecorder:
    """Bounded breadcrumb ring + bundle assembly for one query run."""

    def __init__(self, capacity: int = 512,
                 directory: Optional[str] = None,
                 clock=time.time):
        self.capacity = capacity
        self.directory = directory
        self.notes: deque = deque(maxlen=capacity)
        self.dropped = 0
        self.obs = None
        self.sanitizer = None
        self.last_bundle: Optional[Dict[str, Any]] = None
        self.last_path: Optional[str] = None
        self.dumps = 0
        self._clock = clock
        self._seq = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def attach(self, obs=None, sanitizer=None) -> None:
        """Point the recorder at the run's obs context / sanitizer so
        bundles can include their state."""
        if obs is not None:
            self.obs = obs
        if sanitizer is not None:
            self.sanitizer = sanitizer

    def note(self, kind: str, **fields) -> None:
        """Append one breadcrumb; O(1), no I/O."""
        if len(self.notes) == self.notes.maxlen:
            self.dropped += 1
        seq = self._seq
        self._seq = seq + 1
        record = {"seq": seq, "kind": kind}
        if fields:
            record.update(fields)
        self.notes.append(record)

    def on_stratum(self, stratum: int, seconds: float, bytes_sent: int,
                   delta_count: int, mutable_size: int,
                   tuples_processed: int) -> None:
        self.note("stratum", stratum=stratum, seconds=seconds,
                  bytes=bytes_sent, deltas=delta_count,
                  mutable=mutable_size, tuples=tuples_processed)

    def record_exception(self, exc: BaseException) -> None:
        self.note("exception", type=type(exc).__name__, message=str(exc))

    # ------------------------------------------------------------------
    # Bundle assembly
    # ------------------------------------------------------------------
    def bundle(self, reason: str, error: Optional[BaseException] = None,
               diagnostics=None) -> Dict[str, Any]:
        """Assemble a self-contained post-mortem dict (JSON-safe)."""
        doc: Dict[str, Any] = {
            "format": FORMAT,
            "created_unix": self._clock(),
            "reason": reason,
            "notes": list(self.notes),
            "notes_dropped": self.dropped,
            "env": {
                "python": sys.version.split()[0],
                "platform": platform.platform(),
                "pid": os.getpid(),
            },
        }
        if error is not None:
            doc["error"] = {
                "type": type(error).__name__,
                "message": str(error),
                "traceback": traceback.format_exception(
                    type(error), error, error.__traceback__),
            }
        if diagnostics is not None:
            doc["diagnostics"] = _diagnostics_json(diagnostics)
        sanitizer = self.sanitizer
        if sanitizer is not None:
            doc["sanitizer"] = {
                "level": sanitizer.level,
                "checks": sanitizer.checks,
                "violations": sanitizer.violations,
            }
            if "diagnostics" not in doc and sanitizer.report:
                doc["diagnostics"] = _diagnostics_json(sanitizer.report)
        obs = self.obs
        if obs is not None:
            try:
                obs.publish()
                doc["metrics"] = obs.registry.snapshot()
            except Exception as exc:  # a broken run must still bundle
                doc["metrics_error"] = repr(exc)
            try:
                events = obs.tracer.events()
                doc["trace_events"] = [
                    ev.to_dict() for ev in events[-MAX_TRACE_EVENTS:]]
                doc["trace_events_total"] = len(events)
            except Exception as exc:
                doc["trace_events_error"] = repr(exc)
        return doc

    def dump(self, reason: str, error: Optional[BaseException] = None,
             diagnostics=None, path: Optional[str] = None) -> Optional[str]:
        """Assemble a bundle and, if a destination resolves, write it.

        Returns the written path (``None`` when no directory/path is
        configured — the bundle is still kept on ``last_bundle``).
        """
        doc = self.bundle(reason, error=error, diagnostics=diagnostics)
        self.last_bundle = doc
        self.dumps += 1
        if path is None:
            directory = self.directory or os.environ.get(ENV_DIR)
            if directory:
                path = bundle_path(directory, reason)
        if path is not None:
            write_bundle(doc, path)
            self.last_path = path
        return path


def _diagnostics_json(report) -> Any:
    try:
        return json.loads(report.to_json())
    except Exception:
        return {"unrenderable": repr(report)}


def bundle_path(directory: str, reason: str) -> str:
    """A collision-resistant bundle filename under ``directory``."""
    os.makedirs(directory, exist_ok=True)
    stamp = int(time.time() * 1000)  # noqa: REX102 — genuine timestamp
    pid = os.getpid()
    path = os.path.join(directory, f"flight-{stamp}-{pid}-{reason}.json")
    n = 1
    while os.path.exists(path):
        path = os.path.join(directory,
                            f"flight-{stamp}-{pid}-{reason}.{n}.json")
        n += 1
    return path


def write_bundle(doc: Dict[str, Any], path: str) -> str:
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")
    return path


def load_bundle(path: str) -> Dict[str, Any]:
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("format") != FORMAT:
        raise ValueError(
            f"{path}: not a flight bundle (format="
            f"{doc.get('format')!r}, expected {FORMAT!r})")
    return doc


# ---------------------------------------------------------------------------
# Bundle inspection (repro.cli flight)
# ---------------------------------------------------------------------------

def summarize(doc: Dict[str, Any]) -> Dict[str, Any]:
    """A compact, JSON-safe digest of a bundle."""
    notes: List[dict] = doc.get("notes", [])
    by_kind: Dict[str, int] = {}
    for n in notes:
        kind = n.get("kind", "?")
        by_kind[kind] = by_kind.get(kind, 0) + 1
    strata = [n for n in notes if n.get("kind") == "stratum"]
    diagnostics = doc.get("diagnostics") or {}
    diags = diagnostics.get("diagnostics", [])
    summary: Dict[str, Any] = {
        "reason": doc.get("reason"),
        "created_unix": doc.get("created_unix"),
        "notes": len(notes),
        "notes_by_kind": by_kind,
        "strata_recorded": len(strata),
        "diagnostics": len(diags),
        "diagnostic_codes": sorted({d.get("code") for d in diags
                                    if d.get("code")}),
        "metrics": len(doc.get("metrics", {}) or {}),
        "trace_events": doc.get("trace_events_total",
                                len(doc.get("trace_events", []) or [])),
    }
    if strata:
        last = strata[-1]
        summary["last_stratum"] = last.get("stratum")
        summary["last_delta_count"] = last.get("deltas")
        summary["delta_series"] = [n.get("deltas") for n in strata]
    error = doc.get("error")
    if error:
        summary["error"] = {"type": error.get("type"),
                            "message": error.get("message")}
    sanitizer = doc.get("sanitizer")
    if sanitizer:
        summary["sanitizer"] = sanitizer
    return summary


def format_summary(doc: Dict[str, Any], events: int = 8) -> str:
    """Human-readable bundle digest for the CLI."""
    from repro.obs.export import sparkline

    s = summarize(doc)
    created = time.strftime("%Y-%m-%d %H:%M:%S",
                            time.localtime(s["created_unix"] or 0))
    lines = [f"flight bundle — reason: {s['reason']} ({created})"]
    if "error" in s:
        lines.append(f"  error: {s['error']['type']}: "
                     f"{s['error']['message']}")
    if "sanitizer" in s:
        sz = s["sanitizer"]
        lines.append(f"  sanitizer: level={sz.get('level')} "
                     f"checks={sz.get('checks')} "
                     f"violations={sz.get('violations')}")
    if s["diagnostics"]:
        codes = ", ".join(s["diagnostic_codes"]) or "?"
        lines.append(f"  diagnostics: {s['diagnostics']} ({codes})")
    kinds = ", ".join(f"{k}={v}" for k, v in sorted(
        s["notes_by_kind"].items()))
    lines.append(f"  notes: {s['notes']} ({kinds}); "
                 f"trace events: {s['trace_events']}; "
                 f"metrics: {s['metrics']}")
    if s.get("delta_series"):
        series = [v for v in s["delta_series"] if v is not None]
        lines.append(f"  Δ-set over recorded strata: {sparkline(series)} "
                     f"(last stratum {s['last_stratum']}, "
                     f"Δ={s['last_delta_count']})")
    tail = doc.get("notes", [])[-events:]
    if tail:
        lines.append(f"  last {len(tail)} note(s):")
        for n in tail:
            fields = {k: v for k, v in n.items()
                      if k not in ("seq", "kind")}
            detail = " ".join(f"{k}={v}" for k, v in fields.items())
            lines.append(f"    #{n.get('seq')} {n.get('kind')} {detail}")
    return "\n".join(lines)
