"""Metrics export: OpenMetrics text exposition, JSON dumps, sparklines.

The registry's instruments map onto the OpenMetrics / Prometheus text
format (https://openmetrics.io) as:

* :class:`~repro.obs.registry.Counter` → ``counter`` with the mandated
  ``_total`` sample suffix;
* :class:`~repro.obs.registry.Gauge` → ``gauge``;
* :class:`~repro.obs.registry.Histogram` → ``histogram`` with cumulative
  ``_bucket{le="..."}`` samples over the log2 bounds, ``le="+Inf"``,
  ``_sum`` and ``_count``;
* :class:`~repro.obs.registry.Series` → ``gauge`` samples labelled with
  their index (``{index="<stratum-or-tick>"}``), i.e. the whole ring is
  exposed, not just the last point.

Dotted registry names are sanitized to the exposition charset
(``[a-zA-Z_][a-zA-Z0-9_]*``) by mapping every illegal rune to ``_``:
``telemetry.stratum.delta_count`` → ``telemetry_stratum_delta_count``.
The text ends with the mandatory ``# EOF`` terminator, so the output of
``python -m repro.cli telemetry`` (or ``wallclock --telemetry``) can be
served to a scraper or fed to ``promtool check metrics`` unchanged.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.registry import (Counter, Gauge, Histogram, MetricsRegistry,
                                Series)

_ILLEGAL = re.compile(r"[^a-zA-Z0-9_]")

#: Unicode eighth-block ramp used by :func:`sparkline`.
SPARK_CHARS = "▁▂▃▄▅▆▇█"


def metric_name(name: str) -> str:
    """Sanitize a dotted registry name to the exposition charset."""
    sanitized = _ILLEGAL.sub("_", name)
    if not sanitized or not (sanitized[0].isalpha() or sanitized[0] == "_"):
        sanitized = "_" + sanitized
    return sanitized


def _fmt(value: Any) -> str:
    """Render a sample value; integers stay integral for readability."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def openmetrics(registry: MetricsRegistry, prefix: str = "") -> str:
    """Render instruments under ``prefix`` as OpenMetrics text."""
    lines: List[str] = []
    for name in registry.names(prefix):
        inst = registry.get(name)
        m = metric_name(name)
        if isinstance(inst, Counter):
            lines.append(f"# TYPE {m} counter")
            lines.append(f"{m}_total {_fmt(inst.value)}")
        elif isinstance(inst, Gauge):
            lines.append(f"# TYPE {m} gauge")
            lines.append(f"{m} {_fmt(inst.value)}")
        elif isinstance(inst, Histogram):
            lines.append(f"# TYPE {m} histogram")
            cumulative = 0
            for le, count in inst.bucket_bounds():
                cumulative += count
                lines.append(
                    f'{m}_bucket{{le="{_fmt(le)}"}} {cumulative}')
            lines.append(f'{m}_bucket{{le="+Inf"}} {inst.count}')
            lines.append(f"{m}_sum {_fmt(inst.total)}")
            lines.append(f"{m}_count {inst.count}")
        elif isinstance(inst, Series):
            lines.append(f"# TYPE {m} gauge")
            for index, value in inst.points:
                lines.append(f'{m}{{index="{index}"}} {_fmt(value)}')
        else:  # pragma: no cover - registry only stores the four kinds
            continue
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def registry_json(registry: MetricsRegistry, prefix: str = "") -> str:
    """The registry snapshot as pretty-printed JSON text."""
    return json.dumps(registry.snapshot(prefix), indent=2, sort_keys=True,
                      default=str)


def telemetry_document(registry: MetricsRegistry) -> Dict[str, Any]:
    """A JSON-safe document of just the live-telemetry series/instruments
    (everything under ``telemetry.``), used by ``--telemetry FILE``."""
    return {"format": "rex-telemetry/1",
            "metrics": registry.snapshot("telemetry.")}


def sparkline(values: Iterable[float], width: Optional[int] = None) -> str:
    """Render values as a unicode sparkline (``▁▂▃▄▅▆▇█``).

    With ``width`` set, long inputs are downsampled by bucket-maxing so
    spikes survive compression.  Empty input renders as ``""``.
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if width is not None and width > 0 and len(vals) > width:
        # Bucket-max downsample: ceil-partition into `width` buckets.
        out: List[float] = []
        n = len(vals)
        for b in range(width):
            lo = b * n // width
            hi = max((b + 1) * n // width, lo + 1)
            out.append(max(vals[lo:hi]))
        vals = out
    lo, hi = min(vals), max(vals)
    span = hi - lo
    if span <= 0:
        return SPARK_CHARS[0] * len(vals)
    top = len(SPARK_CHARS) - 1
    return "".join(SPARK_CHARS[int((v - lo) / span * top + 0.5)]
                   for v in vals)
