"""Observability for the delta engine: tracing, metrics, EXPLAIN ANALYZE.

Attach an :class:`ObsContext` to a run via ``ExecOptions(obs=...)``::

    from repro.obs import ObsContext, explain_analyze

    obs = ObsContext()
    result = executor.execute(plan)   # with ExecOptions(obs=obs)
    print(explain_analyze(obs, result.metrics))

See docs/observability.md for the tracer API, sink zoo, Perfetto how-to,
and the registry naming scheme.
"""

from repro.obs.context import KIND_LABELS, ObsContext, OperatorStats
from repro.obs.export import openmetrics, registry_json, sparkline
from repro.obs.flight import FlightRecorder, load_bundle
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Series,
)
from repro.obs.report import attribution_coverage, explain_analyze
from repro.obs.timeseries import TelemetrySampler
from repro.obs.trace import (
    JsonlSink,
    RingBufferSink,
    TraceEvent,
    TraceSink,
    Tracer,
    chrome_trace,
    delta_flow_fingerprint,
    validate_jsonl,
)

__all__ = [
    "ObsContext",
    "OperatorStats",
    "KIND_LABELS",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Series",
    "Tracer",
    "TraceEvent",
    "TraceSink",
    "RingBufferSink",
    "JsonlSink",
    "chrome_trace",
    "delta_flow_fingerprint",
    "validate_jsonl",
    "explain_analyze",
    "attribution_coverage",
    "TelemetrySampler",
    "FlightRecorder",
    "load_bundle",
    "openmetrics",
    "registry_json",
    "sparkline",
]
