"""Named metrics registry: counters, gauges, histograms, and series.

Every instrument is identified by a dotted lowercase path following the
naming scheme (see docs/observability.md):

``<component>.<instance>.<metric>``

* ``op.n<node>.<Operator#k>.tuples_in`` — per-operator dataflow counters;
* ``memo.rehash.<op>.hits`` / ``.misses`` / ``.evictions`` — PR 1 memo caches;
* ``net.exchange.<exchange>.bytes`` — per-channel traffic;
* ``fixpoint.n<node>.delta_out`` — Δ-set sizes over strata (a series);
* ``stratum.seconds`` — per-stratum simulated wall time (a series).

The registry is get-or-create: asking for the same name twice returns the
same instrument; asking for an existing name with a different instrument
type is an error (names are globally unique).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self):
        return self.value

    def __repr__(self):
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value) -> None:
        self.value = value

    def snapshot(self):
        return self.value

    def __repr__(self):
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """A streaming summary of observed values with fixed log2 buckets.

    The cheap count/sum/min/max summary is unchanged; additionally every
    positive value lands in the bucket whose upper bound is the smallest
    power of two at or above it (``v in (2^(e-1), 2^e]``), and non-positive
    values land in a dedicated underflow bucket.  The buckets make the
    histogram quantile-capable: ``quantile(q)`` walks the cumulative
    bucket counts and reports the matched bucket's upper bound, clamped
    into ``[min, max]`` — the standard exposition-histogram estimate,
    exact to within one power of two.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets",
                 "underflow")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[int, int] = {}  # exponent e -> count, le = 2**e
        self.underflow = 0                 # values <= 0

    def record(self, value) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value > 0:
            mantissa, e = math.frexp(value)
            if mantissa == 0.5:  # exact power of two: 2**(e-1) is its le
                e -= 1
            self.buckets[e] = self.buckets.get(e, 0) + 1
        else:
            self.underflow += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from the buckets."""
        if not self.count:
            return None
        target = q * self.count
        seen = self.underflow
        if seen >= target and self.underflow:
            return self.min
        estimate = self.max
        for e in sorted(self.buckets):
            seen += self.buckets[e]
            if seen >= target:
                estimate = float(2.0 ** e)
                break
        if self.min is not None:
            estimate = max(estimate, self.min)
        if self.max is not None:
            estimate = min(estimate, self.max)
        return estimate

    def bucket_bounds(self) -> List[Tuple[float, int]]:
        """``(le, count)`` pairs in ascending bound order (underflow at
        ``le=0.0``), cumulative-ready for OpenMetrics exposition."""
        out: List[Tuple[float, int]] = []
        if self.underflow:
            out.append((0.0, self.underflow))
        out.extend((float(2.0 ** e), self.buckets[e])
                   for e in sorted(self.buckets))
        return out

    def snapshot(self):
        return {"count": self.count, "total": self.total,
                "min": self.min, "max": self.max, "mean": self.mean,
                "p50": self.quantile(0.50), "p95": self.quantile(0.95),
                "p99": self.quantile(0.99),
                "buckets": self.bucket_bounds()}

    def __repr__(self):
        return (f"Histogram({self.name}: n={self.count} "
                f"mean={self.mean:.4g})")


class Series:
    """An ordered (index, value) time series — sizes over strata.

    With ``capacity`` set the series is a ring: it keeps the most recent
    ``capacity`` points and counts the rest in ``dropped``, so long-lived
    sessions (many queries, hundreds of strata) hold bounded memory.
    """

    __slots__ = ("name", "points", "capacity", "dropped")

    def __init__(self, name: str, capacity: Optional[int] = None):
        self.name = name
        self.points: List[Tuple[int, float]] = []
        self.capacity = capacity
        self.dropped = 0

    def append(self, index: int, value) -> None:
        points = self.points
        cap = self.capacity
        if cap is not None and len(points) >= cap:
            # O(capacity) shift; fine at stratum/sample cadence with the
            # small ring capacities telemetry uses.
            excess = len(points) - cap + 1
            del points[:excess]
            self.dropped += excess
        points.append((index, value))

    def values(self) -> List[float]:
        return [v for _, v in self.points]

    def last(self) -> Optional[float]:
        return self.points[-1][1] if self.points else None

    def snapshot(self):
        return list(self.points)

    def __repr__(self):
        return f"Series({self.name}: {len(self.points)} points)"


class MetricsRegistry:
    """Get-or-create registry of named instruments."""

    def __init__(self):
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, cls):
        inst = self._instruments.get(name)
        if inst is None:
            inst = self._instruments[name] = cls(name)
        elif type(inst) is not cls:
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, not {cls.__name__}")
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def series(self, name: str, capacity: Optional[int] = None) -> Series:
        """Get or create a series; ``capacity`` bounds it as a ring.

        The capacity applies on creation only — asking for an existing
        series returns it with whatever bound it was created with."""
        inst = self._instruments.get(name)
        if inst is None:
            inst = self._instruments[name] = Series(name, capacity=capacity)
        elif type(inst) is not Series:
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, not Series")
        return inst

    def get(self, name: str):
        """Look up an instrument without creating it (None if absent)."""
        return self._instruments.get(name)

    def reset(self) -> None:
        """Drop every instrument — reuse one registry across queries."""
        self._instruments.clear()

    def remove(self, prefix: str) -> int:
        """Drop every instrument whose name starts with ``prefix``;
        returns how many were removed."""
        doomed = [n for n in self._instruments if n.startswith(prefix)]
        for n in doomed:
            del self._instruments[n]
        return len(doomed)

    def names(self, prefix: str = "") -> List[str]:
        return sorted(n for n in self._instruments if n.startswith(prefix))

    def snapshot(self, prefix: str = "") -> Dict[str, object]:
        """A plain-data dump of every instrument under ``prefix``."""
        return {n: self._instruments[n].snapshot()
                for n in self.names(prefix)}

    def __len__(self):
        return len(self._instruments)
