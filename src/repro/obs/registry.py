"""Named metrics registry: counters, gauges, histograms, and series.

Every instrument is identified by a dotted lowercase path following the
naming scheme (see docs/observability.md):

``<component>.<instance>.<metric>``

* ``op.n<node>.<Operator#k>.tuples_in`` — per-operator dataflow counters;
* ``memo.rehash.<op>.hits`` / ``.misses`` / ``.evictions`` — PR 1 memo caches;
* ``net.exchange.<exchange>.bytes`` — per-channel traffic;
* ``fixpoint.n<node>.delta_out`` — Δ-set sizes over strata (a series);
* ``stratum.seconds`` — per-stratum simulated wall time (a series).

The registry is get-or-create: asking for the same name twice returns the
same instrument; asking for an existing name with a different instrument
type is an error (names are globally unique).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self):
        return self.value

    def __repr__(self):
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value) -> None:
        self.value = value

    def snapshot(self):
        return self.value

    def __repr__(self):
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """A streaming summary of observed values: count/sum/min/max.

    Kept deliberately light (no buckets): the report layer derives means,
    and full distributions belong in trace events, not the registry.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, value) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self):
        return {"count": self.count, "total": self.total,
                "min": self.min, "max": self.max, "mean": self.mean}

    def __repr__(self):
        return (f"Histogram({self.name}: n={self.count} "
                f"mean={self.mean:.4g})")


class Series:
    """An ordered (index, value) time series — sizes over strata."""

    __slots__ = ("name", "points")

    def __init__(self, name: str):
        self.name = name
        self.points: List[Tuple[int, float]] = []

    def append(self, index: int, value) -> None:
        self.points.append((index, value))

    def values(self) -> List[float]:
        return [v for _, v in self.points]

    def snapshot(self):
        return list(self.points)

    def __repr__(self):
        return f"Series({self.name}: {len(self.points)} points)"


class MetricsRegistry:
    """Get-or-create registry of named instruments."""

    def __init__(self):
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, cls):
        inst = self._instruments.get(name)
        if inst is None:
            inst = self._instruments[name] = cls(name)
        elif type(inst) is not cls:
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, not {cls.__name__}")
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def series(self, name: str) -> Series:
        return self._get(name, Series)

    def get(self, name: str):
        """Look up an instrument without creating it (None if absent)."""
        return self._instruments.get(name)

    def names(self, prefix: str = "") -> List[str]:
        return sorted(n for n in self._instruments if n.startswith(prefix))

    def snapshot(self, prefix: str = "") -> Dict[str, object]:
        """A plain-data dump of every instrument under ``prefix``."""
        return {n: self._instruments[n].snapshot()
                for n in self.names(prefix)}

    def __len__(self):
        return len(self._instruments)
