"""MapReduce job model and the Hadoop-style algorithm implementations.

The mapper/reducer classes here are executed both by the Hadoop simulator
(:mod:`repro.hadoop.engine`) and — via the wrapper UDFs/UDAs of
:mod:`repro.hadoop.wrap` — inside REX itself, mirroring the paper's
"directly use compiled code for Hadoop" capability (Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

Pair = Tuple[Any, Any]


class Mapper:
    """Hadoop-style mapper: ``map(key, value) -> iterable of (k2, v2)``."""

    def map(self, key, value) -> Iterable[Pair]:  # pragma: no cover
        raise NotImplementedError


class Reducer:
    """Hadoop-style reducer: ``reduce(key, values) -> iterable of (k3, v3)``.

    Combiners are Reducers whose output key/value types equal their input
    types.
    """

    def reduce(self, key, values: List[Any]) -> Iterable[Pair]:  # pragma: no cover
        raise NotImplementedError


@dataclass
class MapReduceJob:
    """One job: per-input mappers, optional combiner, one reducer.

    ``mappers`` maps input-dataset position to the Mapper applied to it
    (Hadoop's MultipleInputs); a single Mapper may be passed for one input.
    """

    name: str
    mappers: List[Mapper]
    reducer: Reducer
    combiner: Optional[Reducer] = None


# ---------------------------------------------------------------------------
# Simple aggregation (Figure 4): SELECT sum(tax), count(*) WHERE linenumber>1
# ---------------------------------------------------------------------------

class LineitemFilterMapper(Mapper):
    """Filter ``linenumber > 1`` and emit (1, (tax, 1)) partial pairs."""

    def map(self, key, value):
        linenumber, tax = value
        if linenumber > 1:
            yield (1, (tax, 1))


class SumCountReducer(Reducer):
    """Sums (tax, count) partials; usable as its own combiner."""

    def reduce(self, key, values):
        total = 0.0
        count = 0
        for tax, n in values:
            total += tax
            count += n
        yield (key, (total, count))


def simple_agg_job() -> MapReduceJob:
    return MapReduceJob("tpch-agg", [LineitemFilterMapper()],
                        SumCountReducer(), combiner=SumCountReducer())


# ---------------------------------------------------------------------------
# PageRank: two jobs per iteration over (adjacency, ranks) datasets.
# ---------------------------------------------------------------------------

class TagMapper(Mapper):
    """Identity map that tags records for a reduce-side join."""

    def __init__(self, tag: str):
        self.tag = tag

    def map(self, key, value):
        yield (key, (self.tag, value))


class PRJoinReducer(Reducer):
    """Joins adjacency with rank and distributes contributions.

    Adjacency arrives as one tagged value per out-edge; the value list for
    a key is its out-neighbour set plus (at most) one rank record.
    """

    def reduce(self, key, values):
        adj: List[int] = []
        rank = None
        for tag, payload in values:
            if tag == "A":
                if isinstance(payload, list):
                    adj.extend(payload)
                else:
                    adj.append(payload)
            else:
                rank = payload
        if rank is None or not adj:
            return
        share = rank / len(adj)
        for nbr in adj:
            yield (nbr, share)


class PRSumCombiner(Reducer):
    def reduce(self, key, values):
        yield (key, sum(values))


class PRApplyReducer(Reducer):
    """Applies the damping formula to summed contributions."""

    def reduce(self, key, values):
        yield (key, 0.15 + 0.85 * sum(values))


def pagerank_jobs() -> Tuple[MapReduceJob, MapReduceJob]:
    join = MapReduceJob("pr-join",
                        [TagMapper("A"), TagMapper("R")], PRJoinReducer())
    aggregate = MapReduceJob("pr-agg", [TagIdentityMapper()],
                             PRApplyReducer(), combiner=PRSumCombiner())
    return join, aggregate


class TagIdentityMapper(Mapper):
    def map(self, key, value):
        yield (key, value)


# ---------------------------------------------------------------------------
# Shortest path: frontier-join job + min-update job per iteration.
# ---------------------------------------------------------------------------

class SPJoinReducer(Reducer):
    """Joins adjacency with frontier distances; offers dist+1 onward."""

    def reduce(self, key, values):
        adj: List[int] = []
        dist = None
        for tag, payload in values:
            if tag == "A":
                if isinstance(payload, list):
                    adj.extend(payload)
                else:
                    adj.append(payload)
            else:
                dist = payload if dist is None else min(dist, payload)
        if dist is None:
            return
        for nbr in adj:
            yield (nbr, dist + 1)


class SPMinReducer(Reducer):
    """Merges offers with current distances; tags improvements.

    Emits ``(v, (dist, improved))`` so the driver can extract the next
    frontier (the relation-level Δᵢ the paper grants Hadoop/HaLoop).
    """

    def reduce(self, key, values):
        current = None
        best_offer = None
        for tag, payload in values:
            if tag == "D":
                current = payload
            else:
                best_offer = payload if best_offer is None else min(best_offer, payload)
        if best_offer is not None and (current is None or best_offer < current):
            yield (key, (best_offer, True))
        elif current is not None:
            yield (key, (current, False))


class SPMinCombiner(Reducer):
    """Pre-aggregates offers (min) before the shuffle."""

    def reduce(self, key, values):
        best = None
        for tag, payload in values:
            if tag == "O":
                best = payload if best is None else min(best, payload)
            else:
                yield (key, (tag, payload))
        if best is not None:
            yield (key, ("O", best))


class SPOfferMinReducer(Reducer):
    """Minimum over raw distance offers (used by the REX wrap pipeline,
    where the fixpoint supplies the old-distance comparison)."""

    def reduce(self, key, values):
        yield (key, min(values))


def sssp_jobs() -> Tuple[MapReduceJob, MapReduceJob]:
    join = MapReduceJob("sp-join",
                        [TagMapper("A"), TagMapper("F")], SPJoinReducer())
    minimize = MapReduceJob("sp-min",
                            [TagMapper("O"), TagMapper("D")], SPMinReducer(),
                            combiner=SPMinCombiner())
    return join, minimize


# ---------------------------------------------------------------------------
# K-means: one job per iteration; centroids ride the distributed cache.
# ---------------------------------------------------------------------------

class KMeansAssignMapper(Mapper):
    """Assigns each point to its nearest centroid (from the cache)."""

    def __init__(self, centroids: Dict[int, Tuple[float, float]]):
        self.centroids = centroids

    def map(self, key, value):
        x, y = value
        best_cid, best_d2 = -1, float("inf")
        for cid in sorted(self.centroids):
            cx, cy = self.centroids[cid]
            d2 = (x - cx) ** 2 + (y - cy) ** 2
            if d2 < best_d2:
                best_cid, best_d2 = cid, d2
        yield (best_cid, (x, y, 1))


class KMeansPartialCombiner(Reducer):
    def reduce(self, key, values):
        sx = sy = 0.0
        n = 0
        for x, y, c in values:
            sx += x
            sy += y
            n += c
        yield (key, (sx, sy, n))


class KMeansCentroidReducer(Reducer):
    def reduce(self, key, values):
        sx = sy = 0.0
        n = 0
        for x, y, c in values:
            sx += x
            sy += y
            n += c
        if n > 0:
            yield (key, (sx / n, sy / n))


def kmeans_job(centroids: Dict[int, Tuple[float, float]]) -> MapReduceJob:
    return MapReduceJob("kmeans", [KMeansAssignMapper(centroids)],
                        KMeansCentroidReducer(),
                        combiner=KMeansPartialCombiner())
