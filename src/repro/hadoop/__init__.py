"""Hadoop/HaLoop substrate and the REX "wrap" integration (Section 4.4)."""

from repro.hadoop.algorithms import (
    adjacency_dataset,
    hadoop_kmeans,
    hadoop_pagerank,
    hadoop_simple_agg,
    hadoop_sssp,
)
from repro.hadoop.driver import run_wrapped_jobs, wrap_job, wrap_job_chain
from repro.hadoop.engine import HadoopEngine
from repro.hadoop.jobs import (
    MapReduceJob,
    Mapper,
    Reducer,
    kmeans_job,
    pagerank_jobs,
    simple_agg_job,
    sssp_jobs,
)
from repro.hadoop.records import DFSDataset
from repro.hadoop.rex_wrap import (
    rex_wrap_pagerank,
    rex_wrap_simple_agg,
    rex_wrap_sssp,
    wrap_pagerank_plan,
    wrap_simple_agg_plan,
    wrap_sssp_plan,
)
from repro.hadoop.wrap import MapWrap, MapWrapJoinHandler, ReduceWrapAgg

__all__ = [
    "HadoopEngine",
    "wrap_job",
    "wrap_job_chain",
    "run_wrapped_jobs",
    "DFSDataset",
    "MapReduceJob",
    "Mapper",
    "Reducer",
    "simple_agg_job",
    "pagerank_jobs",
    "sssp_jobs",
    "kmeans_job",
    "adjacency_dataset",
    "hadoop_simple_agg",
    "hadoop_pagerank",
    "hadoop_sssp",
    "hadoop_kmeans",
    "MapWrap",
    "ReduceWrapAgg",
    "MapWrapJoinHandler",
    "rex_wrap_simple_agg",
    "rex_wrap_pagerank",
    "rex_wrap_sssp",
    "wrap_sssp_plan",
    "wrap_simple_agg_plan",
    "wrap_pagerank_plan",
]
