"""Iterative MapReduce drivers for the paper's algorithms.

These are the external control loops the paper criticizes: each iteration
launches fresh jobs, re-reads inputs, and re-materializes outputs.  With
``haloop=True``, loop-invariant inputs become free after the first
iteration (the paper's HaLoop lower-bound emulation); convergence tests are
never charged for either system (also per the paper's idealization).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.metrics import QueryMetrics
from repro.common.sizes import value_bytes
from repro.hadoop.engine import HadoopEngine
from repro.hadoop.jobs import (
    kmeans_job,
    pagerank_jobs,
    simple_agg_job,
    sssp_jobs,
)
from repro.hadoop.records import DFSDataset

Edge = Tuple[int, int]


def adjacency_dataset(edges: Iterable[Edge], nodes: List[int]) -> DFSDataset:
    """Edge-granularity adjacency records ``(src, dst)``.

    Per-edge records (not packed adjacency lists) match the paper\'s edge
    relation and make the immutable side\'s map/shuffle volume proportional
    to the edge count — which is exactly what HaLoop\'s reducer-input cache
    saves after the first iteration."""
    return DFSDataset.from_records(
        "adjacency", [(s, d) for s, d in sorted(edges)], nodes)


def hadoop_simple_agg(cluster: Cluster, lineitem_rows: Iterable[Tuple]
                      ) -> Tuple[Tuple[float, int], QueryMetrics]:
    """The Figure 4 query as one MapReduce job."""
    engine = HadoopEngine(cluster)
    nodes = [w.id for w in cluster.alive_workers()]
    data = DFSDataset.from_records(
        "lineitem",
        [(row[0], (row[1], row[5])) for row in lineitem_rows],
        nodes, by_key=False)
    metrics = QueryMetrics(num_nodes=len(nodes))
    out, seconds, shuffled = engine.run_job(simple_agg_job(), [data])
    it = metrics.begin_iteration(0)
    it.seconds = seconds
    it.bytes_sent = shuffled
    it.tuples_processed = data.num_records()
    total, count = out.as_dict()[1]
    metrics.result_rows = 1
    return (total, count), metrics


def hadoop_pagerank(cluster: Cluster, edges: Iterable[Edge],
                    iterations: int, haloop: bool = False
                    ) -> Tuple[Dict[int, float], QueryMetrics]:
    """PageRank as 2 jobs/iteration (reduce-side join + aggregate)."""
    engine = HadoopEngine(cluster, haloop=haloop)
    nodes = [w.id for w in cluster.alive_workers()]
    adjacency = adjacency_dataset(edges, nodes)
    vertices = [v for v, _ in adjacency.records()]
    ranks = DFSDataset.from_records(
        "ranks0", [(v, 1.0) for v in vertices], nodes)
    join_job, agg_job = pagerank_jobs()
    metrics = QueryMetrics(num_nodes=len(nodes))
    for i in range(iterations):
        free = {0} if haloop and i > 0 else set()
        previous = ranks.as_dict()
        contribs, t1, b1 = engine.run_job(join_job, [adjacency, ranks],
                                          free_inputs=free)
        ranks, t2, b2 = engine.run_job(agg_job, [contribs],
                                       output_name=f"ranks{i + 1}")
        it = metrics.begin_iteration(i)
        it.seconds = t1 + t2
        it.bytes_sent = b1 + b2
        it.tuples_processed = (adjacency.num_records()
                               + contribs.num_records()
                               + ranks.num_records())
        current = ranks.as_dict()
        it.delta_count = sum(
            1 for v, r in current.items()
            if abs(r - previous.get(v, 0.0)) > 0.01 * abs(previous.get(v, 1.0)))
        it.mutable_size = ranks.num_records()
    scores = ranks.as_dict()
    # Sources never re-derived keep their initial rank (same convention as
    # the fixpoint program and the reference oracle).
    for v in vertices:
        scores.setdefault(v, 1.0)
    metrics.result_rows = len(scores)
    return scores, metrics


def hadoop_sssp(cluster: Cluster, edges: Iterable[Edge], source: int,
                max_iterations: int = 50, haloop: bool = False,
                run_all_iterations: bool = False
                ) -> Tuple[Dict[int, float], QueryMetrics]:
    """Frontier-based SSSP, 2 jobs/iteration, relation-level Δ updates.

    Both Hadoop and HaLoop map only the frontier (the paper grants them
    this optimization for shortest path), but Hadoop re-shuffles the
    adjacency every iteration while HaLoop's reducer-input cache makes it
    free after the first.
    """
    engine = HadoopEngine(cluster, haloop=haloop)
    nodes = [w.id for w in cluster.alive_workers()]
    adjacency = adjacency_dataset(edges, nodes)
    dists = DFSDataset.from_records("dists0", [(source, 0.0)], nodes)
    frontier = dists
    join_job, min_job = sssp_jobs()
    metrics = QueryMetrics(num_nodes=len(nodes))
    for i in range(max_iterations):
        if not run_all_iterations and frontier.num_records() == 0:
            break
        free = {0} if haloop and i > 0 else set()
        offers, t1, b1 = engine.run_job(join_job, [adjacency, frontier],
                                        free_inputs=free)
        merged, t2, b2 = engine.run_job(min_job, [offers, dists],
                                        output_name=f"dists{i + 1}")
        dists = DFSDataset(
            f"dists{i + 1}",
            {n: [(k, v[0]) for k, v in merged.partition(n)]
             for n in merged.nodes()})
        frontier = DFSDataset(
            f"frontier{i + 1}",
            {n: [(k, v[0]) for k, v in merged.partition(n) if v[1]]
             for n in merged.nodes()})
        it = metrics.begin_iteration(i)
        it.seconds = t1 + t2
        it.bytes_sent = b1 + b2
        it.tuples_processed = (offers.num_records() + merged.num_records()
                               + adjacency.num_records())
        it.delta_count = frontier.num_records()
        it.mutable_size = dists.num_records()
    result = dists.as_dict()
    metrics.result_rows = len(result)
    return result, metrics


def hadoop_kmeans(cluster: Cluster,
                  points: List[Tuple[int, float, float]],
                  centroids: List[Tuple[int, float, float]],
                  max_iterations: int = 120, haloop: bool = False
                  ) -> Tuple[Dict[int, Tuple[float, float]], QueryMetrics]:
    """K-means: one job per iteration; every iteration maps all points.

    There is no immutable *reducer* input here, so HaLoop behaves like
    Hadoop (the paper makes exactly this point for K-means).
    """
    engine = HadoopEngine(cluster, haloop=haloop)
    nodes = [w.id for w in cluster.alive_workers()]
    data = DFSDataset.from_records(
        "points", [(pid, (x, y)) for pid, x, y in points], nodes,
        by_key=False)
    current = {cid: (x, y) for cid, x, y in centroids}
    metrics = QueryMetrics(num_nodes=len(nodes))
    for i in range(max_iterations):
        cache_bytes = sum(value_bytes(v) + 8 for v in current.values())
        out, seconds, shuffled = engine.run_job(
            kmeans_job(current), [data], broadcast_bytes=cache_bytes,
            output_name=f"centroids{i + 1}")
        new = out.as_dict()
        merged = dict(current)
        merged.update(new)
        it = metrics.begin_iteration(i)
        it.seconds = seconds
        it.bytes_sent = shuffled
        it.tuples_processed = data.num_records()
        moved = sum(1 for cid in merged
                    if merged[cid] != current.get(cid))
        it.delta_count = moved
        it.mutable_size = len(points)
        converged = merged == current
        current = merged
        if converged:
            break
    metrics.result_rows = len(current)
    return current, metrics
