"""Executing native Hadoop code inside REX — the "wrap" mode (Section 4.4).

"REX allows direct use of compiled code for Hadoop by utilizing specially
designed table-valued 'wrapper' functions."  The wrappers here run the very
same :class:`~repro.hadoop.jobs.Mapper` / ``Reducer`` classes the Hadoop
simulator executes, inside REX operator pipelines:

* :class:`MapWrap` — a table-valued UDF invoking a Hadoop mapper per tuple;
* :class:`ReduceWrapAgg` — a UDA buffering a key's values and invoking a
  Hadoop reducer when the stratum closes (re-aggregating from scratch each
  stratum, exactly like a fresh reduce task);
* :class:`MapWrapJoinHandler` — runs reduce-side-join logic per delta for
  recursive wrap queries.

Wrapped code pays the paper's wrap overheads: the UDC invocation cost
*without* input batching plus the text-format conversion cost
(``wrap_format_cost``).  What wrap *saves* relative to Hadoop — job
startup, the sort-based shuffle, and DFS checkpointing — falls out
naturally from running inside REX's pipelined engine, which is exactly the
comparison Figures 4 and 6 make.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.common.deltas import Delta, DeltaOp
from repro.common.errors import UDFError
from repro.hadoop.jobs import Mapper, Reducer
from repro.udf.aggregates import Aggregator, JoinDeltaHandler
from repro.udf.base import UDF


def _wrap_call_cost(cost) -> float:
    """Unbatched reflection call per record (no input batching for wrapped
    Hadoop classes).  Text-format conversion is charged only where data
    *enters* the wrapped pipeline (:class:`MapWrap`) — for recursive
    queries that conversion "is incurred only once in the beginning and in
    the end of the query" (Section 6.3)."""
    return cost.udf_call_cost + cost.cpu_tuple_cost


def _wrap_entry_cost(cost) -> float:
    """Wrap entry point: reflection + text/binary format conversion."""
    return _wrap_call_cost(cost) + cost.wrap_format_cost


class MapWrap(UDF):
    """Table-valued wrapper executing a Hadoop mapper over (key, value).

    As the pipeline's entry point it also pays the per-record text-format
    conversion the paper's wrappers perform.
    """

    table_valued = True
    per_call_cost = staticmethod(_wrap_entry_cost)

    def __init__(self, mapper: Mapper, name: Optional[str] = None):
        self.name = name or f"MapWrap({type(mapper).__name__})"
        super().__init__()
        self.mapper = mapper

    def evaluate(self, key, value):
        return [(k, v) for k, v in self.mapper.map(key, value)]


class ReduceWrapAgg(Aggregator):
    """UDA wrapper executing a Hadoop reducer (or combiner) per group.

    State is the buffered value list for the key — the reducer input cache
    of one reduce call.  ``single_output=True`` unwraps a lone output pair
    to its value (the common aggregate shape).
    """

    def __init__(self, reducer_factory: Callable[[], Reducer],
                 single_output: bool = True):
        self.name = f"ReduceWrap({reducer_factory().__class__.__name__})"
        super().__init__()
        self.reducer_factory = reducer_factory
        self.reducer = reducer_factory()
        self.single_output = single_output

    @staticmethod
    def per_delta_cost(cost) -> float:
        return _wrap_call_cost(cost)

    def init_state(self):
        return []

    def agg_state(self, state, delta: Delta, value, old_value=None):
        if delta.op is DeltaOp.INSERT:
            state.append(value)
        elif delta.op is DeltaOp.DELETE:
            try:
                state.remove(value)
            except ValueError:
                raise UDFError(
                    f"{self.name}: deletion of absent value {value!r}"
                ) from None
        elif delta.op is DeltaOp.REPLACE:
            try:
                state[state.index(old_value)] = value
            except ValueError:
                raise UDFError(
                    f"{self.name}: replacement of absent value"
                ) from None
        else:
            raise UDFError("wrapped Hadoop reducers cannot interpret δ "
                           "deltas — Hadoop code has no delta semantics")
        return state

    def agg_result(self, state):
        if not state:
            return None
        outputs = list(self.reducer.reduce(None, list(state)))
        if not outputs:
            return None
        if self.single_output and len(outputs) == 1:
            return outputs[0][1]
        return tuple(v for _, v in outputs)


class MapWrapJoinHandler(JoinDeltaHandler):
    """Recursive wrap: reduce-side-join logic run per mutable-side delta.

    The right bucket holds the key's latest mutable record; arriving deltas
    overwrite it, then the wrapped join logic (a Hadoop Reducer taking
    tagged values, e.g. :class:`~repro.hadoop.jobs.PRJoinReducer`) runs
    over the joined record and its output pairs are re-emitted as rows.
    """

    def __init__(self, logic: Reducer, left_tag: str = "A",
                 right_tag: str = "R"):
        self.name = f"MapWrapJoin({type(logic).__name__})"
        super().__init__()
        self.logic = logic
        self.left_tag = left_tag
        self.right_tag = right_tag

    @staticmethod
    def per_delta_cost(cost) -> float:
        return _wrap_call_cost(cost)

    def update(self, left_bucket, right_bucket, delta, side):
        key, payload = delta.row[0], delta.row[1]
        if right_bucket:
            right_bucket[0] = (key, payload)
        else:
            right_bucket.append((key, payload))
        adjacency = [edge[1] for edge in left_bucket]
        tagged = [(self.left_tag, adjacency), (self.right_tag, payload)]
        return [Delta(DeltaOp.INSERT, (k, v))
                for k, v in self.logic.reduce(key, tagged)]
