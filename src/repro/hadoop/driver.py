"""Generic Hadoop-driver templates for REX (Section 4.4).

"A driver program for a single MapReduce job involving a map and a reduce
class can be expressed with the following query:

    SELECT ReduceWrap('ReduceClass',
        MapWrap('MapClass', k, v).{k, v}).{k, v}
    FROM InputTable GROUP BY MapWrap('MapClass', k, v).k

Chained or branched jobs can be expressed as nested subqueries within a
compound driver query, each of which follows the same basic structure."

:func:`wrap_job` builds the REX plan equivalent of that template for *any*
:class:`~repro.hadoop.jobs.MapReduceJob`; :func:`wrap_job_chain` nests
several.  Unlike the hand-built plans in :mod:`repro.hadoop.rex_wrap`,
these are fully generic: any mapper/combiner/reducer triple runs unchanged.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.metrics import QueryMetrics
from repro.common.errors import PlanError
from repro.hadoop.jobs import MapReduceJob
from repro.hadoop.wrap import MapWrap, ReduceWrapAgg
from repro.runtime import (
    ExecOptions,
    PApply,
    PGroupBy,
    PNode,
    PRehash,
    PScan,
    PhysicalPlan,
    QueryExecutor,
)
from repro.udf.aggregates import AggregateSpec

KeyValueExtractor = Callable[[tuple], Tuple[object, object]]


def wrap_job(job: MapReduceJob, source: PNode,
             kv_extractor: Optional[KeyValueExtractor] = None) -> PNode:
    """Build the single-job driver template over ``source``.

    ``kv_extractor`` maps an input row to the mapper's ``(key, value)``
    pair; the default treats 2-column rows as (key, value) directly.
    Output rows are ``(key, reduced_value)``.
    """
    if len(job.mappers) != 1:
        raise PlanError(
            f"the driver template wraps single-input jobs; {job.name} "
            f"declares {len(job.mappers)} mappers (use the Hadoop engine "
            "or a hand-built plan for multi-input joins)")
    extract = kv_extractor or (lambda row: (row[0], row[1]))
    key = lambda r: (r[0],)
    mapped = PApply(
        udf_factory=lambda: MapWrap(job.mappers[0]),
        arg_fn=extract,
        mode="replace",
        children=(source,),
    )
    upstream: PNode = mapped
    if job.combiner is not None:
        upstream = PGroupBy(
            key_fn=key,
            specs_factory=lambda: [AggregateSpec(
                ReduceWrapAgg(lambda: job.combiner), arg=lambda r: r[1],
                output="partial")],
            reset_emissions_each_stratum=True,
            children=(mapped,),
        )
    return PGroupBy(
        key_fn=key,
        specs_factory=lambda: [AggregateSpec(
            ReduceWrapAgg(lambda: job.reducer), arg=lambda r: r[1],
            output="value")],
        reset_emissions_each_stratum=True,
        children=(PRehash.by(upstream, key),),
    )


def wrap_job_chain(jobs: Sequence[MapReduceJob], source: PNode,
                   kv_extractor: Optional[KeyValueExtractor] = None
                   ) -> PNode:
    """Chained jobs as nested subqueries: job i+1 consumes job i's output.

    Only the first job sees ``kv_extractor``; later stages consume the
    standard ``(key, value)`` rows the previous stage produced.
    """
    if not jobs:
        raise PlanError("wrap_job_chain requires at least one job")
    node = wrap_job(jobs[0], source, kv_extractor)
    for job in jobs[1:]:
        node = wrap_job(job, node)
    return node


def run_wrapped_jobs(cluster: Cluster, jobs: Sequence[MapReduceJob],
                     table: str,
                     kv_extractor: Optional[KeyValueExtractor] = None,
                     options: Optional[ExecOptions] = None
                     ) -> Tuple[List[tuple], QueryMetrics]:
    """Execute a (chain of) wrapped job(s) over a catalog table."""
    plan = PhysicalPlan(wrap_job_chain(jobs, PScan(table), kv_extractor))
    result = QueryExecutor(cluster, options).execute(plan)
    return result.rows, result.metrics
