"""The Hadoop-style MapReduce execution engine, with HaLoop emulation.

Jobs execute *really* (mappers and reducers run over real records, so
results are verifiable) on the same simulated cluster and cost model as
REX, charging the costs that define Hadoop's profile:

* per-job startup and task-wave scheduling overhead;
* disk reads of every input, spill + **sort-merge** of map output
  (``n log n`` compare cost — the shuffle sort REX avoids via hash
  grouping, Section 6.3);
* network shuffle of map output to reducers;
* DFS write of job output with ``dfs_replication``-fold redundancy (the
  checkpointing REX's pipelined execution avoids).

HaLoop is emulated exactly the way the paper does (Section 6,
"Platforms"): the techniques of Bu et al. are counted as **zero time** —
callers mark loop-invariant inputs as free after the first iteration
(reducer-input cache + recursive stages over immutable data), and
convergence tests / input-output formatting / result collection are never
charged for either system.  The numbers are therefore lower bounds, as the
paper's are.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.metrics import QueryMetrics
from repro.common.errors import ExecutionError
from repro.hadoop.jobs import MapReduceJob, Pair
from repro.hadoop.records import DFSDataset, record_bytes
from repro.storage.hashing import stable_hash


class HadoopEngine:
    """Runs MapReduce jobs on a :class:`~repro.cluster.Cluster`."""

    def __init__(self, cluster: Cluster, haloop: bool = False):
        self.cluster = cluster
        self.haloop = haloop
        self.cost = cluster.cost
        self.total_shuffle_bytes = 0
        self.jobs_run = 0

    def _nodes(self) -> List[int]:
        return [w.id for w in self.cluster.alive_workers()]

    def run_job(self, job: MapReduceJob, inputs: Sequence[DFSDataset],
                free_inputs: Optional[Set[int]] = None,
                output_name: Optional[str] = None,
                broadcast_bytes: int = 0,
                ) -> Tuple[DFSDataset, float, int]:
        """Execute one job; returns (output, wall_seconds, shuffle_bytes).

        ``free_inputs`` are input positions whose map/sort/shuffle costs are
        *not* charged (the HaLoop lower-bound emulation).
        ``broadcast_bytes`` charges a distributed-cache push to every node
        (e.g. K-means centroids).
        """
        if len(inputs) != len(job.mappers):
            raise ExecutionError(
                f"job {job.name} has {len(job.mappers)} mappers but "
                f"{len(inputs)} inputs"
            )
        free = free_inputs or set()
        nodes = self._nodes()
        # Discard any usage left over from earlier phases.
        for worker in self.cluster.alive_workers():
            worker.end_stratum()

        if broadcast_bytes:
            for node in nodes:
                self.cluster.worker(node).charge_net_in(broadcast_bytes)

        # ---- map + combine (per node) ------------------------------------
        shuffle_buffers: Dict[int, List[Tuple[Pair, bool]]] = {
            n: [] for n in nodes}
        for node in nodes:
            worker = self.cluster.worker(node)
            map_out: List[Tuple[Pair, bool]] = []  # (record, charged)
            charged_out = 0
            for idx, (mapper, dataset) in enumerate(zip(job.mappers, inputs)):
                records = dataset.partition(node)
                charged = idx not in free
                if charged and records:
                    worker.charge_disk_seek()
                    worker.charge_disk_bytes(
                        sum(record_bytes(r) for r in records))
                for key, value in records:
                    if charged:
                        worker.charge_cpu(self.cost.udf_call_cost
                                          + self.cost.cpu_tuple_cost
                                          + self.cost.hadoop_record_cost)
                    for out in mapper.map(key, value):
                        map_out.append((out, charged))
                        if charged:
                            charged_out += 1
            if job.combiner is not None:
                map_out, charged_out = self._combine(worker, job.combiner,
                                                     map_out)
            # Sort-merge and spill of (charged) map output.
            worker.charge_cpu(self.cost.sort_time(charged_out))
            worker.charge_disk_bytes(
                sum(record_bytes(r) for r, charged in map_out if charged))
            # Partition to reducers.
            for record, charged in map_out:
                dst = nodes[stable_hash(record[0]) % len(nodes)]
                shuffle_buffers[dst].append((record, charged))
                if charged and dst != node:
                    nbytes = record_bytes(record)
                    worker.charge_net_out(nbytes, messages=0)
                    self.cluster.worker(dst).charge_net_in(nbytes)
                    self.total_shuffle_bytes += nbytes

        job_shuffle = sum(
            record_bytes(r) for n in nodes
            for r, charged in shuffle_buffers[n] if charged)

        # ---- reduce (per node) -------------------------------------------
        out_partitions: Dict[int, List[Pair]] = {n: [] for n in nodes}
        for node in nodes:
            worker = self.cluster.worker(node)
            received = shuffle_buffers[node]
            charged_in = sum(1 for _, charged in received if charged)
            worker.charge_cpu(self.cost.sort_time(charged_in))
            groups: Dict[object, List[object]] = {}
            order: List[object] = []
            for (key, value), _ in received:
                if key not in groups:
                    groups[key] = []
                    order.append(key)
                groups[key].append(value)
            for key in order:
                worker.charge_cpu(self.cost.udf_call_cost)
                worker.charge_cpu((self.cost.cpu_tuple_cost
                                   + self.cost.hadoop_record_cost)
                                  * len(groups[key]))
                for out in job.reducer.reduce(key, groups[key]):
                    out_partitions[node].append(out)
            # DFS write with replication.
            out_bytes = sum(record_bytes(r) for r in out_partitions[node])
            worker.charge_disk_bytes(out_bytes)
            for _ in range(self.cost.dfs_replication - 1):
                worker.charge_net_out(out_bytes, messages=0)
                worker.charge_disk_bytes(out_bytes)

        wall = (self.cluster.end_stratum_wall_time()
                + self.cost.hadoop_job_startup
                + 2 * self.cost.hadoop_task_overhead)
        self.jobs_run += 1
        name = output_name or f"{job.name}-out"
        return DFSDataset(name, out_partitions), wall, job_shuffle

    def _combine(self, worker, combiner,
                 map_out: List[Tuple[Pair, bool]]
                 ) -> Tuple[List[Tuple[Pair, bool]], int]:
        """Run the combiner over one node's map output."""
        groups: Dict[object, List[object]] = {}
        order: List[object] = []
        any_charged: Dict[object, bool] = {}
        charged_records = 0
        for (key, value), charged in map_out:
            if charged:
                worker.charge_cpu(self.cost.hash_op_cost
                                  + self.cost.cpu_tuple_cost)
            if key not in groups:
                groups[key] = []
                order.append(key)
                any_charged[key] = False
            groups[key].append(value)
            any_charged[key] = any_charged[key] or charged
        combined: List[Tuple[Pair, bool]] = []
        for key in order:
            for out in combiner.reduce(key, groups[key]):
                combined.append((out, any_charged[key]))
                if any_charged[key]:
                    charged_records += 1
        return combined, charged_records
