"""REX plans that execute wrapped Hadoop code ("REX wrap" configuration).

These builders assemble REX physical plans around the exact mapper/reducer
classes the Hadoop simulator runs — the equivalent of the paper's driver
query template:

    SELECT ReduceWrap('ReduceClass', MapWrap('MapClass', k, v).{k, v}).{k, v}
    FROM InputTable GROUP BY MapWrap('MapClass', k, v).k
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.metrics import QueryMetrics
from repro.common.deltas import Delta, DeltaOp
from repro.hadoop.jobs import (
    LineitemFilterMapper,
    PRApplyReducer,
    PRJoinReducer,
    PRSumCombiner,
    SPJoinReducer,
    SPOfferMinReducer,
    SumCountReducer,
)
from repro.udf.aggregates import WhileDeltaHandler
from repro.hadoop.wrap import MapWrap, MapWrapJoinHandler, ReduceWrapAgg
from repro.runtime import (
    ExecOptions,
    PApply,
    PFeedback,
    PFixpoint,
    PGroupBy,
    PJoin,
    PProject,
    PRehash,
    PScan,
    PhysicalPlan,
    QueryExecutor,
)
from repro.udf.aggregates import AggregateSpec


def wrap_simple_agg_plan(table: str = "lineitem") -> PhysicalPlan:
    """Figure 4's query with the Hadoop mapper/combiner/reducer wrapped.

    Scan -> MapWrap(filter mapper) -> local ReduceWrap(combiner) ->
    rehash -> ReduceWrap(reducer).
    """
    key = lambda r: (r[0],)
    mapped = PApply(
        udf_factory=lambda: MapWrap(LineitemFilterMapper()),
        arg_fn=lambda r: (r[0], (r[1], r[5])),
        mode="replace",
        children=(PScan(table),),
    )
    combined = PGroupBy(
        key_fn=key,
        specs_factory=lambda: [AggregateSpec(
            ReduceWrapAgg(SumCountReducer), arg=lambda r: r[1],
            output="partial")],
        children=(mapped,),
    )
    final = PGroupBy(
        key_fn=key,
        specs_factory=lambda: [AggregateSpec(
            ReduceWrapAgg(SumCountReducer), arg=lambda r: r[1],
            output="sumcount")],
        children=(PRehash.by(combined, key),),
    )
    return PhysicalPlan(final)


def rex_wrap_simple_agg(cluster: Cluster, table: str = "lineitem"
                        ) -> Tuple[Tuple[float, int], QueryMetrics]:
    result = QueryExecutor(cluster).execute(wrap_simple_agg_plan(table))
    assert len(result.rows) == 1
    _, (total, count) = result.rows[0]
    return (total, count), result.metrics


def wrap_pagerank_plan(graph_table: str = "graph") -> PhysicalPlan:
    """Recursive PageRank over wrapped Hadoop classes (Section 4.4).

    The reduce-side join logic (PRJoinReducer) runs inside the REX join;
    the combiner (PRSumCombiner) pre-aggregates contributions locally; the
    final reducer (PRApplyReducer) applies the damping formula.  Like the
    no-delta configuration, every iteration re-feeds the full rank relation
    and re-aggregates from scratch — the wrapped code has no notion of
    deltas.
    """
    src_key = lambda r: (r[0],)
    join = PJoin(left_key=src_key, right_key=src_key,
                 handler_factory=lambda: MapWrapJoinHandler(PRJoinReducer()),
                 handler_side=1,
                 children=(PScan(graph_table), PFeedback()))
    combined = PGroupBy(
        key_fn=src_key,
        specs_factory=lambda: [AggregateSpec(
            ReduceWrapAgg(PRSumCombiner), arg=lambda r: r[1],
            output="partial")],
        reset_emissions_each_stratum=True,
        children=(join,),
    )
    final = PGroupBy(
        key_fn=src_key,
        specs_factory=lambda: [AggregateSpec(
            ReduceWrapAgg(PRApplyReducer), arg=lambda r: r[1],
            output="rank")],
        reset_emissions_each_stratum=True,
        children=(PRehash.by(combined, src_key),),
    )
    base = PProject.over(PScan(graph_table), lambda r: (r[0], 1.0))
    return PhysicalPlan(PFixpoint(
        key_fn=src_key,
        semantics="keyed",
        admit_unchanged=True,
        children=(base, final),
    ))


class _MonotoneMinDist2(WhileDeltaHandler):
    """Monotone-min fixpoint semantics for the wrapped SSSP pipeline
    ("ensuring proper fixpoint semantics", Section 4.4): a vertex's
    ``(v, dist)`` row is refined only by a strictly smaller distance."""

    name = "WrapMonotoneMin"

    def update(self, while_relation, delta):
        key = (delta.row[0],)
        current = while_relation.get(key)
        if current is None or delta.row[1] < current[1]:
            while_relation[key] = delta.row
            return [Delta(DeltaOp.INSERT, delta.row)]
        return []


def wrap_sssp_plan(start_table: str = "start",
                   graph_table: str = "graph") -> PhysicalPlan:
    """Recursive SSSP over wrapped Hadoop classes.

    The reduce-side join logic (SPJoinReducer) offers ``dist + 1`` along
    every out-edge of each fed-back vertex; a wrapped min-reducer picks the
    best offer per vertex; the fixpoint's monotone-min semantics supply the
    old-distance comparison that job 2's SPMinReducer performs on Hadoop.
    Like the no-delta configuration, each iteration re-feeds the entire
    distance relation.
    """
    vkey = lambda r: (r[0],)
    join = PJoin(left_key=vkey, right_key=vkey,
                 handler_factory=lambda: MapWrapJoinHandler(
                     SPJoinReducer(), right_tag="F"),
                 handler_side=1,
                 children=(PScan(graph_table), PFeedback()))
    offers_min = PGroupBy(
        key_fn=vkey,
        specs_factory=lambda: [AggregateSpec(
            ReduceWrapAgg(SPOfferMinReducer), arg=lambda r: r[1],
            output="dist")],
        reset_emissions_each_stratum=True,
        children=(PRehash.by(join, vkey),),
    )
    base = PProject.over(PScan(start_table), lambda r: (r[0], r[2]))
    return PhysicalPlan(PFixpoint(
        key_fn=vkey,
        while_handler_factory=_MonotoneMinDist2,
        children=(PRehash.by(base, vkey), offers_min),
    ))


def rex_wrap_sssp(cluster: Cluster, iterations: int,
                  start_table: str = "start", graph_table: str = "graph",
                  options: Optional[ExecOptions] = None
                  ) -> Tuple[Dict[int, float], QueryMetrics]:
    opts = options or ExecOptions()
    opts.max_strata = iterations
    opts.feedback_mode = "full"
    result = QueryExecutor(cluster, opts).execute(
        wrap_sssp_plan(start_table, graph_table))
    return {row[0]: row[1] for row in result.rows}, result.metrics


def rex_wrap_pagerank(cluster: Cluster, iterations: int,
                      graph_table: str = "graph",
                      options: Optional[ExecOptions] = None
                      ) -> Tuple[Dict[int, float], QueryMetrics]:
    opts = options or ExecOptions()
    opts.max_strata = iterations
    opts.feedback_mode = "full"
    result = QueryExecutor(cluster, opts).execute(
        wrap_pagerank_plan(graph_table))
    return {row[0]: row[1] for row in result.rows}, result.metrics
