"""DFS-style datasets: replicated, partitioned (key, value) record files.

MapReduce jobs read and write datasets resembling HDFS files: records are
``(key, value)`` pairs, partitioned across nodes, with job outputs written
back with ``dfs_replication``-fold redundancy.  Values may be arbitrary
Python objects (the simulator does not require serializability, but byte
accounting uses the same size model as the rest of the repo).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.common.sizes import value_bytes
from repro.storage.hashing import stable_hash

Record = Tuple[Any, Any]


def record_bytes(record: Record) -> int:
    key, value = record
    return 8 + value_bytes(key) + value_bytes(value)


class DFSDataset:
    """A partitioned dataset on the simulated distributed filesystem."""

    def __init__(self, name: str, partitions: Dict[int, List[Record]]):
        self.name = name
        self.partitions = partitions

    @classmethod
    def from_records(cls, name: str, records: Iterable[Record],
                     nodes: List[int], by_key: bool = True) -> "DFSDataset":
        """Distribute records across ``nodes`` (hash by key, or round-robin
        blocks when ``by_key=False`` — like HDFS block placement)."""
        partitions: Dict[int, List[Record]] = {n: [] for n in nodes}
        if by_key:
            for rec in records:
                node = nodes[stable_hash(rec[0]) % len(nodes)]
                partitions[node].append(rec)
        else:
            for i, rec in enumerate(records):
                partitions[nodes[i % len(nodes)]].append(rec)
        return cls(name, partitions)

    def partition(self, node: int) -> List[Record]:
        return self.partitions.get(node, [])

    def nodes(self) -> List[int]:
        return sorted(self.partitions)

    def records(self) -> List[Record]:
        out: List[Record] = []
        for node in sorted(self.partitions):
            out.extend(self.partitions[node])
        return out

    def as_dict(self) -> Dict[Any, Any]:
        """Collapse to {key: value}; keys must be unique."""
        return dict(self.records())

    def num_records(self) -> int:
        return sum(len(p) for p in self.partitions.values())

    def total_bytes(self) -> int:
        return sum(record_bytes(r) for p in self.partitions.values()
                   for r in p)

    def __repr__(self):
        return (f"DFSDataset({self.name}, records={self.num_records()}, "
                f"nodes={len(self.partitions)})")
