"""Figure 2: PageRank convergence behaviour under Δᵢ iteration.

(a) per-page: the iteration at which each page last changed by more than
the threshold (the paper shows a scatter of per-page convergence points);
(b) overall: the fraction of non-converged pages per iteration, steadily
decreasing.  "Although individual pages require different number of
iterations to converge ... the overall number of non-converged nodes
steadily decreases."
"""

from __future__ import annotations

from typing import Dict, List

from repro.algorithms.pagerank import PRFixpointHandler, pagerank_plan
from repro.bench.common import (
    DBPEDIA_DEGREE,
    DBPEDIA_VERTICES,
    FigureResult,
    Series,
    fresh_cluster,
    scaled_cost_model,
)
from repro.datasets import dbpedia_like
from repro.runtime import ExecOptions, QueryExecutor

PAPER_DBPEDIA_EDGES = 48_000_000


class _RecordingHandler(PRFixpointHandler):
    """PRFixpointHandler that records each page's admission strata."""

    #: Class-level sink: handler instances are per-worker, the recorder is
    #: shared for the duration of one experiment run.
    admissions: Dict[int, List[int]] = {}
    current_stratum: int = 0

    def update(self, while_relation, delta):
        out = super().update(while_relation, delta)
        if out:
            page = delta.row[0]
            type(self).admissions.setdefault(page, []).append(
                type(self).current_stratum)
        return out


def run(n_vertices: int = DBPEDIA_VERTICES, degree: float = DBPEDIA_DEGREE,
        nodes: int = 8, tol: float = 0.01, seed: int = 7) -> FigureResult:
    edges = dbpedia_like(n_vertices, avg_out_degree=degree, seed=seed)
    cm = scaled_cost_model(PAPER_DBPEDIA_EDGES / len(edges))
    cluster = fresh_cluster(nodes, cm)
    cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                         edges, "srcId")

    _RecordingHandler.admissions = {}
    _RecordingHandler.current_stratum = 0
    plan = pagerank_plan(mode="delta", tol=tol)
    plan = _with_recording_handler(plan, tol)

    def tick(stratum, executor):
        _RecordingHandler.current_stratum = stratum + 1
        return False

    opts = ExecOptions(max_strata=80, termination=tick)
    result = QueryExecutor(cluster, opts).execute(plan)

    total_pages = len(result.rows)
    iterations = result.metrics.num_iterations
    # (a) per-page: iteration of last above-threshold change.
    last_change = {page: max(strata)
                   for page, strata in _RecordingHandler.admissions.items()}
    histogram = [0] * (iterations + 1)
    for it in last_change.values():
        histogram[min(it, iterations)] += 1
    # (b) overall: pages not yet converged entering each iteration.
    non_converged = []
    remaining = total_pages
    for i in range(iterations):
        non_converged.append(100.0 * remaining / max(total_pages, 1))
        remaining -= histogram[i]
    deltas = result.metrics.delta_series()
    return FigureResult(
        figure="Figure 2",
        title="PageRank convergence: per-page histogram (a) and overall "
              "non-converged % (b)",
        series=[
            Series("pages converging at iteration",
                   [float(h) for h in histogram]),
            Series("% non-converged", non_converged),
            Series("Δi set size", [float(d) for d in deltas]),
        ],
        headline={
            "iterations": float(iterations),
            "median_page_convergence": float(_median(last_change.values())),
            "monotone_decrease": 1.0 if all(
                a >= b for a, b in zip(non_converged, non_converged[1:])
            ) else 0.0,
        },
        notes=["paper: 20-30 iterations typical; per-page convergence "
               "staggered; overall non-converged steadily decreases"],
    )


def _with_recording_handler(plan, tol):
    """Rebuild the plan with the recording fixpoint handler."""
    from repro.runtime.plan import PFixpoint, PhysicalPlan

    def rebuild(node):
        if isinstance(node, PFixpoint):
            return PFixpoint(
                key_fn=node.key_fn, semantics=node.semantics,
                while_handler_factory=lambda: _RecordingHandler(tol),
                admit_unchanged=node.admit_unchanged,
                children=tuple(rebuild(c) for c in node.children))
        if node.children:
            import dataclasses

            return dataclasses.replace(
                node, children=tuple(rebuild(c) for c in node.children))
        return node

    return PhysicalPlan(rebuild(plan.root))


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2] if ordered else 0


if __name__ == "__main__":  # pragma: no cover
    print(run().format_table())
