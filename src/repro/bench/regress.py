"""Perf-regression gate: compare a fresh wallclock run against a baseline.

The fusion benchmark (``wallclock --fusion``) records per-workload fused
wall seconds in ``BENCH_5.json``.  This gate re-measures the same
workloads now and fails (exit 1) when the engine got slower than the
recorded baseline allows::

    PYTHONPATH=src python -m repro.bench.regress --baseline BENCH_5.json --smoke

Three checks, strictest first:

1. **Fingerprint identity** (always, hard): each workload's fused and
   unfused runs must produce bit-identical simulated metrics — this is
   :func:`~repro.bench.wallclock.run_fusion_benchmark`'s own assertion
   and no tolerance ever applies to it.
2. **Simulated identity vs the baseline** (config match only, hard):
   when the baseline was recorded at the same ``smoke``/``nodes``
   configuration, every workload's ``simulated_seconds`` and ``strata``
   must equal the recorded values exactly — the cost model is
   deterministic, so any drift is a real behavior change, not noise.
3. **Wall clock**: with a config match, each workload's fused wall must
   stay within ``--tolerance`` (default 25%) of the recorded wall.
   Without one — the CI case: a ``--smoke`` run gated against the
   full-size baseline recorded on another machine — absolute walls are
   meaningless, so the gate normalizes: per-workload ratios
   ``r_w = wall_w / baseline_wall_w`` are divided by their geometric
   mean (cancelling machine speed and dataset scale) and a workload
   fails when its normalized ratio exceeds ``1 + --rel-tolerance``
   (default 50%) — i.e. one workload regressed sharply relative to the
   others.

The JSON report (``--out``) records every measurement and verdict so a
failing CI run is diagnosable from the artifact alone.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from typing import Dict, List, Optional

from repro.bench.wallclock import check_rows_identity, run_fusion_benchmark

#: Default slack for same-config absolute wall comparisons.
DEFAULT_TOLERANCE = 0.25

#: Default slack for normalized cross-config comparisons (CI noise on
#: shared runners is large; this catches order-of-magnitude regressions
#: of one workload relative to the others, not percent-level drift).
DEFAULT_REL_TOLERANCE = 0.50


def load_baseline(path: str) -> Dict:
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc.get("workloads"), dict):
        raise ValueError(f"{path}: not a wallclock benchmark payload "
                         "(no 'workloads' object)")
    return doc


def baseline_wall(entry: Dict) -> Optional[float]:
    """The comparable wall-clock number from a baseline workload entry:
    columnar (BENCH_10), rewrite (BENCH_9), absint (BENCH_8), fused
    (BENCH_5), or plain batch (BENCH_1) seconds.  BENCH_9's extra
    ``wide_reach`` workload has no counterpart in the re-measured set;
    it is held to row-set identity instead (see :func:`compare`)."""
    for key in ("columnar_wall_seconds", "rewrite_wall_seconds",
                "absint_wall_seconds", "fused_wall_seconds",
                "batch_wall_seconds"):
        if entry.get(key):
            return float(entry[key])
    return None


def compare(current: Dict, baseline: Dict,
            tolerance: float = DEFAULT_TOLERANCE,
            rel_tolerance: float = DEFAULT_REL_TOLERANCE,
            row_identity: Optional[Dict[str, Dict]] = None) -> Dict:
    """Gate ``current`` (a fresh BENCH_5-shape payload) against
    ``baseline``; returns the report dict (``report["ok"]`` is the
    verdict).  Fingerprint identity within the current run was already
    enforced by the measurement itself.

    Baseline workloads recorded with ``simulated_metrics_identical:
    false`` (e.g. BENCH_9's ``wide_reach``, where a licensed rewrite
    legitimately moves the simulated metrics) are *not* silently
    exempt: they are held to row-set identity instead.  ``row_identity``
    carries the fresh per-workload verdicts from
    :func:`repro.bench.wallclock.check_rows_identity` (``run_gate``
    measures them); a covered workload with no verdict — or a failed
    one — fails the gate.
    """
    config_match = (bool(baseline.get("smoke", False))
                    == bool(current.get("smoke", False))
                    and baseline.get("nodes") == current.get("nodes"))
    report: Dict = {
        "gate": "bench-regress",
        "baseline_benchmark": baseline.get("benchmark"),
        "config_match": config_match,
        "mode": "absolute" if config_match else "normalized",
        "tolerance": tolerance,
        "rel_tolerance": rel_tolerance,
        "workloads": {},
        "failures": [],
        "skipped": [],
    }
    fail = report["failures"].append

    ratios: Dict[str, float] = {}
    for name, entry in current["workloads"].items():
        base_entry = baseline["workloads"].get(name)
        row: Dict = {
            "wall_seconds": entry["fused_wall_seconds"],
            "simulated_seconds": entry["simulated_seconds"],
            "strata": entry["strata"],
        }
        report["workloads"][name] = row
        if base_entry is None:
            report["skipped"].append(name)
            row["verdict"] = "no-baseline"
            continue
        base_wall = baseline_wall(base_entry)
        if base_wall is None:
            report["skipped"].append(name)
            row["verdict"] = "no-baseline-wall"
            continue
        row["baseline_wall_seconds"] = base_wall
        row["ratio"] = round(entry["fused_wall_seconds"] / base_wall, 4)
        ratios[name] = entry["fused_wall_seconds"] / base_wall

        if config_match:
            # Hard simulated-identity check: same config, same seed — the
            # deterministic cost model must reproduce the baseline exactly.
            for key in ("simulated_seconds", "strata"):
                recorded = base_entry.get(key)
                if recorded is not None and recorded != entry[key]:
                    fail(f"{name}: {key} changed — baseline {recorded!r}, "
                         f"now {entry[key]!r} (simulated metrics are "
                         "deterministic; this is a behavior change, not "
                         "noise)")
                    row["verdict"] = "simulated-diverged"
            if row.get("verdict") == "simulated-diverged":
                continue
            limit = base_wall * (1.0 + tolerance)
            row["limit_seconds"] = round(limit, 4)
            if entry["fused_wall_seconds"] > limit:
                fail(f"{name}: wall {entry['fused_wall_seconds']}s exceeds "
                     f"{limit:.4f}s (baseline {base_wall}s "
                     f"+{tolerance * 100:.0f}%)")
                row["verdict"] = "slower"
            else:
                row["verdict"] = "ok"

    # Baseline-only workloads: a plain entry just has nothing to compare
    # against, but a metric-non-identical one carries a weaker contract
    # (same result set under the metric-moving pass) that must be
    # re-verified, not waved through.
    for name, base_entry in baseline["workloads"].items():
        if name in current["workloads"]:
            continue
        if base_entry.get("simulated_metrics_identical", True):
            report["skipped"].append(name)
            continue
        verdict = (row_identity or {}).get(name)
        row = {"contract": "rows-identical"}
        report["workloads"][name] = row
        if verdict is None:
            fail(f"{name}: baseline records simulated_metrics_identical="
                 "false, so row-set identity must be re-verified — no "
                 "verdict was measured (run the gate via run_gate/main, "
                 "which drives check_rows_identity)")
            row["verdict"] = "rows-identity-unverified"
        elif not verdict.get("rows_identical"):
            fail(f"{name}: result row set diverges under the rewrite pass "
                 "— the one invariant a metric-non-identical workload "
                 "must keep")
            row["verdict"] = "rows-diverged"
        else:
            row["verdict"] = "rows-identical"
            row["result_rows"] = verdict.get("result_rows")

    if not config_match and ratios:
        # Normalized gate: divide each ratio by the geomean so machine
        # speed and dataset scale cancel; flag outliers only.
        geomean = math.exp(sum(math.log(r) for r in ratios.values())
                           / len(ratios))
        report["geomean_ratio"] = round(geomean, 4)
        for name, ratio in ratios.items():
            row = report["workloads"][name]
            normalized = ratio / geomean
            row["normalized_ratio"] = round(normalized, 4)
            if normalized > 1.0 + rel_tolerance:
                fail(f"{name}: normalized ratio {normalized:.3f} exceeds "
                     f"{1.0 + rel_tolerance:.2f} — this workload regressed "
                     "relative to the others")
                row["verdict"] = "slower"
            else:
                row["verdict"] = "ok"

    report["ok"] = not report["failures"]
    return report


def run_gate(baseline_path: str, smoke: bool = False, nodes: int = 8,
             seed: int = 7, repeats: int = 1,
             tolerance: float = DEFAULT_TOLERANCE,
             rel_tolerance: float = DEFAULT_REL_TOLERANCE) -> Dict:
    """Measure now and gate against the recorded baseline."""
    baseline = load_baseline(baseline_path)
    current = run_fusion_benchmark(smoke=smoke, nodes=nodes, seed=seed,
                                   repeats=repeats, baseline_path=None)
    # Fresh row-identity verdicts for baseline workloads the fusion
    # re-measurement does not cover and fingerprints cannot gate.
    row_identity: Dict[str, Dict] = {}
    for name, entry in baseline["workloads"].items():
        if (name not in current["workloads"]
                and not entry.get("simulated_metrics_identical", True)):
            try:
                row_identity[name] = check_rows_identity(
                    name, smoke=smoke, nodes=nodes, seed=seed)
            except ValueError:
                pass  # unknown workload: compare() reports it unverified
    report = compare(current, baseline, tolerance=tolerance,
                     rel_tolerance=rel_tolerance, row_identity=row_identity)
    report["baseline_path"] = baseline_path
    report["current"] = current
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.regress",
        description="Perf-regression gate: re-measure the fusion benchmark "
                    "workloads and fail if they regressed against a "
                    "recorded BENCH_5.json baseline.")
    parser.add_argument("--baseline", default="BENCH_5.json",
                        help="baseline payload (BENCH_5 or BENCH_1 shape; "
                             "default BENCH_5.json)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny datasets (CI smoke run; a non-smoke "
                             "baseline is then gated in normalized mode)")
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=1,
                        help="timing repeats per mode (min is compared)")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="same-config wall slack as a fraction "
                             f"(default {DEFAULT_TOLERANCE})")
    parser.add_argument("--rel-tolerance", type=float,
                        default=DEFAULT_REL_TOLERANCE,
                        help="cross-config normalized-ratio slack "
                             f"(default {DEFAULT_REL_TOLERANCE})")
    parser.add_argument("--out", default=None,
                        help="write the JSON gate report to this path")
    args = parser.parse_args(argv)

    if not os.path.exists(args.baseline):
        print(f"error: baseline {args.baseline!r} not found",
              file=sys.stderr)
        return 2
    try:
        report = run_gate(args.baseline, smoke=args.smoke, nodes=args.nodes,
                          seed=args.seed, repeats=args.repeats,
                          tolerance=args.tolerance,
                          rel_tolerance=args.rel_tolerance)
    except AssertionError as exc:
        # Fingerprint divergence inside the measurement itself.
        print(f"FAIL (fingerprint): {exc}", file=sys.stderr)
        return 1

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    mode = report["mode"]
    for name, row in sorted(report["workloads"].items()):
        if "wall_seconds" not in row:
            print(f"{name}: {row.get('verdict', '?')} (row-set identity "
                  "contract)")
            continue
        detail = f"{row['wall_seconds']}s"
        if "baseline_wall_seconds" in row:
            detail += f" vs {row['baseline_wall_seconds']}s baseline"
        if "normalized_ratio" in row:
            detail += f", normalized ratio {row['normalized_ratio']}"
        print(f"{name}: {row.get('verdict', '?')} ({detail})")
    if report["failures"]:
        print(f"\nFAIL ({mode} gate):", file=sys.stderr)
        for failure in report["failures"]:
            print(f"  {failure}", file=sys.stderr)
        return 1
    skipped = f", {len(report['skipped'])} skipped" if report["skipped"] else ""
    print(f"PASS ({mode} gate, {len(report['workloads'])} workload(s)"
          f"{skipped})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
