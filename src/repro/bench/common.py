"""Shared infrastructure for the figure-reproduction experiments.

Every experiment returns a :class:`FigureResult` holding named series
(one per plotted line / table row), its parameters, and the headline
comparisons the paper reports — so benchmark tests can assert the *shape*
(who wins, by roughly what factor) and ``repro.bench.report`` can render
the paper-vs-measured record into EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.costs import CostModel

#: Default cluster size for the DBPedia-scale experiments (the paper uses
#: 28 machines; the simulator is O(total tuples), so fewer, beefier
#: simulated nodes keep wall-clock reasonable without changing ratios).
DEFAULT_NODES = 8

#: Scaled default dataset sizes (see DESIGN.md's substitution table).
DBPEDIA_VERTICES = 3000
DBPEDIA_DEGREE = 12.0
TWITTER_VERTICES = 3000
TWITTER_DEGREE = 18.0
GEO_POINTS = 3000
LINEITEM_ROWS = 20_000


@dataclass
class Series:
    """One line of a figure: a label plus y-values (x implied: iteration
    number, data size, node count, ...)."""

    label: str
    values: List[float]
    x: Optional[List[float]] = None

    def total(self) -> float:
        return sum(self.values)

    def last(self) -> float:
        return self.values[-1]


@dataclass
class FigureResult:
    """Everything one experiment produced."""

    figure: str
    title: str
    series: List[Series] = field(default_factory=list)
    headline: Dict[str, float] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def get(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"{self.figure}: no series {label!r}; have "
                       f"{[s.label for s in self.series]}")

    def format_table(self) -> str:
        """Paper-style text rendering of the figure's data."""
        lines = [f"=== {self.figure}: {self.title} ==="]
        width = max((len(s.label) for s in self.series), default=8)
        for s in self.series:
            xs = s.x or list(range(1, len(s.values) + 1))
            pts = "  ".join(f"{x:g}:{v:.3f}" for x, v in zip(xs, s.values))
            lines.append(f"  {s.label:<{width}}  {pts}")
        if self.headline:
            lines.append("  headline:")
            for k, v in sorted(self.headline.items()):
                lines.append(f"    {k} = {v:.3f}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def scaled_cost_model(data_scale: float,
                      base: Optional[CostModel] = None) -> CostModel:
    """Scale fixed (per-job / per-stratum / per-query) overheads down by
    the dataset scale factor.

    The benchmarks run the paper\'s workloads shrunk by a factor
    ``data_scale`` (e.g. 48M DBPedia edges -> 32k edges is ~1500x).  Work
    costs shrink with the data automatically, but *fixed* costs — job
    startup, stratum barriers, failure-detection timeouts — would otherwise
    dominate everything and erase the paper\'s proportions.  Dividing the
    fixed constants by the same factor preserves the startup-to-work ratio
    the paper measured, which is what its relative results depend on.
    """
    base = base or CostModel()
    factor = max(1.0, data_scale)
    return base.scaled(
        rex_query_startup=base.rex_query_startup / factor,
        rex_stratum_overhead=base.rex_stratum_overhead / factor,
        hadoop_job_startup=base.hadoop_job_startup / factor,
        hadoop_task_overhead=base.hadoop_task_overhead / factor,
        failure_detection=base.failure_detection / factor,
        # Punctuation/barrier messages are a fixed per-stratum population;
        # their per-message latency scales with everything else fixed.
        net_latency=base.net_latency / factor,
    )


def fresh_cluster(nodes: int = DEFAULT_NODES,
                  cost_model: Optional[CostModel] = None) -> Cluster:
    return Cluster(nodes, cost_model=cost_model)


def speedup(slow: float, fast: float) -> float:
    """How many times faster ``fast`` is than ``slow``."""
    return slow / fast if fast > 0 else float("inf")
