"""Terminal rendering of figure results: ASCII line charts and bar charts.

The benchmark harness prints the same rows and series the paper's plots
show; this module adds a quick visual form for eyeballing shapes (the
per-iteration decay of REX Δ, the Figure 9 frontier spike, log-log
scalability) without leaving the terminal::

    python -m repro.bench.plots fig06
"""

from __future__ import annotations

import math
import sys
from typing import List, Optional, Sequence

from repro.bench.common import FigureResult, Series

_GLYPHS = "*o+x#@%&"


def _scale(values: Sequence[float], size: int, log: bool) -> List[int]:
    if log:
        values = [math.log10(max(v, 1e-12)) for v in values]
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    return [round((v - lo) / span * (size - 1)) for v in values]


def line_chart(series: List[Series], width: int = 64, height: int = 16,
               log_y: bool = False, title: str = "") -> str:
    """Plot several series on one grid; x is the sample index (or the
    series' own x values, rank-scaled)."""
    series = [s for s in series if s.values]
    if not series:
        return "(no data)"
    all_y = [v for s in series for v in s.values]
    if log_y:
        floor = math.log10(max(min(all_y), 1e-12))
        ceil = math.log10(max(max(all_y), 1e-12))
    else:
        floor, ceil = min(all_y), max(all_y)
    span = (ceil - floor) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for si, s in enumerate(series):
        glyph = _GLYPHS[si % len(_GLYPHS)]
        n = len(s.values)
        for i, v in enumerate(s.values):
            x = round(i / max(n - 1, 1) * (width - 1))
            vy = math.log10(max(v, 1e-12)) if log_y else v
            y = round((vy - floor) / span * (height - 1))
            grid[height - 1 - y][x] = glyph
    lines = []
    if title:
        lines.append(title)
    top = f"{ceil:.3g}" + (" (log10)" if log_y else "")
    lines.append(f"  ┌{'─' * width}┐  y_max={top}")
    for row in grid:
        lines.append("  │" + "".join(row) + "│")
    lines.append(f"  └{'─' * width}┘  y_min={floor:.3g}")
    legend = "   ".join(f"{_GLYPHS[i % len(_GLYPHS)]} {s.label}"
                        for i, s in enumerate(series))
    lines.append(f"  {legend}")
    return "\n".join(lines)


def bar_chart(series: List[Series], width: int = 50,
              title: str = "") -> str:
    """Horizontal bars for single-value series (Figure 4 style)."""
    entries = [(s.label, s.values[0]) for s in series if len(s.values) == 1]
    if not entries:
        return "(no single-value series)"
    peak = max(v for _, v in entries) or 1.0
    label_w = max(len(label) for label, _ in entries)
    lines = [title] if title else []
    for label, value in entries:
        bar = "█" * max(1, round(value / peak * width))
        lines.append(f"  {label:<{label_w}} {bar} {value:.3f}")
    return "\n".join(lines)


def render(result: FigureResult, log_y: bool = False) -> str:
    """Pick a sensible rendering for a figure's series."""
    multi = [s for s in result.series if len(s.values) > 1]
    single = [s for s in result.series if len(s.values) == 1]
    parts = [f"=== {result.figure}: {result.title} ==="]
    if multi:
        cumulative = [s for s in multi if "per-iter" not in s.label]
        per_iter = [s for s in multi if "per-iter" in s.label]
        if cumulative:
            parts.append(line_chart(cumulative, log_y=log_y,
                                    title="cumulative / series"))
        if per_iter:
            parts.append(line_chart(per_iter, log_y=log_y,
                                    title="per-iteration"))
    if single:
        parts.append(bar_chart(single, title="totals"))
    return "\n\n".join(parts)


def main(argv: Optional[List[str]] = None) -> int:
    from repro.bench import ALL_FIGURES

    argv = argv if argv is not None else sys.argv[1:]
    if not argv or argv[0] not in ALL_FIGURES:
        print(f"usage: python -m repro.bench.plots "
              f"{{{','.join(ALL_FIGURES)}}} [--log]", file=sys.stderr)
        return 2
    log_y = "--log" in argv
    result = ALL_FIGURES[argv[0]]()
    print(render(result, log_y=log_y))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
