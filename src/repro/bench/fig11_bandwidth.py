"""Figures 11(a)/11(b): average per-node bandwidth on the Twitter-like
workloads.

"For REX delta we measured the total amount of data sent by each node and
divided by the total number of nodes and the duration of the query.  For
Hadoop and HaLoop we aggregated the total amount of data shuffled per job,
dividing by the number of nodes and duration."  Paper findings: REX Δ
0.97 MB/s vs ~2.00 MB/s for Hadoop/HaLoop on PageRank; the gap is even
larger for shortest path — making REX Δ "the better choice in
comparatively bandwidth limited environments such as P2P systems".
"""

from __future__ import annotations

from repro.algorithms import make_start_table, run_pagerank, run_sssp
from repro.bench.common import (
    TWITTER_DEGREE,
    TWITTER_VERTICES,
    FigureResult,
    Series,
    fresh_cluster,
    scaled_cost_model,
)
from repro.datasets import twitter_like
from repro.hadoop import hadoop_pagerank, hadoop_sssp

PAPER_TWITTER_EDGES = 1_400_000_000
MB = 1_000_000.0


def run(n_vertices: int = TWITTER_VERTICES, degree: float = TWITTER_DEGREE,
        nodes: int = 8, seed: int = 13) -> FigureResult:
    edges = twitter_like(n_vertices, avg_out_degree=degree, seed=seed)
    cm = scaled_cost_model(PAPER_TWITTER_EDGES / len(edges))

    def graph_cluster():
        cluster = fresh_cluster(nodes, cm)
        cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                             edges, "srcId", replication=2)
        return cluster

    # PageRank.
    c = graph_cluster()
    _, pr_delta = run_pagerank(c, mode="delta", tol=0.01)
    iterations = max(1, pr_delta.num_iterations - 1)
    _, pr_hadoop = hadoop_pagerank(fresh_cluster(nodes, cm), edges,
                                   iterations=iterations)
    _, pr_haloop = hadoop_pagerank(fresh_cluster(nodes, cm), edges,
                                   iterations=iterations, haloop=True)

    # Shortest path.
    c = graph_cluster()
    make_start_table(c, 0)
    _, sp_delta = run_sssp(c)
    _, sp_hadoop = hadoop_sssp(fresh_cluster(nodes, cm), edges, 0,
                               max_iterations=15)
    _, sp_haloop = hadoop_sssp(fresh_cluster(nodes, cm), edges, 0,
                               max_iterations=15, haloop=True)

    pr_bw = {label: m.avg_bandwidth_per_node() / MB for label, m in
             (("REX Δ", pr_delta), ("HaLoop LB", pr_haloop),
              ("Hadoop LB", pr_hadoop))}
    sp_bw = {label: m.avg_bandwidth_per_node() / MB for label, m in
             (("REX Δ", sp_delta), ("HaLoop LB", sp_haloop),
              ("Hadoop LB", sp_hadoop))}
    pr_bytes = {label: m.total_bytes() / MB for label, m in
                (("REX Δ", pr_delta), ("HaLoop LB", pr_haloop),
                 ("Hadoop LB", pr_hadoop))}
    sp_bytes = {label: m.total_bytes() / MB for label, m in
                (("REX Δ", sp_delta), ("HaLoop LB", sp_haloop),
                 ("Hadoop LB", sp_hadoop))}

    return FigureResult(
        figure="Figure 11",
        title="Avg bandwidth per node (MB/s), Twitter-like workloads "
              "(a: shortest path, b: PageRank)",
        series=[
            Series("shortest-path " + k, [v]) for k, v in sp_bw.items()
        ] + [
            Series("pagerank " + k, [v]) for k, v in pr_bw.items()
        ] + [
            Series("total MB " + k, [v]) for k, v in pr_bytes.items()
        ],
        headline={
            "pr_rate_hadoop_over_delta":
                pr_bw["Hadoop LB"] / max(pr_bw["REX Δ"], 1e-12),
            "sp_rate_hadoop_over_delta":
                sp_bw["Hadoop LB"] / max(sp_bw["REX Δ"], 1e-12),
            "pr_bytes_hadoop_over_delta":
                pr_bytes["Hadoop LB"] / max(pr_bytes["REX Δ"], 1e-12),
            "sp_bytes_hadoop_over_delta":
                sp_bytes["Hadoop LB"] / max(sp_bytes["REX Δ"], 1e-12),
        },
        notes=["paper (PageRank): REX Δ 0.97 MB/s vs ~2.00 MB/s for "
               "Hadoop/HaLoop (~2x); shortest path gap even larger",
               "total-bytes ratios are the robust form of the claim here: "
               "our cost calibration is CPU-dominated, so REX Δ's much "
               "shorter duration inflates its per-second rate even though "
               "it ships far less data (see EXPERIMENTS.md)"],
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().format_table())
