"""Figures 10(a)/10(b): scalability and speedup vs cluster size.

PageRank (DBPedia-like) on 1, 3, 9, 28 nodes, plus DBMS X on one machine
and its perfect-linear-speedup lower-bound line.  Paper findings: runtime
decreases proportionally with machines (near-linear speedup); single-node
REX Δ is ~30% faster than the commercial DBMS; real REX always beats even
the idealized linear-speedup DBMS X.
"""

from __future__ import annotations

from typing import List

from repro.algorithms import run_pagerank
from repro.bench.common import (
    FigureResult,
    Series,
    fresh_cluster,
    scaled_cost_model,
    speedup,
)
from repro.datasets import dbpedia_like
from repro.dbms import DBMSXEngine

PAPER_DBPEDIA_EDGES = 48_000_000
NODE_COUNTS = (1, 3, 9, 28)


def run(n_vertices: int = 3000, degree: float = 12.0,
        node_counts=NODE_COUNTS, tol: float = 0.01,
        seed: int = 7) -> FigureResult:
    edges = dbpedia_like(n_vertices, avg_out_degree=degree, seed=seed)
    cm = scaled_cost_model(PAPER_DBPEDIA_EDGES / len(edges))

    rex_times: List[float] = []
    for n in node_counts:
        cluster = fresh_cluster(n, cm)
        cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                             edges, "srcId")
        _, m = run_pagerank(cluster, mode="delta", tol=tol)
        rex_times.append(m.total_seconds())
    speedups = [rex_times[0] / t for t in rex_times]

    engine = DBMSXEngine(cost_model=cm)
    _, dbms_m = engine.pagerank(edges, iterations=80, tol=tol)
    dbms_single = dbms_m.total_seconds()
    dbms_lb = [DBMSXEngine.linear_speedup_lower_bound(dbms_m, n)
               for n in node_counts]

    xs = [float(n) for n in node_counts]
    return FigureResult(
        figure="Figure 10",
        title="Scalability (a: runtime vs nodes incl. DBMS X LB; "
              "b: speedup vs single node)",
        series=[
            Series("REX Δ", rex_times, x=xs),
            Series("DBMS X LB", dbms_lb, x=xs),
            Series("REX Δ speedup", speedups, x=xs),
        ],
        headline={
            "single_node_rex_vs_dbms": speedup(dbms_single, rex_times[0]),
            "speedup_at_max_nodes": speedups[-1],
            "parallel_efficiency_at_max":
                speedups[-1] / node_counts[-1],
            "rex_beats_idealized_dbms": 1.0 if all(
                r < d for r, d in zip(rex_times, dbms_lb)) else 0.0,
        },
        notes=["paper: near-linear speedup to 28 nodes; single-node REX Δ "
               "~30% faster than DBMS X; real REX always beats the "
               "idealized linear-speedup DBMS X"],
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().format_table())
