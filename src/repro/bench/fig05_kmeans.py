"""Figure 5: K-means clustering scalability (mutable-only relations).

REX delta vs Hadoop (lower bound) while the point-set size sweeps across
orders of magnitude.  The paper does not include HaLoop because the query
has no immutable relation (HaLoop ~ Hadoop; verified in tests).  Paper
finding: "REX delta is almost two orders of magnitude faster, due to its
extremely low iteration overhead."
"""

from __future__ import annotations

from typing import List, Optional

from repro.algorithms import run_kmeans
from repro.bench.common import (
    FigureResult,
    Series,
    fresh_cluster,
    scaled_cost_model,
    speedup,
)

PAPER_SMALLEST_POINTS = 382_000
from repro.datasets import geo_points, sample_centroids
from repro.hadoop import hadoop_kmeans

DEFAULT_SIZES = (300, 1000, 3000, 10_000)
K_CLUSTERS = 8


def run(sizes=DEFAULT_SIZES, nodes: int = 8, seed: int = 61) -> FigureResult:
    cost_model = scaled_cost_model(PAPER_SMALLEST_POINTS / sizes[0])
    rex_times: List[float] = []
    hadoop_times: List[float] = []
    for n in sizes:
        points = geo_points(n, n_clusters=K_CLUSTERS, seed=seed)
        centroids = sample_centroids(points, K_CLUSTERS, seed=seed + 1)

        cluster = fresh_cluster(nodes, cost_model)
        cluster.create_table("points",
                             ["pid:Integer", "x:Double", "y:Double"],
                             points, None)
        cluster.create_table("centroids0",
                             ["cid:Integer", "x:Double", "y:Double"],
                             centroids, "cid")
        rex_cents, rex_m = run_kmeans(cluster)
        rex_times.append(rex_m.total_seconds())

        h_cents, h_m = hadoop_kmeans(fresh_cluster(nodes, cost_model),
                                     points, centroids)
        hadoop_times.append(h_m.total_seconds())
        # Both systems must agree on the clustering itself.
        for cid, pos in h_cents.items():
            got = rex_cents.get(cid)
            if got and got != (None, None):
                assert abs(got[0] - pos[0]) < 1e-6
                assert abs(got[1] - pos[1]) < 1e-6

    xs = [float(n) for n in sizes]
    return FigureResult(
        figure="Figure 5",
        title="K-means scalability vs data size (runtime, log-log)",
        series=[
            Series("Hadoop LB", hadoop_times, x=xs),
            Series("REX Δ", rex_times, x=xs),
        ],
        headline={
            "speedup_smallest": speedup(hadoop_times[0], rex_times[0]),
            "speedup_largest": speedup(hadoop_times[-1], rex_times[-1]),
        },
        notes=[f"sizes {list(sizes)} points, k={K_CLUSTERS}, {nodes} nodes; "
               "paper sweeps 382k..382M tuples",
               "paper: REX delta almost two orders of magnitude faster"],
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().format_table())
