"""Ablations of the design choices DESIGN.md calls out.

These are not paper figures; they isolate individual REX mechanisms:

1. convergence-threshold sweep (how much work the Δ threshold saves);
2. UDC input batching (Section 4.2's reflection amortization);
3. deterministic-function caching (Section 5.1);
4. pre-aggregation pushdown (Section 5.2) — on vs off;
5. checkpoint replication factor (Section 4.3) — traffic vs recoverability;
6. sort-based vs hash-based grouping (Section 6.3's explanation of why
   REX beats Hadoop even running identical code).
"""

from __future__ import annotations

from typing import Dict, List

from repro.algorithms import make_start_table, run_pagerank, run_sssp
from repro.bench.common import (
    FigureResult,
    Series,
    fresh_cluster,
    scaled_cost_model,
)
from repro.cluster.costs import CostModel
from repro.datasets import dbpedia_like, lineitem
from repro.datasets.tpch import LINEITEM_SCHEMA
from repro.optimizer import Optimizer
from repro.rql import RQLSession
from repro.runtime import ExecOptions
from repro.udf import CachingUDF, udf


def graph_cluster(edges, nodes=6, cm=None, replication=2):
    cluster = fresh_cluster(nodes, cm)
    cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                         edges, "srcId", replication=replication)
    return cluster


def threshold_sweep(n_vertices: int = 1500, degree: float = 8.0,
                    thresholds=(0.05, 0.01, 0.001, 0.0),
                    seed: int = 81) -> FigureResult:
    """Ablation 1: the Δ threshold trades accuracy for propagated work."""
    edges = dbpedia_like(n_vertices, avg_out_degree=degree, seed=seed)
    cm = scaled_cost_model(48_000_000 / len(edges))
    tuples: List[float] = []
    iters: List[float] = []
    for tol in thresholds:
        _, m = run_pagerank(graph_cluster(edges, cm=cm), mode="delta",
                            tol=tol, max_strata=120)
        tuples.append(float(m.total_tuples()))
        iters.append(float(m.num_iterations))
    xs = [t if t > 0 else 1e-6 for t in thresholds]
    return FigureResult(
        figure="Ablation 1",
        title="Convergence threshold vs total work (PageRank)",
        series=[Series("tuples processed", tuples, x=xs),
                Series("iterations", iters, x=xs)],
        headline={"work_ratio_exact_vs_1pct": tuples[-1] / tuples[1]},
        notes=["looser thresholds truncate more of the Δ stream: less "
               "work, earlier convergence, small score error"],
    )


def batching_ablation(n_vertices: int = 1500, seed: int = 82
                      ) -> FigureResult:
    """Ablation 2: UDC input batching amortizes invocation overhead."""
    edges = dbpedia_like(n_vertices, avg_out_degree=8, seed=seed)
    times: Dict[int, float] = {}
    for batch in (1, 64):
        cm = scaled_cost_model(48_000_000 / len(edges),
                               CostModel(udf_batch_size=batch))
        _, m = run_pagerank(graph_cluster(edges, cm=cm), mode="delta",
                            tol=0.01)
        times[batch] = m.total_seconds()
    return FigureResult(
        figure="Ablation 2",
        title="UDC input batching (Section 4.2)",
        series=[Series(f"batch={b}", [t]) for b, t in times.items()],
        headline={"batching_speedup": times[1] / times[64]},
        notes=["batching divides the per-call reflection overhead across "
               "the batch"],
    )


def caching_ablation(n_rows: int = 5000) -> FigureResult:
    """Ablation 3: deterministic-UDF result caching (Section 5.1)."""
    rows = lineitem(n_rows)

    calls = {"n": 0}

    @udf(in_types=["Integer"], out_types=["Double"], deterministic=True)
    def costly_rate(linenumber):
        calls["n"] += 1
        return 1.0 + linenumber / 100.0

    def run_query(enable_caching):
        calls["n"] = 0
        cluster = fresh_cluster(4)
        cluster.create_table("lineitem", LINEITEM_SCHEMA, rows, None)
        from repro.udf import UDFRegistry

        session = RQLSession(cluster,
                             registry=UDFRegistry(enable_caching=enable_caching))
        session.register(costly_rate)
        r = session.execute(
            "SELECT orderkey, costly_rate(linenumber) FROM lineitem")
        assert len(r.rows) == n_rows
        return calls["n"]

    uncached_calls = run_query(False)
    cached_calls = run_query(True)
    return FigureResult(
        figure="Ablation 3",
        title="Deterministic-function caching (Section 5.1)",
        series=[Series("invocations uncached", [float(uncached_calls)]),
                Series("invocations cached", [float(cached_calls)])],
        headline={"call_reduction": uncached_calls / max(cached_calls, 1)},
        notes=["only 7 distinct linenumber values exist, so the cache "
               "absorbs nearly every invocation"],
    )


def preagg_ablation(n_rows: int = 20_000) -> FigureResult:
    """Ablation 4: pre-aggregation pushdown on vs off (Section 5.2)."""
    rows = lineitem(n_rows)
    results = {}
    for optimize in (False, True):
        cluster = fresh_cluster(8, scaled_cost_model(60_000_000 / n_rows))
        cluster.create_table("lineitem", LINEITEM_SCHEMA, rows, None)
        session = RQLSession(cluster, optimize=optimize)
        r = session.execute(
            "SELECT linenumber, sum(tax), count(*) FROM lineitem "
            "GROUP BY linenumber")
        results[optimize] = (r.metrics.total_seconds(),
                            r.metrics.total_bytes(), sorted(r.rows))
    for a, b in zip(results[False][2], results[True][2]):
        assert a[0] == b[0] and a[2] == b[2], "pre-agg changed results"
        assert abs(a[1] - b[1]) < 1e-9, "pre-agg changed sums"
    return FigureResult(
        figure="Ablation 4",
        title="Pre-aggregation pushdown (Section 5.2)",
        series=[Series("no pre-agg seconds", [results[False][0]]),
                Series("optimized seconds", [results[True][0]]),
                Series("no pre-agg bytes", [float(results[False][1])]),
                Series("optimized bytes", [float(results[True][1])])],
        headline={
            "bytes_saved_ratio": results[False][1] / max(results[True][1], 1),
            "time_speedup": results[False][0] / results[True][0],
        },
        notes=["identical query results either way"],
    )


def replication_sweep(n_vertices: int = 1200,
                      factors=(2, 3, 5), seed: int = 83) -> FigureResult:
    """Ablation 5: checkpoint replication factor (Section 4.3)."""
    edges = dbpedia_like(n_vertices, avg_out_degree=6, seed=seed)
    cm = scaled_cost_model(48_000_000 / len(edges))
    bytes_sent: List[float] = []
    for rf in factors:
        cluster = graph_cluster(edges, cm=cm, replication=3)
        make_start_table(cluster, 0)
        opts = ExecOptions(checkpoint_replication=rf)
        _, m = run_sssp(cluster, options=opts)
        bytes_sent.append(float(m.total_bytes()))
    return FigureResult(
        figure="Ablation 5",
        title="Checkpoint replication factor vs network traffic",
        series=[Series("bytes sent", bytes_sent,
                       x=[float(f) for f in factors])],
        headline={"traffic_rf5_over_rf2": bytes_sent[-1] / bytes_sent[0]},
        notes=["each extra replica re-ships every Δᵢ tuple once more"],
    )


def sort_vs_hash_ablation(n_vertices: int = 1500, seed: int = 84
                          ) -> FigureResult:
    """Ablation 6: what if REX's exchanges sorted like Hadoop's shuffle?

    Section 6.3: "the architecture of REX avoids the expensive sorting
    step used in Hadoop and HaLoop and uses hash-based GROUP BY instead."
    We emulate a sort-based REX by inflating the per-tuple hash cost to a
    comparison-based ``log2(n)`` equivalent at benchmark scale.
    """
    edges = dbpedia_like(n_vertices, avg_out_degree=8, seed=seed)
    scale = 48_000_000 / len(edges)
    import math

    hash_cm = scaled_cost_model(scale)
    sort_per_tuple = hash_cm.compare_cost * math.log2(48_000_000)
    sort_cm = scaled_cost_model(scale, CostModel(
        hash_op_cost=CostModel().hash_op_cost + sort_per_tuple))
    times = {}
    for label, cm in (("hash grouping", hash_cm), ("sorted grouping",
                                                   sort_cm)):
        _, m = run_pagerank(graph_cluster(edges, cm=cm), mode="delta",
                            tol=0.01)
        times[label] = m.total_seconds()
    return FigureResult(
        figure="Ablation 6",
        title="Hash-based vs sort-based grouping inside REX",
        series=[Series(k, [v]) for k, v in times.items()],
        headline={"sort_penalty":
                  times["sorted grouping"] / times["hash grouping"]},
        notes=["one of the reasons REX wrap beats HaLoop on identical "
               "code (Section 6.3)"],
    )


def run_all() -> List[FigureResult]:
    return [
        threshold_sweep(),
        batching_ablation(),
        caching_ablation(),
        preagg_ablation(),
        replication_sweep(),
        sort_vs_hash_ablation(),
    ]


if __name__ == "__main__":  # pragma: no cover
    for result in run_all():
        print(result.format_table())
        print()
