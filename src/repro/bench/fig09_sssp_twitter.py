"""Figures 9(a)/9(b): shortest path on the Twitter-like graph.

Paper findings: REX Δ faster than HaLoop LB by ~30%; "Figure 9(b) reveals a
large jump in the per-iteration runtime around iterations 7 and 8, preceded
and followed by very fast iterations.  This is due [to] an explosion in the
size of the reachability set which occurs 7 hops from the initial node.
The large spike in the first iteration reflects the time required to load
the immutable data."  The twitter_like generator engineers exactly that
frontier structure (periphery chain into a dense core).
"""

from __future__ import annotations

from repro.algorithms import make_start_table, run_sssp, sssp_reference
from repro.bench.common import (
    TWITTER_DEGREE,
    TWITTER_VERTICES,
    FigureResult,
    Series,
    fresh_cluster,
    scaled_cost_model,
    speedup,
)
from repro.datasets import twitter_like
from repro.hadoop import hadoop_sssp

PAPER_TWITTER_EDGES = 1_400_000_000
LB_ITERATIONS = 15  # the paper plots 15 iterations for Twitter SSSP


def run(n_vertices: int = TWITTER_VERTICES, degree: float = TWITTER_DEGREE,
        nodes: int = 8, seed: int = 13) -> FigureResult:
    edges = twitter_like(n_vertices, avg_out_degree=degree, seed=seed)
    cm = scaled_cost_model(PAPER_TWITTER_EDGES / len(edges))
    reference = sssp_reference(edges, 0)

    cluster = fresh_cluster(nodes, cm)
    cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                         edges, "srcId", replication=2)
    make_start_table(cluster, 0)
    delta_dists, delta_m = run_sssp(cluster)
    assert {v: d for v, (_, d) in delta_dists.items()} == {
        v: float(d) for v, d in reference.items()}

    _, hadoop_m = hadoop_sssp(fresh_cluster(nodes, cm), edges, 0,
                              max_iterations=LB_ITERATIONS)
    _, haloop_m = hadoop_sssp(fresh_cluster(nodes, cm), edges, 0,
                              max_iterations=LB_ITERATIONS, haloop=True)

    metrics = {"Hadoop LB": hadoop_m, "HaLoop LB": haloop_m,
               "REX Δ": delta_m}
    totals = {k: m.total_seconds() for k, m in metrics.items()}
    per_iter = delta_m.per_iteration_seconds()
    # The spike: the max per-iteration time in hops 6..10 relative to the
    # quiet chain hops before it (excluding the stratum-1 load spike).
    quiet = max(per_iter[2:6]) if len(per_iter) > 6 else 1.0
    spike = max(per_iter[6:11]) if len(per_iter) > 10 else 0.0
    return FigureResult(
        figure="Figure 9",
        title="Shortest path (Twitter-like): cumulative (a) and "
              "per-iteration (b) runtime",
        series=[Series(k, m.cumulative_seconds()) for k, m in metrics.items()]
        + [Series(f"{k} (per-iter)", m.per_iteration_seconds())
           for k, m in metrics.items()],
        headline={
            "delta_vs_haloop": speedup(totals["HaLoop LB"], totals["REX Δ"]),
            "delta_vs_hadoop": speedup(totals["Hadoop LB"], totals["REX Δ"]),
            "frontier_spike_ratio": spike / quiet if quiet > 0 else 0.0,
            "load_spike_first_iteration":
                per_iter[0] / max(quiet, 1e-9) if per_iter else 0.0,
        },
        notes=[f"{n_vertices} vertices / {len(edges)} edges on {nodes} "
               "nodes",
               "paper: REX Δ ~30% faster than HaLoop LB; per-iteration "
               "spike at hops 7-8 (reachability explosion); first "
               "iteration spike = immutable data load"],
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().format_table())
