"""Experiment harness reproducing every table and figure of Section 6."""

from repro.bench import (
    ablations,
    fig02_convergence,
    fig03_recursive_data,
    fig04_simple_agg,
    fig05_kmeans,
    fig06_pagerank_dbpedia,
    fig07_sssp_dbpedia,
    fig08_pagerank_twitter,
    fig09_sssp_twitter,
    fig10_scalability,
    fig11_bandwidth,
    fig12_recovery,
)
from repro.bench.common import FigureResult, Series, scaled_cost_model

ALL_FIGURES = {
    "fig02": fig02_convergence.run,
    "fig03": fig03_recursive_data.run,
    "fig04": fig04_simple_agg.run,
    "fig05": fig05_kmeans.run,
    "fig06": fig06_pagerank_dbpedia.run,
    "fig07": fig07_sssp_dbpedia.run,
    "fig08": fig08_pagerank_twitter.run,
    "fig09": fig09_sssp_twitter.run,
    "fig10": fig10_scalability.run,
    "fig11": fig11_bandwidth.run,
    "fig12": fig12_recovery.run,
}

__all__ = ["ALL_FIGURES", "FigureResult", "Series", "scaled_cost_model",
           "ablations"]
