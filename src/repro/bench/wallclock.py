"""Wall-clock microbenchmark: per-tuple vs batch-vectorized execution.

Everything else in :mod:`repro.bench` measures *simulated* time — the cost
model's account of what the paper's cluster would do.  This harness measures
the other axis: how long the simulator itself takes on this machine's
Python interpreter, with the batch-vectorized delta pipeline on and off.

Each workload (PageRank, SSSP, K-means) is run twice on identically-built
clusters: once with ``ExecOptions(batch=False)`` (one virtual ``push`` per
delta) and once with ``ExecOptions(batch=True)`` (operators move
``List[Delta]`` batches).  The harness asserts the two runs' simulated
metrics are identical — same seconds, bytes, delta counts, strata — before
reporting wall-clock seconds, tuples/sec, and speedup, so a reported
speedup can never come from doing different simulated work.

Run it with::

    PYTHONPATH=src python -m repro.bench.wallclock --out BENCH_1.json

``--smoke`` shrinks the datasets for CI.  ``--fusion`` measures the other
wall-clock axis this package tracks — fused vs unfused kernels
(``ExecOptions(fuse=...)``) — and writes the BENCH_5 payload::

    PYTHONPATH=src python -m repro.bench.wallclock --fusion --out BENCH_5.json

``--telemetry`` measures the flight recorder's and the live-telemetry
sampler's wall overhead (both default-on) and writes the BENCH_7 payload::

    PYTHONPATH=src python -m repro.bench.wallclock --telemetry --out BENCH_7.json

``--absint`` measures the proof-directed fast paths unlocked by the
delta-polarity abstract interpretation (``ExecOptions(absint=...)``) and
writes the BENCH_8 payload; it also reports the sanitizer-downgrade
effect (``sanitize="full"`` with and without proofs)::

    PYTHONPATH=src python -m repro.bench.wallclock --absint --out BENCH_8.json

``--rewrites`` measures the lineage-directed rewrite pass
(``ExecOptions(rewrite=...)``) and writes the BENCH_9 payload.  On the
three standard workloads no rewrite is licensed (their streams carry δ
updates), so the pass must be fingerprint-neutral — the run *fails*
otherwise.  A fourth ``wide_reach`` workload (reachability over
8-column edges joined on a non-partition key) is built so filter
pushdown and exchange narrowing both fire; there the payload records
the wire-bytes and shuffled-tuple reductions::

    PYTHONPATH=src python -m repro.bench.wallclock --rewrites --out BENCH_9.json

``--columnar`` measures the column-major block backend
(``ExecOptions(columnar=...)``) against the row-at-a-time oracle and
writes the BENCH_10 payload; the run fails unless simulated metrics are
bit-identical columnar on and off::

    PYTHONPATH=src python -m repro.bench.wallclock --columnar --out BENCH_10.json
"""

from __future__ import annotations

import argparse
import gc
import json
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.algorithms import run_kmeans, run_pagerank, run_sssp
from repro.algorithms.sssp import make_start_table
from repro.bench.common import fresh_cluster, speedup
from repro.cluster.metrics import QueryMetrics
from repro.datasets import dbpedia_like, geo_points, sample_centroids
from repro.runtime.executor import ExecOptions

GRAPH_SCHEMA = ["srcId:Integer", "destId:Integer"]


def _graph_cluster(n_vertices: int, degree: float, nodes: int, seed: int):
    edges = dbpedia_like(n_vertices, avg_out_degree=degree, seed=seed)
    cluster = fresh_cluster(nodes)
    cluster.create_table("graph", GRAPH_SCHEMA, edges, "srcId",
                         replication=2)
    return cluster


def _pagerank_setup(n_vertices: int, degree: float, nodes: int, seed: int):
    cluster = _graph_cluster(n_vertices, degree, nodes, seed)
    return lambda options: run_pagerank(cluster, mode="delta", tol=0.01,
                                        options=options)[1]


def _sssp_setup(n_vertices: int, degree: float, nodes: int, seed: int):
    cluster = _graph_cluster(n_vertices, degree, nodes, seed)
    make_start_table(cluster, 0)
    return lambda options: run_sssp(cluster, options=options)[1]


def _kmeans_setup(n_points: int, k: int, nodes: int, seed: int):
    points = geo_points(n_points, n_clusters=k, seed=seed)
    centroids = sample_centroids(points, k, seed=seed + 1)
    cluster = fresh_cluster(nodes)
    cluster.create_table("points", ["pid:Integer", "x:Double", "y:Double"],
                         points, None)
    cluster.create_table("centroids0", ["cid:Integer", "x:Double", "y:Double"],
                         centroids, "cid")
    return lambda options: run_kmeans(cluster, options=options)[1]


def _metrics_fingerprint(m: QueryMetrics) -> tuple:
    """Everything the simulator decides: must match bit-for-bit."""
    return m.fingerprint()


def _workloads(smoke: bool, nodes: int, seed: int
               ) -> List[Tuple[str, Callable]]:
    if smoke:
        pr_n, pr_deg = 200, 4.0
        ss_n, ss_deg = 200, 4.0
        km_n, km_k = 300, 4
    else:
        pr_n, pr_deg = 3000, 12.0
        ss_n, ss_deg = 3000, 12.0
        km_n, km_k = 3000, 8
    return [
        ("pagerank", lambda: _pagerank_setup(pr_n, pr_deg, nodes, seed)),
        ("sssp", lambda: _sssp_setup(ss_n, ss_deg, nodes, seed)),
        ("kmeans", lambda: _kmeans_setup(km_n, km_k, nodes, seed)),
    ]


def _time_run(make_runner: Callable, batch: bool, obs=None,
              sanitize: str = "off", fuse: bool = True, flight: bool = True,
              absint: bool = True, rewrite: bool = True,
              columnar: bool = False
              ) -> Tuple[float, float, QueryMetrics]:
    """Build a fresh cluster, then time one query execution.

    Returns ``(setup_wall, run_wall, metrics)`` so the report can split
    per-phase wall time.  Setup garbage is collected before the timer
    starts and the collector is paused inside the timed region (both modes
    identically), so cluster construction debt is not billed to whichever
    mode happens to trip a generational collection first.
    """
    setup_start = time.perf_counter()
    runner = make_runner()
    setup_wall = time.perf_counter() - setup_start
    options = ExecOptions(batch=batch, obs=obs, sanitize=sanitize,
                          fuse=fuse, flight=flight, absint=absint,
                          rewrite=rewrite, columnar=columnar)
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        metrics = runner(options)
        wall = time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()
    return setup_wall, wall, metrics


def _measure_obs_overhead(make_runner: Callable, repeats: int) -> Dict:
    """Overhead of attaching an ObsContext with the tracer *disabled*
    (instrumentation hooks installed, no event emission) vs no context at
    all — the acceptance bar is < 5% with unchanged simulated metrics."""
    from repro.obs import ObsContext, Tracer

    plain: List[float] = []
    attached: List[float] = []
    m_plain = m_obs = None
    for _ in range(max(repeats, 3)):
        _, wall, m_plain = _time_run(make_runner, batch=True)
        plain.append(wall)
        obs = ObsContext(tracer=Tracer(enabled=False))
        _, wall, m_obs = _time_run(make_runner, batch=True, obs=obs)
        attached.append(wall)
    identical = (_metrics_fingerprint(m_plain)
                 == _metrics_fingerprint(m_obs))
    base, instrumented = min(plain), min(attached)
    return {
        "baseline_wall_seconds": round(base, 4),
        "tracer_disabled_wall_seconds": round(instrumented, 4),
        "overhead_pct": round((instrumented - base) / base * 100.0, 2)
        if base > 0 else None,
        "simulated_metrics_identical": identical,
    }


def _measure_sanitizer_overhead(make_runner: Callable, repeats: int) -> Dict:
    """Overhead of the runtime sanitizer at ``sample`` and ``full`` level
    vs ``off`` — the acceptance bar is < 10% at ``sample`` on PageRank,
    with bit-identical simulated metrics at every level (the sanitizer
    observes the simulation, it never participates in it)."""
    plain: List[float] = []
    sampled: List[float] = []
    full: List[float] = []
    m_plain = m_sample = m_full = None
    for _ in range(max(repeats, 3)):
        _, wall, m_plain = _time_run(make_runner, batch=True)
        plain.append(wall)
        _, wall, m_sample = _time_run(make_runner, batch=True,
                                      sanitize="sample")
        sampled.append(wall)
        _, wall, m_full = _time_run(make_runner, batch=True,
                                    sanitize="full")
        full.append(wall)
    fp = _metrics_fingerprint(m_plain)
    identical = (fp == _metrics_fingerprint(m_sample)
                 == _metrics_fingerprint(m_full))
    base = min(plain)
    sample_wall, full_wall = min(sampled), min(full)
    return {
        "baseline_wall_seconds": round(base, 4),
        "sample_wall_seconds": round(sample_wall, 4),
        "full_wall_seconds": round(full_wall, 4),
        "sample_overhead_pct": round((sample_wall - base) / base * 100.0, 2)
        if base > 0 else None,
        "full_overhead_pct": round((full_wall - base) / base * 100.0, 2)
        if base > 0 else None,
        "simulated_metrics_identical": identical,
    }


def run_benchmark(smoke: bool = False, nodes: int = 8, seed: int = 7,
                  repeats: int = 1, trace_dir: str = None,
                  measure_obs: bool = False,
                  measure_sanitizer: bool = False) -> Dict:
    """Run every workload in both modes; returns the BENCH_1 payload.

    ``trace_dir`` additionally re-runs each workload once (batch mode,
    untimed) with full tracing and writes ``<workload>.trace.jsonl`` plus
    ``<workload>.chrome.json`` there.  ``measure_obs`` adds a per-workload
    ``observability`` section with the tracer-disabled overhead.
    ``measure_sanitizer`` adds a ``sanitizer`` section with the sample-
    and full-level overhead (the BENCH_4 payload).
    """
    results: Dict = {
        "benchmark": "wallclock-batch-vs-per-tuple",
        "smoke": smoke,
        "nodes": nodes,
        "workloads": {},
    }
    for name, make_runner in _workloads(smoke, nodes, seed):
        # Interleave the two modes (alternating which goes first) so any
        # monotone within-process drift — allocator growth, cache churn —
        # penalizes both modes equally rather than whichever ran last.
        runs_tuple = []
        runs_batch = []
        setup_walls = []
        for r in range(repeats):
            order = (False, True) if r % 2 == 0 else (True, False)
            for batch in order:
                setup_wall, wall, metrics = _time_run(make_runner,
                                                      batch=batch)
                setup_walls.append(setup_wall)
                (runs_batch if batch else runs_tuple).append((wall, metrics))
        per_tuple_wall = min(wall for wall, _ in runs_tuple)
        batch_wall = min(wall for wall, _ in runs_batch)
        m_tuple = runs_tuple[0][1]
        m_batch = runs_batch[0][1]
        fp_tuple = _metrics_fingerprint(m_tuple)
        fp_batch = _metrics_fingerprint(m_batch)
        if fp_tuple != fp_batch:
            raise AssertionError(
                f"{name}: simulated metrics diverge between per-tuple and "
                f"batch modes\nper-tuple: {fp_tuple}\nbatch:     {fp_batch}")
        tuples = sum(it.tuples_processed for it in m_batch.iterations)
        entry = {
            "setup_wall_seconds": round(min(setup_walls), 4),
            "per_tuple_wall_seconds": round(per_tuple_wall, 4),
            "batch_wall_seconds": round(batch_wall, 4),
            "speedup": round(speedup(per_tuple_wall, batch_wall), 3),
            "tuples_processed": tuples,
            "per_tuple_tuples_per_sec": round(tuples / per_tuple_wall)
            if per_tuple_wall > 0 else None,
            "batch_tuples_per_sec": round(tuples / batch_wall)
            if batch_wall > 0 else None,
            "simulated_seconds": m_batch.total_seconds(),
            "strata": m_batch.num_iterations,
            "simulated_metrics_identical": True,
        }
        if measure_obs:
            entry["observability"] = _measure_obs_overhead(make_runner,
                                                           repeats)
        if measure_sanitizer:
            entry["sanitizer"] = _measure_sanitizer_overhead(make_runner,
                                                             repeats)
        if trace_dir:
            entry["trace_files"] = _emit_traces(make_runner, name, trace_dir)
        results["workloads"][name] = entry
    return results


def _geomean(values: List[float]) -> float:
    import math

    return math.exp(sum(math.log(v) for v in values) / len(values))


def run_fusion_benchmark(smoke: bool = False, nodes: int = 8, seed: int = 7,
                         repeats: int = 1,
                         baseline_path: str = "BENCH_1.json") -> Dict:
    """Fused vs unfused wall clock; returns the BENCH_5 payload.

    Both sides run batch mode (the fusion pass targets the batch
    pipeline); ``fuse=False`` is this PR's off switch, so unfused here is
    exactly the PR 1 batch pipeline re-measured on today's machine.  The
    run *fails* (AssertionError) if any workload's simulated-metrics
    fingerprint differs between the two — a speedup must never come from
    doing different simulated work.  When ``baseline_path`` exists, each
    workload also reports its speedup against that file's recorded
    ``batch_wall_seconds`` (the PR 1 batch-only baseline as measured when
    BENCH_1.json was produced — a cross-machine comparison, noisier than
    the same-process fused-vs-unfused ratio).
    """
    import os

    baseline: Dict = {}
    if baseline_path and os.path.exists(baseline_path):
        with open(baseline_path) as fh:
            recorded = json.load(fh)
        # Only comparable when the baseline measured the same workload
        # sizes on the same simulated cluster width.
        if (recorded.get("smoke", False) == smoke
                and recorded.get("nodes") == nodes):
            baseline = recorded.get("workloads", {})
    results: Dict = {
        "benchmark": "wallclock-fused-vs-unfused",
        "smoke": smoke,
        "nodes": nodes,
        "baseline": baseline_path if baseline else None,
        "workloads": {},
    }
    for name, make_runner in _workloads(smoke, nodes, seed):
        # Interleave fused/unfused (alternating order per repeat) so
        # monotone within-process drift penalizes both sides equally.
        runs_fused = []
        runs_plain = []
        for r in range(repeats):
            order = (False, True) if r % 2 == 0 else (True, False)
            for fuse in order:
                _, wall, metrics = _time_run(make_runner, batch=True,
                                             fuse=fuse)
                (runs_fused if fuse else runs_plain).append((wall, metrics))
        fused_wall = min(wall for wall, _ in runs_fused)
        plain_wall = min(wall for wall, _ in runs_plain)
        fp_fused = _metrics_fingerprint(runs_fused[0][1])
        fp_plain = _metrics_fingerprint(runs_plain[0][1])
        if fp_fused != fp_plain:
            raise AssertionError(
                f"{name}: simulated metrics diverge between fused and "
                f"unfused runs\nfused:   {fp_fused}\nunfused: {fp_plain}")
        entry = {
            "fused_wall_seconds": round(fused_wall, 4),
            "unfused_wall_seconds": round(plain_wall, 4),
            "speedup": round(speedup(plain_wall, fused_wall), 3),
            "simulated_seconds": runs_fused[0][1].total_seconds(),
            "strata": runs_fused[0][1].num_iterations,
            "simulated_metrics_identical": True,
        }
        recorded = baseline.get(name, {}).get("batch_wall_seconds")
        if recorded:
            entry["pr1_batch_wall_seconds"] = recorded
            entry["speedup_vs_pr1_batch"] = round(
                speedup(recorded, fused_wall), 3)
        results["workloads"][name] = entry
    results["geomean_speedup"] = round(_geomean(
        [w["speedup"] for w in results["workloads"].values()]), 3)
    vs_pr1 = [w["speedup_vs_pr1_batch"]
              for w in results["workloads"].values()
              if "speedup_vs_pr1_batch" in w]
    if vs_pr1:
        results["geomean_speedup_vs_pr1_batch"] = round(_geomean(vs_pr1), 3)
    return results


def run_columnar_benchmark(smoke: bool = False, nodes: int = 8, seed: int = 7,
                           repeats: int = 1,
                           baseline_path: str = "BENCH_5.json") -> Dict:
    """Columnar vs row-at-a-time blocks; returns the BENCH_10 payload.

    Both sides run batch+fused (the columnar backend rides the batch
    pipeline and the fusion pass emits its fused block kernels);
    ``columnar=False`` is exactly the PR 5 fused engine re-measured on
    today's machine.  The run *fails* (AssertionError) if any workload's
    simulated-metrics fingerprint differs between the two — the row path
    is the oracle, and a ``ColumnBlock`` must be a physical layout
    change only.  When ``baseline_path`` exists, each workload also
    reports its speedup against that file's recorded
    ``fused_wall_seconds`` (the PR 5 fused baseline as measured when
    BENCH_5.json was produced — a cross-machine comparison, noisier
    than the same-process columnar-vs-row ratio).
    """
    import os

    baseline: Dict = {}
    if baseline_path and os.path.exists(baseline_path):
        with open(baseline_path) as fh:
            recorded = json.load(fh)
        # Only comparable when the baseline measured the same workload
        # sizes on the same simulated cluster width.
        if (recorded.get("smoke", False) == smoke
                and recorded.get("nodes") == nodes):
            baseline = recorded.get("workloads", {})
    results: Dict = {
        "benchmark": "wallclock-columnar-vs-row",
        "smoke": smoke,
        "nodes": nodes,
        "baseline": baseline_path if baseline else None,
        "workloads": {},
    }
    for name, make_runner in _workloads(smoke, nodes, seed):
        # Interleave columnar/row (alternating order per repeat) so
        # monotone within-process drift penalizes both sides equally.
        runs_col = []
        runs_row = []
        for r in range(repeats):
            order = (False, True) if r % 2 == 0 else (True, False)
            for columnar in order:
                _, wall, metrics = _time_run(make_runner, batch=True,
                                             columnar=columnar)
                (runs_col if columnar else runs_row).append((wall, metrics))
        col_wall = min(wall for wall, _ in runs_col)
        row_wall = min(wall for wall, _ in runs_row)
        fp_col = _metrics_fingerprint(runs_col[0][1])
        fp_row = _metrics_fingerprint(runs_row[0][1])
        if fp_col != fp_row:
            raise AssertionError(
                f"{name}: simulated metrics diverge between columnar and "
                f"row runs — the row path is the oracle\n"
                f"columnar: {fp_col}\nrow:      {fp_row}")
        entry = {
            "columnar_wall_seconds": round(col_wall, 4),
            "row_wall_seconds": round(row_wall, 4),
            "speedup": round(speedup(row_wall, col_wall), 3),
            "simulated_seconds": runs_col[0][1].total_seconds(),
            "strata": runs_col[0][1].num_iterations,
            "simulated_metrics_identical": True,
        }
        recorded = baseline.get(name, {}).get("fused_wall_seconds")
        if recorded:
            entry["pr5_fused_wall_seconds"] = recorded
            entry["speedup_vs_pr5_fused"] = round(
                speedup(recorded, col_wall), 3)
        results["workloads"][name] = entry
    results["geomean_speedup"] = round(_geomean(
        [w["speedup"] for w in results["workloads"].values()]), 3)
    vs_pr5 = [w["speedup_vs_pr5_fused"]
              for w in results["workloads"].values()
              if "speedup_vs_pr5_fused" in w]
    if vs_pr5:
        results["geomean_speedup_vs_pr5_fused"] = round(_geomean(vs_pr5), 3)
    return results


def run_absint_benchmark(smoke: bool = False, nodes: int = 8, seed: int = 7,
                         repeats: int = 1) -> Dict:
    """Proof-directed fast paths on vs off; returns the BENCH_8 payload.

    Two axes per workload, all batch+fused:

    * bare engine — ``absint=True`` (the default: infer proofs, arm the
      retraction-free operator loops) vs ``absint=False`` (the exact
      pre-analysis engine).  The on-side wall *includes* the abstract
      interpretation itself, so the reported speedup is net of the
      analysis cost.
    * ``sanitize="full"`` — same toggle.  With proofs the sanitizer
      downgrades shadow replay and the per-delta legality pass to
      polarity assertions, so this axis is where the analysis pays most.

    The run *fails* (AssertionError) if any workload's simulated-metrics
    fingerprint differs across the four configurations — a proof-directed
    fast path must never change what is computed, only how fast the
    simulator computes it.
    """
    results: Dict = {
        "benchmark": "wallclock-absint-vs-baseline",
        "smoke": smoke,
        "nodes": nodes,
        "workloads": {},
    }
    for name, make_runner in _workloads(smoke, nodes, seed):
        # Interleave on/off (alternating order per repeat) so monotone
        # within-process drift penalizes both sides equally.
        walls: Dict[tuple, List[float]] = {}
        fps: Dict[tuple, tuple] = {}
        sim = None
        for r in range(repeats):
            order = (False, True) if r % 2 == 0 else (True, False)
            for sanitize in ("off", "full"):
                for absint in order:
                    _, wall, m = _time_run(make_runner, batch=True,
                                           sanitize=sanitize, absint=absint)
                    walls.setdefault((sanitize, absint), []).append(wall)
                    fps[(sanitize, absint)] = _metrics_fingerprint(m)
                    sim = m
        base_fp = fps[("off", True)]
        for config, fp in fps.items():
            if fp != base_fp:
                raise AssertionError(
                    f"{name}: simulated metrics diverge at "
                    f"sanitize={config[0]!r} absint={config[1]}\n"
                    f"expected: {base_fp}\ngot:      {fp}")
        on_wall = min(walls[("off", True)])
        off_wall = min(walls[("off", False)])
        san_on = min(walls[("full", True)])
        san_off = min(walls[("full", False)])
        results["workloads"][name] = {
            "absint_wall_seconds": round(on_wall, 4),
            "no_absint_wall_seconds": round(off_wall, 4),
            "speedup": round(speedup(off_wall, on_wall), 3),
            "sanitized_absint_wall_seconds": round(san_on, 4),
            "sanitized_no_absint_wall_seconds": round(san_off, 4),
            "sanitized_speedup": round(speedup(san_off, san_on), 3),
            "simulated_seconds": sim.total_seconds(),
            "strata": sim.num_iterations,
            "simulated_metrics_identical": True,
        }
    results["geomean_speedup"] = round(_geomean(
        [w["speedup"] for w in results["workloads"].values()]), 3)
    results["geomean_sanitized_speedup"] = round(_geomean(
        [w["sanitized_speedup"] for w in results["workloads"].values()]), 3)
    return results


# -- lineage-directed rewrites (BENCH_9) --------------------------------

#: 8-column edge schema for the rewrite workload: only (src, dst) are
#: ever read; the six payload columns exist to be narrowed away.
WIDE_SCHEMA = ["src:Integer", "dst:Integer"] + \
    [f"p{i}:Double" for i in range(6)]


def _wide_vkey(row):
    return (row[0],)


def _wide_pred(row):
    return row[1] % 2 == 0


def _wide_dst(row):
    return (row[1],)


def _wide_rows(n_edges: int, n_vertices: int, seed: int):
    import random

    rng = random.Random(seed)
    return [(rng.randrange(n_vertices), rng.randrange(n_vertices))
            + tuple(float(i + k) for k in range(6))
            for i in range(n_edges)]


def _wide_setup(n_edges: int, n_vertices: int, nodes: int, seed: int,
                rows_out: Optional[Dict] = None):
    """Reachability over wide edges, built so both rewrites fire: the
    edge table is partitioned by ``dst`` but joined on ``src``, so the
    scan-side rehash genuinely moves 8-column rows that filter pushdown
    halves and exchange narrowing truncates to 2 columns.

    ``rows_out``, when given, collects the canonical (sorted) result
    rows per ``options.rewrite`` flag — the row-set identity check that
    replaces fingerprint identity for this deliberately
    metric-non-identical workload."""
    from repro.runtime import PhysicalPlan, QueryExecutor
    from repro.runtime.plan import (PCollect, PFeedback, PFilter,
                                    PFixpoint, PJoin, PProject, PRehash,
                                    PScan)

    cluster = fresh_cluster(nodes)
    cluster.create_table("wide_edges", WIDE_SCHEMA,
                         _wide_rows(n_edges, n_vertices, seed), "dst")
    cluster.create_table("seeds", ["node:Integer"], [(0,)], "node")

    def runner(options: ExecOptions) -> QueryMetrics:
        edges = PFilter.over(
            PRehash.by(PScan("wide_edges"), _wide_vkey), _wide_pred)
        join = PJoin(left_key=_wide_vkey, right_key=_wide_vkey,
                     children=(edges, PFeedback()))
        recursive = PRehash.by(PProject.over(join, _wide_dst), _wide_vkey)
        base = PRehash.by(PScan("seeds"), _wide_vkey)
        root = PCollect(children=(
            PFixpoint(key_fn=_wide_vkey, semantics="keyed",
                      children=(base, recursive)),))
        executor = QueryExecutor(cluster, options)
        result = executor.execute(PhysicalPlan(root))
        if rows_out is not None:
            rows_out[bool(options.rewrite)] = sorted(result.rows)
        return result.metrics

    return runner


def check_rows_identity(name: str, smoke: bool = False, nodes: int = 8,
                        seed: int = 7) -> Dict:
    """Row-set identity for a workload whose simulated metrics are *not*
    rewrite-neutral (``simulated_metrics_identical: false``): run it
    rewrite on and off once each and compare the canonical result rows.

    The regression gate calls this for baseline entries it cannot hold
    to fingerprint identity — silent exemption is not an option, so the
    weaker-but-real contract (same result set) is re-verified instead.
    Raises ``ValueError`` for a workload this harness does not know how
    to drive.
    """
    if name != "wide_reach":
        raise ValueError(f"no row-identity harness for workload {name!r}")
    edges, vertices = (400, 80) if smoke else (12000, 1500)
    rows: Dict[bool, List] = {}
    make_runner = lambda: _wide_setup(edges, vertices, nodes, seed,  # noqa: E731
                                      rows_out=rows)
    for rewrite in (False, True):
        _time_run(make_runner, batch=True, rewrite=rewrite)
    return {
        "workload": name,
        "rows_identical": rows[True] == rows[False],
        "result_rows": len(rows[True]),
    }


def run_rewrite_benchmark(smoke: bool = False, nodes: int = 8, seed: int = 7,
                          repeats: int = 1) -> Dict:
    """Rewrite pass on vs off; returns the BENCH_9 payload.

    Two parts, all batch+fused:

    * the three standard workloads — no rewrite is licensed on any of
      them (their exchange inputs carry δ updates whose key-only rows
      forbid narrowing, and their plans contain no filters), so the pass
      must be *fingerprint-neutral*: the run fails (AssertionError) if
      simulated metrics differ with ``rewrite`` on vs off.  The on-side
      wall includes the lineage inference itself, so the reported ratio
      is the net cost of running the analysis for nothing.
    * ``wide_reach`` — a workload built so filter pushdown and exchange
      narrowing both fire.  Simulated metrics legitimately differ
      (that is the point: fewer, narrower rows cross the wire), so this
      entry reports the wire-bytes and shuffled-tuple reductions plus a
      result-cardinality identity check instead.
    """
    results: Dict = {
        "benchmark": "wallclock-rewrite-vs-baseline",
        "smoke": smoke,
        "nodes": nodes,
        "workloads": {},
    }
    for name, make_runner in _workloads(smoke, nodes, seed):
        # Interleave on/off (alternating order per repeat) so monotone
        # within-process drift penalizes both sides equally.
        walls: Dict[bool, List[float]] = {True: [], False: []}
        fps: Dict[bool, tuple] = {}
        sim = None
        for r in range(repeats):
            order = (False, True) if r % 2 == 0 else (True, False)
            for rewrite in order:
                _, wall, m = _time_run(make_runner, batch=True,
                                       rewrite=rewrite)
                walls[rewrite].append(wall)
                fps[rewrite] = _metrics_fingerprint(m)
                sim = m
        if fps[True] != fps[False]:
            raise AssertionError(
                f"{name}: simulated metrics diverge with the rewrite pass "
                f"on — no rewrite is licensed here, so the pass must be "
                f"neutral\non:  {fps[True]}\noff: {fps[False]}")
        on_wall = min(walls[True])
        off_wall = min(walls[False])
        results["workloads"][name] = {
            "rewrite_wall_seconds": round(on_wall, 4),
            "no_rewrite_wall_seconds": round(off_wall, 4),
            "speedup": round(speedup(off_wall, on_wall), 3),
            "rewrites_applied": 0,
            "simulated_seconds": sim.total_seconds(),
            "strata": sim.num_iterations,
            "simulated_metrics_identical": True,
        }
    results["geomean_speedup"] = round(_geomean(
        [w["speedup"] for w in results["workloads"].values()]), 3)

    if smoke:
        wide_edges, wide_vertices = 400, 80
    else:
        wide_edges, wide_vertices = 12000, 1500
    wide_rows: Dict[bool, List] = {}
    make_wide = lambda: _wide_setup(wide_edges, wide_vertices, nodes, seed,  # noqa: E731
                                    rows_out=wide_rows)
    walls = {True: [], False: []}
    metrics: Dict[bool, QueryMetrics] = {}
    for r in range(repeats):
        order = (False, True) if r % 2 == 0 else (True, False)
        for rewrite in order:
            _, wall, m = _time_run(make_wide, batch=True, rewrite=rewrite)
            walls[rewrite].append(wall)
            metrics[rewrite] = m
    m_on, m_off = metrics[True], metrics[False]
    if wide_rows[True] != wide_rows[False]:
        raise AssertionError(
            "wide_reach: result row set diverges with the rewrite pass on "
            "— simulated metrics may move here, the result set may not")
    if m_on.total_bytes() >= m_off.total_bytes():
        raise AssertionError(
            f"wide_reach: expected a wire-bytes win from narrowing, got "
            f"{m_on.total_bytes()} vs {m_off.total_bytes()}")
    on_wall = min(walls[True])
    off_wall = min(walls[False])
    results["workloads"]["wide_reach"] = {
        "rewrite_wall_seconds": round(on_wall, 4),
        "no_rewrite_wall_seconds": round(off_wall, 4),
        "speedup": round(speedup(off_wall, on_wall), 3),
        "bytes_sent": m_on.total_bytes(),
        "bytes_sent_no_rewrite": m_off.total_bytes(),
        "wire_bytes_reduction_pct": round(
            (1.0 - m_on.total_bytes() / m_off.total_bytes()) * 100.0, 2),
        "tuples_processed": m_on.total_tuples(),
        "tuples_processed_no_rewrite": m_off.total_tuples(),
        "result_rows": m_on.result_rows,
        "simulated_seconds": m_on.total_seconds(),
        "strata": m_on.num_iterations,
        "simulated_metrics_identical": False,
        # The contract this entry is held to instead of fingerprint
        # identity (asserted above; the regress gate re-verifies it).
        "rows_identical": True,
    }
    return results


#: Configurations the telemetry benchmark times, in rotation order.
_TELEMETRY_CONFIGS = ("plain", "flight", "obs", "telemetry")


def run_telemetry_benchmark(smoke: bool = False, nodes: int = 8,
                            seed: int = 7, repeats: int = 1) -> Dict:
    """Live-telemetry overhead; returns the BENCH_7 payload.

    Four configurations per workload, all batch+fused:

    * ``plain`` — ``ExecOptions(flight=False)``, no obs: the bare engine;
    * ``flight`` — the default run path (flight recorder on, no obs):
      its overhead vs ``plain`` is the cost every run now pays;
    * ``obs`` — an ObsContext with the tracer disabled and
      ``telemetry=False``: PR 2's instrumentation shape;
    * ``telemetry`` — the same context with the sampler on (the new
      default): its overhead vs ``obs`` is the sampler's own cost.

    The run *fails* (AssertionError) if any configuration's
    simulated-metrics fingerprint differs from ``plain`` — telemetry and
    flight recording are charge-neutral by contract.  Acceptance: both
    overheads ≤ 5% on PageRank.
    """
    from repro.obs import ObsContext, Tracer

    results: Dict = {
        "benchmark": "wallclock-telemetry-overhead",
        "smoke": smoke,
        "nodes": nodes,
        "workloads": {},
    }
    configs = _TELEMETRY_CONFIGS
    for name, make_runner in _workloads(smoke, nodes, seed):
        walls: Dict[str, List[float]] = {c: [] for c in configs}
        fps: Dict[str, tuple] = {}
        sim = None
        for r in range(repeats):
            # Rotate the config order per repeat so monotone within-process
            # drift penalizes every configuration equally.
            k = r % len(configs)
            for config in configs[k:] + configs[:k]:
                if config == "plain":
                    _, wall, m = _time_run(make_runner, batch=True,
                                           flight=False)
                elif config == "flight":
                    _, wall, m = _time_run(make_runner, batch=True)
                else:
                    obs = ObsContext(tracer=Tracer(enabled=False),
                                     telemetry=(config == "telemetry"))
                    _, wall, m = _time_run(make_runner, batch=True, obs=obs,
                                           flight=False)
                walls[config].append(wall)
                fps[config] = _metrics_fingerprint(m)
                sim = m
        base_fp = fps["plain"]
        for config in configs:
            if fps[config] != base_fp:
                raise AssertionError(
                    f"{name}: simulated metrics diverge with {config} "
                    f"observability\nplain: {base_fp}\n"
                    f"{config}: {fps[config]}")
        plain = min(walls["plain"])
        flight_wall = min(walls["flight"])
        obs_wall = min(walls["obs"])
        telemetry_wall = min(walls["telemetry"])

        def _pct(measured: float, base: float):
            return (round((measured - base) / base * 100.0, 2)
                    if base > 0 else None)

        results["workloads"][name] = {
            "baseline_wall_seconds": round(plain, 4),
            "flight_wall_seconds": round(flight_wall, 4),
            "flight_overhead_pct": _pct(flight_wall, plain),
            "obs_wall_seconds": round(obs_wall, 4),
            "telemetry_wall_seconds": round(telemetry_wall, 4),
            "telemetry_overhead_pct": _pct(telemetry_wall, obs_wall),
            "simulated_seconds": sim.total_seconds(),
            "strata": sim.num_iterations,
            "simulated_metrics_identical": True,
        }
    return results


def _emit_traces(make_runner: Callable, name: str, trace_dir: str) -> Dict:
    """One fully-traced (untimed) batch run; writes JSONL + Chrome JSON."""
    import os

    from repro.obs import (JsonlSink, ObsContext, RingBufferSink, Tracer,
                           chrome_trace)

    os.makedirs(trace_dir, exist_ok=True)
    jsonl_path = os.path.join(trace_dir, f"{name}.trace.jsonl")
    chrome_path = os.path.join(trace_dir, f"{name}.chrome.json")
    obs = ObsContext(tracer=Tracer(
        sinks=[RingBufferSink(), JsonlSink(jsonl_path)]))
    try:
        make_runner()(ExecOptions(batch=True, obs=obs))
        with open(chrome_path, "w") as fh:
            json.dump(chrome_trace(obs.tracer.events()), fh)
    finally:
        obs.close()
    return {"jsonl": jsonl_path, "chrome": chrome_path}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Wall-clock benchmark: batch vs per-tuple execution")
    parser.add_argument("--out", default=None,
                        help="write results JSON to this path")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny datasets (CI smoke run)")
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=1,
                        help="timing repeats per mode (min is reported)")
    parser.add_argument("--trace-dir", default=None,
                        help="write per-workload trace files (JSONL + "
                             "Chrome trace JSON) into this directory")
    parser.add_argument("--measure-obs", action="store_true",
                        help="also measure observability overhead with the "
                             "tracer disabled (reported per workload)")
    parser.add_argument("--measure-sanitizer", action="store_true",
                        help="also measure runtime-sanitizer overhead at "
                             "sample and full level (reported per workload)")
    parser.add_argument("--fusion", action="store_true",
                        help="measure fused vs unfused execution instead of "
                             "batch vs per-tuple (the BENCH_5 payload; "
                             "fails if simulated metrics differ)")
    parser.add_argument("--telemetry", action="store_true",
                        help="measure flight-recorder and live-telemetry "
                             "overhead instead (the BENCH_7 payload; fails "
                             "if simulated metrics differ)")
    parser.add_argument("--absint", action="store_true",
                        help="measure the abstract-interpretation "
                             "proof-directed fast paths on vs off (the "
                             "BENCH_8 payload; fails if simulated metrics "
                             "differ)")
    parser.add_argument("--rewrites", action="store_true",
                        help="measure the lineage-directed rewrite pass on "
                             "vs off (the BENCH_9 payload; fails if "
                             "simulated metrics differ on the standard "
                             "workloads, where no rewrite is licensed)")
    parser.add_argument("--columnar", action="store_true",
                        help="measure the columnar block backend on vs off "
                             "(the BENCH_10 payload; fails if simulated "
                             "metrics differ — the row path is the oracle)")
    parser.add_argument("--baseline", default=None,
                        help="with --fusion (default BENCH_1.json): JSON "
                             "whose recorded batch_wall_seconds serve as "
                             "the PR 1 comparison point; with --columnar "
                             "(default BENCH_5.json): JSON whose recorded "
                             "fused_wall_seconds serve as the PR 5 "
                             "comparison point (skipped if missing)")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    if sum((args.fusion, args.telemetry, args.absint, args.rewrites,
            args.columnar)) > 1:
        parser.error("--fusion, --telemetry, --absint, --rewrites and "
                     "--columnar are mutually exclusive")
    if args.columnar:
        results = run_columnar_benchmark(
            smoke=args.smoke, nodes=args.nodes, seed=args.seed,
            repeats=args.repeats,
            baseline_path=args.baseline or "BENCH_5.json")
    elif args.rewrites:
        results = run_rewrite_benchmark(smoke=args.smoke, nodes=args.nodes,
                                        seed=args.seed,
                                        repeats=args.repeats)
    elif args.absint:
        results = run_absint_benchmark(smoke=args.smoke, nodes=args.nodes,
                                       seed=args.seed, repeats=args.repeats)
    elif args.telemetry:
        results = run_telemetry_benchmark(smoke=args.smoke, nodes=args.nodes,
                                          seed=args.seed,
                                          repeats=args.repeats)
    elif args.fusion:
        results = run_fusion_benchmark(
            smoke=args.smoke, nodes=args.nodes, seed=args.seed,
            repeats=args.repeats,
            baseline_path=args.baseline or "BENCH_1.json")
    else:
        results = run_benchmark(smoke=args.smoke, nodes=args.nodes,
                                seed=args.seed, repeats=args.repeats,
                                trace_dir=args.trace_dir,
                                measure_obs=args.measure_obs,
                                measure_sanitizer=args.measure_sanitizer)
    text = json.dumps(results, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    print(text)
    if args.columnar:
        for name, row in results["workloads"].items():
            vs_pr5 = (f", {row['speedup_vs_pr5_fused']}x vs PR 5 fused"
                      if "speedup_vs_pr5_fused" in row else "")
            print(f"{name}: {row['speedup']}x "
                  f"({row['row_wall_seconds']}s -> "
                  f"{row['columnar_wall_seconds']}s{vs_pr5})")
        print(f"geomean: {results['geomean_speedup']}x columnar vs row")
    elif args.rewrites:
        for name, row in results["workloads"].items():
            line = (f"{name}: {row['speedup']}x "
                    f"({row['no_rewrite_wall_seconds']}s -> "
                    f"{row['rewrite_wall_seconds']}s)")
            if "wire_bytes_reduction_pct" in row:
                line += (f", wire bytes -{row['wire_bytes_reduction_pct']}% "
                         f"({row['bytes_sent_no_rewrite']} -> "
                         f"{row['bytes_sent']})")
            print(line)
        print(f"geomean (standard workloads): "
              f"{results['geomean_speedup']}x")
    elif args.absint:
        for name, row in results["workloads"].items():
            print(f"{name}: {row['speedup']}x bare "
                  f"({row['no_absint_wall_seconds']}s -> "
                  f"{row['absint_wall_seconds']}s), "
                  f"{row['sanitized_speedup']}x sanitized "
                  f"({row['sanitized_no_absint_wall_seconds']}s -> "
                  f"{row['sanitized_absint_wall_seconds']}s)")
        print(f"geomean: {results['geomean_speedup']}x bare, "
              f"{results['geomean_sanitized_speedup']}x sanitized")
    elif args.telemetry:
        for name, row in results["workloads"].items():
            print(f"{name}: flight {row['flight_overhead_pct']}% "
                  f"({row['baseline_wall_seconds']}s -> "
                  f"{row['flight_wall_seconds']}s), telemetry "
                  f"{row['telemetry_overhead_pct']}% "
                  f"({row['obs_wall_seconds']}s -> "
                  f"{row['telemetry_wall_seconds']}s)")
    elif args.fusion:
        for name, row in results["workloads"].items():
            vs_pr1 = (f", {row['speedup_vs_pr1_batch']}x vs PR 1 batch"
                      if "speedup_vs_pr1_batch" in row else "")
            print(f"{name}: {row['speedup']}x "
                  f"({row['unfused_wall_seconds']}s -> "
                  f"{row['fused_wall_seconds']}s{vs_pr1})")
        print(f"geomean: {results['geomean_speedup']}x fused vs unfused")
    else:
        for name, row in results["workloads"].items():
            print(f"{name}: {row['speedup']}x "
                  f"({row['per_tuple_wall_seconds']}s -> "
                  f"{row['batch_wall_seconds']}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
