"""Figures 8(a)/8(b): PageRank on the Twitter-like graph.

The larger, denser dataset compared across the best alternatives: Hadoop
LB, HaLoop LB, REX Δ.  Paper findings: REX delta outperforms HaLoop by ~3x
and Hadoop by ~7x; per-iteration times for the LB methods stay flat while
REX Δ's decay with the Δᵢ set.
"""

from __future__ import annotations

from repro.algorithms import run_pagerank
from repro.bench.common import (
    TWITTER_DEGREE,
    TWITTER_VERTICES,
    FigureResult,
    Series,
    fresh_cluster,
    scaled_cost_model,
    speedup,
)
from repro.datasets import twitter_like
from repro.hadoop import hadoop_pagerank

PAPER_TWITTER_EDGES = 1_400_000_000


def run(n_vertices: int = TWITTER_VERTICES, degree: float = TWITTER_DEGREE,
        nodes: int = 8, tol: float = 0.01, seed: int = 13) -> FigureResult:
    edges = twitter_like(n_vertices, avg_out_degree=degree, seed=seed)
    cm = scaled_cost_model(PAPER_TWITTER_EDGES / len(edges))

    cluster = fresh_cluster(nodes, cm)
    cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                         edges, "srcId", replication=2)
    delta_scores, delta_m = run_pagerank(cluster, mode="delta", tol=tol)
    iterations = delta_m.num_iterations
    mr_iterations = max(1, iterations - 1)

    hadoop_scores, hadoop_m = hadoop_pagerank(
        fresh_cluster(nodes, cm), edges, iterations=mr_iterations)
    _, haloop_m = hadoop_pagerank(fresh_cluster(nodes, cm), edges,
                                  iterations=mr_iterations, haloop=True)
    for v, score in hadoop_scores.items():
        assert abs(delta_scores[v] - score) < 0.05 * abs(score) + 1e-6

    metrics = {"Hadoop LB": hadoop_m, "HaLoop LB": haloop_m,
               "REX Δ": delta_m}
    totals = {k: m.total_seconds() for k, m in metrics.items()}
    return FigureResult(
        figure="Figure 8",
        title="PageRank (Twitter-like): cumulative (a) and per-iteration "
              "(b) runtime",
        series=[Series(k, m.cumulative_seconds()) for k, m in metrics.items()]
        + [Series(f"{k} (per-iter)", m.per_iteration_seconds())
           for k, m in metrics.items()],
        headline={
            "delta_vs_haloop": speedup(totals["HaLoop LB"], totals["REX Δ"]),
            "delta_vs_hadoop": speedup(totals["Hadoop LB"], totals["REX Δ"]),
            "iterations": float(iterations),
        },
        notes=[f"{n_vertices} vertices / {len(edges)} edges on {nodes} "
               "nodes; paper: 41M vertices / 1.4B edges on 28 nodes",
               "paper: REX Δ ~3x HaLoop, ~7x Hadoop"],
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().format_table())
