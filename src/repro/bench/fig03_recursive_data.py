"""Figure 3 (table): types of recursive data per algorithm.

The paper characterizes each algorithm by its immutable set, mutable set,
and Δᵢ set.  This experiment *measures* those sets on live runs — the
immutable relation's size, the mutable (fixpoint) relation's size, and the
Δᵢ trajectory — verifying that the implementations have the structure the
paper's table claims (e.g. the K-means Δᵢ is "nodes which switched
centroids", which manifests as adjustment traffic, not point updates).
"""

from __future__ import annotations

from repro.algorithms import (
    make_start_table,
    run_adsorption,
    run_kmeans,
    run_pagerank,
    run_sssp,
)
from repro.bench.common import FigureResult, Series, fresh_cluster
from repro.datasets import dbpedia_like, geo_points, sample_centroids


def run(nodes: int = 4, seed: int = 71) -> FigureResult:
    edges = dbpedia_like(800, avg_out_degree=6, seed=seed)
    series = []
    headline = {}

    # PageRank: immutable = edges; mutable = PR per vertex; Δi shrinks.
    cluster = fresh_cluster(nodes)
    cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                         edges, "srcId")
    _, pr_m = run_pagerank(cluster, tol=0.01)
    series.append(Series("PageRank Δi", [float(d) for d in pr_m.delta_series()]))
    headline["pagerank_immutable"] = float(len(edges))
    headline["pagerank_mutable"] = float(pr_m.iterations[-1].mutable_size)
    headline["pagerank_delta_peak"] = float(max(pr_m.delta_series()))

    # Shortest path: Δi is the frontier.
    cluster = fresh_cluster(nodes)
    cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                         edges, "srcId")
    make_start_table(cluster, 0)
    _, sp_m = run_sssp(cluster)
    series.append(Series("Shortest-path Δi (frontier)",
                         [float(d) for d in sp_m.delta_series()]))
    headline["sssp_immutable"] = float(len(edges))
    headline["sssp_mutable"] = float(sp_m.iterations[-1].mutable_size)

    # K-means: Δi is centroid movement driven by switching points.
    points = geo_points(600, n_clusters=5, seed=seed)
    centroids = sample_centroids(points, 5, seed=seed + 1)
    cluster = fresh_cluster(nodes)
    cluster.create_table("points", ["pid:Integer", "x:Double", "y:Double"],
                         points, None)
    cluster.create_table("centroids0", ["cid:Integer", "x:Double", "y:Double"],
                         centroids, "cid")
    _, km_m = run_kmeans(cluster)
    series.append(Series("K-means Δi (moved centroids)",
                         [float(d) for d in km_m.delta_series()]))
    headline["kmeans_immutable"] = float(len(points))
    headline["kmeans_mutable"] = float(km_m.iterations[-1].mutable_size)

    # Adsorption: Δi is label-vector positions changing >= tol.
    seeds = {(0, "A"): 1.0, (5, "B"): 1.0}
    cluster = fresh_cluster(nodes)
    cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                         edges, "srcId")
    cluster.create_table("labels", ["v:Integer", "label:Varchar", "w:Double"],
                         [(v, l, w) for (v, l), w in seeds.items()], "v")
    _, ad_m = run_adsorption(cluster, seeds, tol=0.01)
    series.append(Series("Adsorption Δi (label positions)",
                         [float(d) for d in ad_m.delta_series()]))
    headline["adsorption_immutable"] = float(len(edges))
    headline["adsorption_mutable"] = float(ad_m.iterations[-1].mutable_size)

    return FigureResult(
        figure="Figure 3",
        title="Types of recursive data: measured immutable/mutable/Δi sets",
        series=series,
        headline=headline,
        notes=["immutable sets stay constant (graph edges / point set); "
               "mutable sets are one row per vertex/centroid; Δi sets "
               "shrink toward zero for every algorithm"],
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().format_table())
