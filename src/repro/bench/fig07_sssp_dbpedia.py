"""Figures 7(a)/7(b): shortest path on the DBPedia-like graph.

Hadoop LB and HaLoop LB use relation-level Δᵢ (frontier) updates, as the
paper grants them.  "Although both graphs show execution of only six
iterations, the diameter of the DBPedia graph is so large it requires 75
iterations to compute full reachability.  For all methods except REX delta
we perform only six iterations, enough to provide 99% reachability.  REX
delta itself performs all ... iterations, with iterations 7 to 75 taking
under 1s in combined time."  Paper findings: REX Δ ~2x REX no-Δ and ~10x
HaLoop; REX wrap ~2x faster than HaLoop.
"""

from __future__ import annotations

from repro.algorithms import make_start_table, run_sssp, sssp_reference
from repro.bench.common import (
    DBPEDIA_DEGREE,
    DBPEDIA_VERTICES,
    FigureResult,
    Series,
    fresh_cluster,
    scaled_cost_model,
    speedup,
)
from repro.datasets import dbpedia_like
from repro.hadoop import hadoop_sssp
from repro.hadoop.rex_wrap import rex_wrap_sssp
from repro.runtime import ExecOptions

PAPER_DBPEDIA_EDGES = 48_000_000
LB_ITERATIONS = 6  # "enough to provide 99% reachability"


def graph_cluster(edges, nodes, cm):
    cluster = fresh_cluster(nodes, cm)
    cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                         edges, "srcId", replication=2)
    make_start_table(cluster, 0)
    return cluster


def run(n_vertices: int = DBPEDIA_VERTICES, degree: float = DBPEDIA_DEGREE,
        nodes: int = 8, seed: int = 7) -> FigureResult:
    edges = dbpedia_like(n_vertices, avg_out_degree=degree, seed=seed)
    cm = scaled_cost_model(PAPER_DBPEDIA_EDGES / len(edges))
    reference = sssp_reference(edges, 0)
    eccentricity = max(reference.values())

    # REX Δ computes full reachability (all iterations).
    delta_dists, delta_m = run_sssp(graph_cluster(edges, nodes, cm))
    assert {v: d for v, (_, d) in delta_dists.items()} == {
        v: float(d) for v, d in reference.items()}

    # REX no-Δ: re-feeds the whole distance relation, 6 iterations.
    nodelta_opts = ExecOptions(feedback_mode="full",
                               max_strata=LB_ITERATIONS + 1)
    _, nodelta_m = run_sssp(graph_cluster(edges, nodes, cm),
                            options=nodelta_opts)

    # REX wrap: the Hadoop SSSP classes inside REX, 6 iterations.
    _, wrap_m = rex_wrap_sssp(graph_cluster(edges, nodes, cm),
                              LB_ITERATIONS + 1)

    # Hadoop / HaLoop with frontier (relation-level Δ) updates.
    hadoop_dists, hadoop_m = hadoop_sssp(fresh_cluster(nodes, cm), edges, 0,
                                         max_iterations=LB_ITERATIONS)
    _, haloop_m = hadoop_sssp(fresh_cluster(nodes, cm), edges, 0,
                              max_iterations=LB_ITERATIONS, haloop=True)
    coverage = len(hadoop_dists) / len(reference)

    metrics = {
        "Hadoop LB": hadoop_m,
        "HaLoop LB": haloop_m,
        "REX wrap": wrap_m,
        "REX no Δ": nodelta_m,
        "REX Δ": delta_m,
    }
    totals = {k: m.total_seconds() for k, m in metrics.items()}
    tail = sum(delta_m.per_iteration_seconds()[LB_ITERATIONS + 1:])
    return FigureResult(
        figure="Figure 7",
        title="Shortest path (DBPedia-like): cumulative (a) and "
              "per-iteration (b) runtime",
        series=[Series(k, m.cumulative_seconds())
                for k, m in metrics.items()]
        + [Series(f"{k} (per-iter)", m.per_iteration_seconds())
           for k, m in metrics.items()],
        headline={
            "delta_vs_haloop": speedup(totals["HaLoop LB"], totals["REX Δ"]),
            "delta_vs_nodelta": speedup(totals["REX no Δ"], totals["REX Δ"]),
            "wrap_vs_haloop": speedup(totals["HaLoop LB"], totals["REX wrap"]),
            "eccentricity": float(eccentricity),
            "lb_coverage": coverage,
            "delta_tail_seconds": tail,
            "delta_total_seconds": totals["REX Δ"],
        },
        notes=[f"REX Δ runs all {delta_m.num_iterations} iterations (full "
               f"reachability, eccentricity {eccentricity}); lower-bound "
               f"methods run {LB_ITERATIONS} iterations covering "
               f"{coverage:.0%}",
               "paper: REX Δ ~2x no-Δ, ~10x HaLoop; tail iterations nearly "
               "free for REX Δ"],
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().format_table())
