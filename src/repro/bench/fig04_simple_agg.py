"""Figure 4: UDF overhead on a simple OLAP query.

``SELECT sum(tax), count(*) FROM lineitem WHERE linenumber > 1`` executed
four ways: REX with built-in operators, REX with the same logic as 2 UDAs +
1 UDF predicate, REX wrap (the Hadoop classes through wrapper UDFs/UDAs),
and native Hadoop.  Paper findings: built-in and UDF REX beat Hadoop by
more than 3x; UDF/wrap cost at most ~10% over their native counterparts.
"""

from __future__ import annotations

from repro.bench.common import (
    LINEITEM_ROWS,
    FigureResult,
    Series,
    fresh_cluster,
    scaled_cost_model,
    speedup,
)

PAPER_LINEITEM_ROWS = 60_000_000
from repro.datasets import lineitem
from repro.datasets.tpch import LINEITEM_SCHEMA
from repro.hadoop import hadoop_simple_agg, rex_wrap_simple_agg
from repro.rql import RQLSession
from repro.udf import Count, Sum, udf


class UserSum(Sum):
    """SUM reimplemented as a user-defined aggregator: same logic, but
    charged the UDC invocation cost per delta like any user code."""

    name = "usersum"

    @staticmethod
    def per_delta_cost(cost) -> float:
        return cost.udf_cost_per_tuple(batched=True)


class UserCount(Count):
    name = "usercount"

    @staticmethod
    def per_delta_cost(cost) -> float:
        return cost.udf_cost_per_tuple(batched=True)


@udf(in_types=["Integer"], out_types=["Boolean"], selectivity=6.0 / 7.0)
def line_gt1(linenumber):
    """The selection predicate as a user-defined function."""
    return linenumber > 1


def _lineitem_cluster(rows, nodes, cost_model):
    cluster = fresh_cluster(nodes, cost_model)
    cluster.create_table("lineitem", LINEITEM_SCHEMA, rows, None)
    return cluster


def run(n_rows: int = LINEITEM_ROWS, nodes: int = 8) -> FigureResult:
    cost_model = scaled_cost_model(PAPER_LINEITEM_ROWS / n_rows)
    rows = lineitem(n_rows)
    expected_count = sum(1 for r in rows if r[1] > 1)
    expected_sum = sum(r[5] for r in rows if r[1] > 1)

    def check(total, count):
        assert count == expected_count, "wrong aggregation result"
        assert abs(total - expected_sum) < 1e-6 * max(1.0, abs(expected_sum))

    # REX built-in.
    session = RQLSession(_lineitem_cluster(rows, nodes, cost_model))
    r = session.execute(
        "SELECT sum(tax), count(*) FROM lineitem WHERE linenumber > 1")
    check(*r.rows[0])
    builtin_secs = r.metrics.total_seconds()

    # REX with user-defined aggregates and predicate.
    session = RQLSession(_lineitem_cluster(rows, nodes, cost_model))
    session.register(UserSum)
    session.register(UserCount)
    session.register(line_gt1)
    r = session.execute(
        "SELECT usersum(tax), usercount(*) FROM lineitem "
        "WHERE line_gt1(linenumber)")
    check(*r.rows[0])
    udf_secs = r.metrics.total_seconds()

    # REX wrap: the Hadoop classes inside REX.
    (total, count), wrap_m = rex_wrap_simple_agg(
        _lineitem_cluster(rows, nodes, cost_model))
    check(total, count)
    wrap_secs = wrap_m.total_seconds()

    # Native Hadoop.
    (total, count), hadoop_m = hadoop_simple_agg(
        fresh_cluster(nodes, cost_model), rows)
    check(total, count)
    hadoop_secs = hadoop_m.total_seconds()

    result = FigureResult(
        figure="Figure 4",
        title="Standard aggregation (TPC-H), runtime by configuration",
        series=[
            Series("REX built-in", [builtin_secs]),
            Series("REX UDF", [udf_secs]),
            Series("REX wrap", [wrap_secs]),
            Series("Hadoop", [hadoop_secs]),
        ],
        headline={
            "rex_vs_hadoop_speedup": speedup(hadoop_secs, builtin_secs),
            "udf_overhead_pct": 100.0 * (udf_secs / builtin_secs - 1.0),
            "wrap_vs_hadoop_speedup": speedup(hadoop_secs, wrap_secs),
        },
        notes=[f"{n_rows} lineitem rows on {nodes} nodes; paper: 60M rows "
               "(10GB) on 28 nodes",
               "paper: built-in and REX >3x faster than Hadoop; UDF/wrap "
               "within 10% of native counterparts"],
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().format_table())
