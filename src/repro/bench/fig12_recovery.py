"""Figure 12: recovery from node failure (shortest path, DBPedia-like).

A node fails after iteration k (k swept over the first iterations); the
query completes either by restarting from scratch on the survivors
("Restart") or by resuming from the replicated Δ-set checkpoints
("Incremental"), compared against a failure-free run.  Paper findings:
"the incremental strategy halves the recovery overhead as compared with
[restart]"; incremental also guarantees forward progress under repeated
failures.  Replication factor 3, as in the paper.
"""

from __future__ import annotations

from typing import List

from repro.algorithms import make_start_table, run_sssp, sssp_reference
from repro.bench.common import (
    FigureResult,
    Series,
    fresh_cluster,
    scaled_cost_model,
)
from repro.datasets import dbpedia_like
from repro.runtime import ExecOptions, FailureSpec

PAPER_DBPEDIA_EDGES = 48_000_000
DEFAULT_FAILURE_POINTS = (1, 3, 5, 8, 12, 16, 20)


def _cluster(edges, nodes, cm):
    cluster = fresh_cluster(nodes, cm)
    cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                         edges, "srcId", replication=3)
    make_start_table(cluster, 0)
    return cluster


def run(n_vertices: int = 2000, degree: float = 8.0, nodes: int = 8,
        failure_points=DEFAULT_FAILURE_POINTS, seed: int = 7
        ) -> FigureResult:
    edges = dbpedia_like(n_vertices, avg_out_degree=degree, seed=seed)
    cm = scaled_cost_model(PAPER_DBPEDIA_EDGES / len(edges))
    expected = {v: float(d) for v, d in sssp_reference(edges, 0).items()}

    _, clean_m = run_sssp(_cluster(edges, nodes, cm))
    baseline = clean_m.total_seconds()

    restart_times: List[float] = []
    incremental_times: List[float] = []
    for k in failure_points:
        got, m = run_sssp(_cluster(edges, nodes, cm), options=ExecOptions(
            failure=FailureSpec(after_stratum=k), recovery="restart"))
        assert {v: d for v, (_, d) in got.items()} == expected
        restart_times.append(m.total_seconds())

        got, m = run_sssp(_cluster(edges, nodes, cm), options=ExecOptions(
            failure=FailureSpec(after_stratum=k), recovery="incremental"))
        assert {v: d for v, (_, d) in got.items()} == expected
        incremental_times.append(m.total_seconds())

    xs = [float(k) for k in failure_points]
    avg_restart_overhead = (sum(restart_times) / len(restart_times)
                            - baseline)
    avg_incremental_overhead = (sum(incremental_times)
                                / len(incremental_times) - baseline)
    return FigureResult(
        figure="Figure 12",
        title="Recovery: total runtime vs failure iteration "
              "(SSSP, DBPedia-like, replication 3)",
        series=[
            Series("Restart", restart_times, x=xs),
            Series("Incremental", incremental_times, x=xs),
            Series("No failure", [baseline] * len(xs), x=xs),
        ],
        headline={
            "no_failure_seconds": baseline,
            "avg_restart_overhead": avg_restart_overhead,
            "avg_incremental_overhead": avg_incremental_overhead,
            "overhead_ratio": (avg_restart_overhead
                               / max(avg_incremental_overhead, 1e-12)),
        },
        notes=["results verified bit-identical to the failure-free run "
               "for every strategy and failure point",
               "paper: incremental halves the recovery overhead vs "
               "restart"],
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().format_table())
