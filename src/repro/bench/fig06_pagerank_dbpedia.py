"""Figures 6(a)/6(b): PageRank on the DBPedia-like graph, five strategies.

Hadoop LB, HaLoop LB, REX wrap, REX no-Δ, REX Δ; cumulative and
per-iteration runtimes.  Paper findings: REX Δ outperforms HaLoop by ~10x
and REX no-Δ by ~4x; all strategies except Hadoop and REX Δ drop by ~2x
after the first iteration then stay flat, while REX Δ keeps shrinking with
the Δᵢ set; REX wrap is nearly twice as fast as HaLoop.
"""

from __future__ import annotations

from typing import Dict

from repro.algorithms import run_pagerank
from repro.bench.common import (
    DBPEDIA_DEGREE,
    DBPEDIA_VERTICES,
    FigureResult,
    Series,
    fresh_cluster,
    scaled_cost_model,
    speedup,
)

PAPER_DBPEDIA_EDGES = 48_000_000
from repro.datasets import dbpedia_like
from repro.hadoop import hadoop_pagerank, rex_wrap_pagerank

GRAPH_SCHEMA = ["srcId:Integer", "destId:Integer"]


def graph_cluster(edges, nodes, cost_model=None):
    cluster = fresh_cluster(nodes, cost_model)
    cluster.create_table("graph", GRAPH_SCHEMA, edges, "srcId",
                         replication=2)
    return cluster


def run(n_vertices: int = DBPEDIA_VERTICES, degree: float = DBPEDIA_DEGREE,
        nodes: int = 8, tol: float = 0.01, seed: int = 7) -> FigureResult:
    edges = dbpedia_like(n_vertices, avg_out_degree=degree, seed=seed)
    cm = scaled_cost_model(PAPER_DBPEDIA_EDGES / len(edges))

    # REX Δ runs to convergence and sets the iteration count for everyone.
    delta_scores, delta_m = run_pagerank(graph_cluster(edges, nodes, cm),
                                         mode="delta", tol=tol)
    iterations = delta_m.num_iterations
    # REX stratum 0 is the base case; the MapReduce drivers' iterations are
    # all full power steps, so they run one fewer.
    mr_iterations = max(1, iterations - 1)

    nodelta_scores, nodelta_m = run_pagerank(
        graph_cluster(edges, nodes, cm), mode="nodelta", max_strata=iterations)
    wrap_scores, wrap_m = rex_wrap_pagerank(graph_cluster(edges, nodes, cm),
                                            iterations)
    hadoop_scores, hadoop_m = hadoop_pagerank(fresh_cluster(nodes, cm), edges,
                                              iterations=mr_iterations)
    _, haloop_m = hadoop_pagerank(fresh_cluster(nodes, cm), edges,
                                  iterations=mr_iterations, haloop=True)

    # Cross-validate: every strategy converges to the same scores.
    for v, score in hadoop_scores.items():
        assert abs(nodelta_scores[v] - score) < 1e-6, v
        assert abs(wrap_scores[v] - score) < 1e-6, v
        assert abs(delta_scores[v] - score) < 0.05 * abs(score) + 1e-6, v

    metrics: Dict[str, object] = {
        "Hadoop LB": hadoop_m,
        "HaLoop LB": haloop_m,
        "REX wrap": wrap_m,
        "REX no Δ": nodelta_m,
        "REX Δ": delta_m,
    }
    cumulative = [Series(label, m.cumulative_seconds())
                  for label, m in metrics.items()]
    per_iteration = [Series(f"{label} (per-iter)",
                            m.per_iteration_seconds())
                     for label, m in metrics.items()]
    totals = {label: m.total_seconds() for label, m in metrics.items()}
    return FigureResult(
        figure="Figure 6",
        title="PageRank (DBPedia-like): cumulative (a) and per-iteration "
              "(b) runtime",
        series=cumulative + per_iteration,
        headline={
            "delta_vs_haloop": speedup(totals["HaLoop LB"], totals["REX Δ"]),
            "delta_vs_nodelta": speedup(totals["REX no Δ"], totals["REX Δ"]),
            "delta_vs_hadoop": speedup(totals["Hadoop LB"], totals["REX Δ"]),
            "wrap_vs_haloop": speedup(totals["HaLoop LB"], totals["REX wrap"]),
            "iterations": float(iterations),
        },
        notes=[f"{n_vertices} vertices / {len(edges)} edges on {nodes} "
               "nodes; paper: 3.3M vertices / 48M edges on 28 nodes",
               "paper: REX Δ ~10x HaLoop, ~4x no-Δ; wrap ~2x HaLoop"],
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().format_table())
