"""Delta-based single-source shortest path (Listing 2 of the paper).

The Δᵢ set is the frontier: "vertices with minimum distance from source at
iteration i lower than their distance at iteration i-1" (Figure 3).  The
plan mirrors Listing 2:

* base case: the start vertex with distance 0 (and parent -1);
* recursive case: the fixpoint feeds improved ``(v, parent, dist)`` rows
  into a join with the edge relation, where :class:`SPAgg` keeps the best
  known distance per vertex in its bucket and, on improvement, offers
  ``dist + 1`` to every out-neighbour;
* an ArgMin group-by per target vertex picks the best offer (and the
  parent pointer that achieved it, giving the shortest-path tree);
* a monotone while-handler on the fixpoint admits a vertex only when its
  distance strictly improves — distances only ever decrease, which is also
  what makes replay-based incremental recovery exact for this query.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.metrics import QueryMetrics
from repro.common.deltas import Delta, DeltaOp, insert
from repro.runtime import (
    ExecOptions,
    PFeedback,
    PFixpoint,
    PGroupBy,
    PJoin,
    PProject,
    PRehash,
    PScan,
    PhysicalPlan,
    QueryExecutor,
)
from repro.udf import AggregateSpec, ArgMin
from repro.udf.aggregates import JoinDeltaHandler, WhileDeltaHandler

INFINITY = float("inf")


class SPAgg(JoinDeltaHandler):
    """The paper's shortest-path join delta handler (Listing 2).

    Left bucket: out-edges ``(srcId, destId)`` of this vertex.  Right
    bucket: the vertex's best known ``(v, parent, dist)`` row.  A strictly
    better distance updates the bucket and offers ``dist + 1`` onward.
    """

    name = "SPAgg"
    in_types = ("Integer", "Double")
    out_types = ("nbr:Integer", "parent:Integer", "distOut:Double")
    replay_idempotent = True  # keeps only the min distance; replay is a no-op
    emits_polarity = frozenset({DeltaOp.INSERT})  # offers are pure insertions
    reads = (0, 1, 2)  # unpacks the full (v, parent, dist) row

    def update(self, left_bucket, right_bucket, delta, side):
        v, parent, dist = delta.row
        prev = right_bucket[0][2] if right_bucket else INFINITY
        if dist >= prev:
            return []
        if right_bucket:
            right_bucket[0] = (v, parent, dist)
        else:
            right_bucket.append((v, parent, dist))
        # Hot loop: one offer per out-edge; build the Delta directly
        # (the insert() helper would re-tuple an already-tuple row).
        offer = dist + 1
        ins = DeltaOp.INSERT
        return [Delta(ins, (edge[1], v, offer)) for edge in left_bucket]


class MonotoneMinDist(WhileDeltaHandler):
    """While-state handler: admit a vertex row only on strict improvement."""

    name = "MonotoneMinDist"
    replay_idempotent = True  # admits strict improvements only
    emits_polarity = frozenset({DeltaOp.INSERT})  # strict improvements only
    reads = (0, 1, 2)  # stores the whole (v, parent, dist) row

    def update(self, while_relation, delta):
        key = (delta.row[0],)
        current = while_relation.get(key)
        if current is None or delta.row[2] < current[2]:
            while_relation[key] = delta.row
            return [insert(delta.row)]
        return []


def _expand_argmin(row: tuple) -> tuple:
    """(v, (parent, dist)) -> (v, parent, dist): the ``.{id, dist}``
    expansion of ArgMin's pair output."""
    v, pair = row
    if pair is None:
        return (v, None, None)
    return (v, pair[0], pair[1])


def sssp_plan(start_table: str = "start", graph_table: str = "graph",
              use_argmin_groupby: bool = True) -> PhysicalPlan:
    """Listing 2's plan.  ``use_argmin_groupby=False`` drops the ArgMin
    pre-aggregation and lets the fixpoint handler absorb all offers
    directly (an ablation of the paper's plan shape)."""
    vkey = lambda r: (r[0],)
    join = PJoin(left_key=vkey, right_key=vkey,
                 handler_factory=SPAgg, handler_side=1,
                 children=(PScan(graph_table), PFeedback()))
    if use_argmin_groupby:
        recursive = PProject.over(
            PGroupBy(
                key_fn=vkey,
                specs_factory=lambda: [AggregateSpec(
                    ArgMin(), arg=lambda r: (r[1], r[2]), output="best")],
                children=(PRehash.by(join, vkey),),
            ),
            _expand_argmin,
        )
    else:
        recursive = PRehash.by(join, vkey)
    return PhysicalPlan(PFixpoint(
        key_fn=vkey,
        while_handler_factory=MonotoneMinDist,
        children=(PRehash.by(PScan(start_table), vkey), recursive),
    ))


def make_start_table(cluster: Cluster, source: int,
                     name: str = "start", replication: int = 3) -> None:
    """Register the single-row base-case relation for ``source``.

    Replicated by default: the base case must survive node failures just
    like any other input (the recovery experiments lose arbitrary nodes).
    """
    cluster.create_table(name, ["v:Integer", "parent:Integer", "dist:Double"],
                         [(source, -1, 0.0)], "v", replication=replication)


def run_sssp(cluster: Cluster, start_table: str = "start",
             graph_table: str = "graph", max_strata: int = 200,
             options: Optional[ExecOptions] = None
             ) -> Tuple[Dict[int, Tuple[int, float]], QueryMetrics]:
    """Execute SSSP; returns ({vertex: (parent, dist)}, metrics)."""
    opts = options or ExecOptions()
    opts.max_strata = max_strata
    result = QueryExecutor(cluster, opts).execute(
        sssp_plan(start_table=start_table, graph_table=graph_table))
    return {row[0]: (row[1], row[2]) for row in result.rows}, result.metrics
