"""Independent oracle implementations used to verify the delta programs.

Each function computes the *same recurrence* the RQL programs define, using
plain numpy — so the distributed delta-propagating execution can be checked
for exact (or float-tolerance) agreement.  ``pagerank_networkx`` provides a
second, fully independent cross-check on graphs without degree pathologies.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np

Edge = Tuple[int, int]


def pagerank_reference(edges: Iterable[Edge], damping: float = 0.85,
                       base: float = 0.15, tol: float = 1e-10,
                       max_iter: int = 200) -> Dict[int, float]:
    """Jacobi iteration of Listing 1's recurrence.

    ``PR(v) = base + damping * sum_{u->v} PR(u) / outdeg(u)``, starting from
    PR = 1.0.  (This is the unnormalized variant the paper uses; dividing by
    the vertex count recovers the probability-normalized PageRank up to the
    handling of dangling mass.)  Vertices are all ids appearing as a source
    or destination.
    """
    edges = list(edges)
    vertices = sorted({v for e in edges for v in e})
    index = {v: i for i, v in enumerate(vertices)}
    n = len(vertices)
    out_deg = np.zeros(n)
    for s, _ in edges:
        out_deg[index[s]] += 1
    src = np.array([index[s] for s, _ in edges])
    dst = np.array([index[d] for _, d in edges])
    pr = np.ones(n)
    for _ in range(max_iter):
        contrib = np.zeros(n)
        np.add.at(contrib, dst, pr[src] / out_deg[src])
        new_pr = base + damping * contrib
        # Sources with no in-edges keep their initial value, matching the
        # fixpoint program (no recursive derivation ever reaches them).
        has_in = np.zeros(n, dtype=bool)
        has_in[dst] = True
        new_pr[~has_in] = pr[~has_in]
        if np.max(np.abs(new_pr - pr)) < tol:
            pr = new_pr
            break
        pr = new_pr
    return {v: float(pr[index[v]]) for v in vertices}


def pagerank_networkx(edges: Iterable[Edge], damping: float = 0.85
                      ) -> Dict[int, float]:
    """networkx's PageRank, rescaled to the paper's unnormalized convention.

    Only comparable on graphs where every vertex has in- and out-edges
    (otherwise networkx's dangling-mass redistribution diverges from the
    recurrence above).
    """
    import networkx as nx

    graph = nx.DiGraph()
    graph.add_edges_from(edges)
    scores = nx.pagerank(graph, alpha=damping, tol=1e-12, max_iter=500)
    n = graph.number_of_nodes()
    return {v: s * n for v, s in scores.items()}


def sssp_reference(edges: Iterable[Edge], source: int) -> Dict[int, int]:
    """Unweighted single-source shortest hop counts (BFS)."""
    adj: Dict[int, List[int]] = {}
    for s, d in edges:
        adj.setdefault(s, []).append(d)
    dist = {source: 0}
    frontier = [source]
    while frontier:
        nxt = []
        for u in frontier:
            for v in adj.get(u, ()):
                if v not in dist:
                    dist[v] = dist[u] + 1
                    nxt.append(v)
        frontier = nxt
    return dist


def kmeans_reference(points: List[Tuple[int, float, float]],
                     centroids: List[Tuple[int, float, float]],
                     max_iter: int = 100
                     ) -> Tuple[Dict[int, Tuple[float, float]], Dict[int, int], int]:
    """Lloyd's algorithm from the given initial centroids.

    Returns (final centroid positions, point -> centroid assignment, and
    the number of assignment iterations until no point switches).
    """
    xy = np.array([(x, y) for _, x, y in points])
    cent = {cid: np.array([x, y]) for cid, x, y in centroids}
    assign = np.full(len(points), -1)
    iterations = 0
    for _ in range(max_iter):
        iterations += 1
        ids = sorted(cent)
        matrix = np.array([cent[c] for c in ids])
        d2 = ((xy[:, None, :] - matrix[None, :, :]) ** 2).sum(axis=2)
        new_assign = np.array(ids)[np.argmin(d2, axis=1)]
        if np.array_equal(new_assign, assign):
            break
        assign = new_assign
        for cid in ids:
            members = xy[assign == cid]
            if len(members):
                cent[cid] = members.mean(axis=0)
    final = {cid: (float(p[0]), float(p[1])) for cid, p in cent.items()}
    mapping = {points[i][0]: int(assign[i]) for i in range(len(points))}
    return final, mapping, iterations
