"""Delta-based adsorption (label propagation) — Figure 3's fourth row.

The paper lists adsorption among the algorithms whose Δᵢ set is "adsorbtion
vector positions with change >= 1% since iteration i-1" but gives no
listing; we implement the standard damped, injection-based linear variant:

    w(v, l) = inject(v, l) + damping * sum_{u->v} w(u, l) / outdeg(u)

which is exactly a PageRank-style recurrence *per label*, so the delta
machinery is the same with a composite (vertex, label) key.  (The fully
normalized adsorption update is non-linear and does not decompose into
per-delta adjustments; the damped variant preserves the convergence and
Δ-set behaviour Figure 3 describes.  Documented in DESIGN.md.)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.metrics import QueryMetrics
from repro.common.deltas import update
from repro.runtime import (
    ExecOptions,
    PFeedback,
    PFixpoint,
    PGroupBy,
    PJoin,
    PProject,
    PRehash,
    PScan,
    PhysicalPlan,
    QueryExecutor,
)
from repro.udf import AggregateSpec, Sum
from repro.udf.aggregates import JoinDeltaHandler

DAMPING = 0.85


class AdsorptionAgg(JoinDeltaHandler):
    """Join handler spreading label-weight *changes* along out-edges.

    Left bucket: out-edges of the vertex.  Right bucket: one row per label
    carried by this vertex: ``(v, label, weight)``.
    """

    name = "AdsorptionAgg"
    reads = (0, 1, 2)  # unpacks the full (v, label, weight) row

    def __init__(self, tol: float = 0.01):
        super().__init__()
        self.tol = tol

    def update(self, left_bucket, right_bucket, delta, side):
        v, label, weight = delta.row
        prev = 0.0
        slot = None
        for i, row in enumerate(right_bucket):
            if row[1] == label:
                prev = row[2]
                slot = i
                break
        if slot is None:
            right_bucket.append((v, label, weight))
        else:
            right_bucket[slot] = (v, label, weight)
        diff = weight - prev
        if abs(diff) <= self.tol * abs(prev) or diff == 0.0 or not left_bucket:
            return []
        share = diff / len(left_bucket)
        return [update((edge[1], label), payload=share) for edge in left_bucket]


def adsorption_plan(seeds: Dict[Tuple[int, str], float],
                    graph_table: str = "graph",
                    seed_table: str = "labels",
                    tol: float = 0.01) -> PhysicalPlan:
    src_key = lambda r: (r[0],)
    vl_key = lambda r: (r[0], r[1])

    def project_inject(row: tuple) -> tuple:
        v, label, total = row
        inject = seeds.get((v, label), 0.0)
        return (v, label, inject + DAMPING * (total or 0.0))

    recursive = PProject.over(
        PGroupBy(
            key_fn=lambda r: (r[0], r[1]),
            specs_factory=lambda: [AggregateSpec(Sum(), output="wsum")],
            children=(PRehash(key_fn=src_key, children=(
                PJoin(left_key=src_key, right_key=src_key,
                      handler_factory=lambda: AdsorptionAgg(tol),
                      handler_side=1,
                      children=(PScan(graph_table), PFeedback())),
            )),),
        ),
        project_inject,
    )
    return PhysicalPlan(PFixpoint(
        key_fn=vl_key,
        semantics="keyed",
        children=(PRehash.by(PScan(seed_table), src_key), recursive),
    ))


def run_adsorption(cluster: Cluster, seeds: Dict[Tuple[int, str], float],
                   graph_table: str = "graph", seed_table: str = "labels",
                   tol: float = 0.01, max_strata: int = 80,
                   options: Optional[ExecOptions] = None
                   ) -> Tuple[Dict[Tuple[int, str], float], QueryMetrics]:
    """Execute adsorption; returns ({(vertex, label): weight}, metrics).

    ``seeds`` maps (vertex, label) to injected weight; the caller must have
    registered ``seed_table`` with rows ``(v, label, weight)`` matching it.
    """
    opts = options or ExecOptions()
    opts.max_strata = max_strata
    result = QueryExecutor(cluster, opts).execute(
        adsorption_plan(seeds, graph_table=graph_table,
                        seed_table=seed_table, tol=tol))
    return {(r[0], r[1]): r[2] for r in result.rows}, result.metrics
