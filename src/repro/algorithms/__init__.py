"""Delta-oriented implementations of the paper's algorithms (Section 3.4,
Figure 3, Listings 1-3) plus independent reference oracles."""

from repro.algorithms.adsorption import AdsorptionAgg, run_adsorption
from repro.algorithms.kmeans import CentroidAvg, KMAgg, kmeans_plan, run_kmeans
from repro.algorithms.pagerank import (
    PRAgg,
    PRAggFull,
    pagerank_plan,
    run_pagerank,
)
from repro.algorithms.reference import (
    kmeans_reference,
    pagerank_networkx,
    pagerank_reference,
    sssp_reference,
)
from repro.algorithms.sssp import (
    MonotoneMinDist,
    SPAgg,
    make_start_table,
    run_sssp,
    sssp_plan,
)

__all__ = [
    "PRAgg",
    "PRAggFull",
    "pagerank_plan",
    "run_pagerank",
    "SPAgg",
    "MonotoneMinDist",
    "sssp_plan",
    "run_sssp",
    "make_start_table",
    "KMAgg",
    "CentroidAvg",
    "kmeans_plan",
    "run_kmeans",
    "AdsorptionAgg",
    "run_adsorption",
    "pagerank_reference",
    "pagerank_networkx",
    "sssp_reference",
    "kmeans_reference",
]
