"""Delta-based PageRank — the paper's flagship example (Listing 1, Figure 1).

The recursive plan mirrors Figure 1:

* base case: scan the edge relation, give every source page PageRank 1.0;
* recursive case: the fixpoint feeds PageRank rows back into a join with
  the (immutable) edge relation, where the user join handler :class:`PRAgg`
  stores the page's new score in its bucket (``prBucket``), computes the
  change, and — if it exceeds the convergence threshold — spreads the change
  equally over the out-neighbours (``nbrBucket``) as ``δ(diff)`` deltas;
* those deltas rehash to the target page, a running SUM folds them into
  each page's incoming-mass total, and a projection applies the damping
  formula ``0.15 + 0.85 * sum``;
* the fixpoint (BY page) replaces each page's score, admitting only pages
  whose score actually changed — the Δᵢ set.

Note: Listing 1 computes ``deltaPr = prBucket.get(nbrId) - pr`` (old minus
new), which flips the sign of every propagated diff; we use new minus old,
which is what makes the recurrence converge to PageRank.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.metrics import QueryMetrics
from repro.common.deltas import Delta, DeltaOp
from repro.runtime import (
    ExecOptions,
    PFeedback,
    PFixpoint,
    PGroupBy,
    PJoin,
    PProject,
    PRehash,
    PScan,
    PhysicalPlan,
    QueryExecutor,
)
from repro.udf import AggregateSpec, Sum
from repro.udf.aggregates import JoinDeltaHandler, WhileDeltaHandler

DAMPING = 0.85
BASE_SCORE = 0.15


class PRAgg(JoinDeltaHandler):
    """The paper's PageRank join delta handler (Listing 1).

    Left bucket: edge rows ``(srcId, destId)`` for this page (immutable).
    Right bucket: the page's current PageRank row ``(srcId, pr)`` (mutable).
    ``tol`` is the relative convergence threshold (the paper uses 1%);
    ``tol=0`` propagates every nonzero change (exact fixpoint).
    """

    name = "PRAgg"
    in_types = ("Integer", "Double")
    out_types = ("nbr:Integer", "prdiff:Double")
    emits_polarity = frozenset({DeltaOp.UPDATE})  # δ(diff) adjustments only
    reads = (0, 1)  # (page, pr); the edge bucket carries the neighbours

    def __init__(self, tol: float = 0.01):
        super().__init__()
        self.tol = tol
        self._nbrs: Dict[int, list] = {}

    def _neighbour_rows(self, left_bucket) -> list:
        """Memoized ``(destId,)`` rows per edge bucket.

        The edge relation is immutable once scanned (its bucket only ever
        grows during the initial load), so the projected neighbour tuples
        are cached per bucket, keyed by the bucket's identity, and rebuilt
        whenever the bucket has grown.
        """
        nbrs = self._nbrs.get(id(left_bucket))
        if nbrs is None or len(nbrs) != len(left_bucket):
            nbrs = [(edge[1],) for edge in left_bucket]
            self._nbrs[id(left_bucket)] = nbrs
        return nbrs

    def update(self, left_bucket, right_bucket, delta, side):
        page, pr = delta.row[0], delta.row[1]
        prev = right_bucket[0][1] if right_bucket else 0.0
        if right_bucket:
            right_bucket[0] = (page, pr)
        else:
            right_bucket.append((page, pr))
        diff = pr - prev
        threshold = self.tol * abs(prev)
        if abs(diff) <= threshold or diff == 0.0 or not left_bucket:
            return []
        share = diff / len(left_bucket)
        make, upd = Delta, DeltaOp.UPDATE
        return [make(upd, t, payload=share)
                for t in self._neighbour_rows(left_bucket)]


class PRAggFull(PRAgg):
    """No-delta variant: re-emits every page's full contribution each
    stratum (paired with a group-by that re-aggregates from scratch)."""

    name = "PRAggFull"

    def update(self, left_bucket, right_bucket, delta, side):
        page, pr = delta.row[0], delta.row[1]
        if right_bucket:
            right_bucket[0] = (page, pr)
        else:
            right_bucket.append((page, pr))
        if not left_bucket:
            return []
        share = pr / len(left_bucket)
        make, upd = Delta, DeltaOp.UPDATE
        return [make(upd, t, payload=share)
                for t in self._neighbour_rows(left_bucket)]


class PRFixpointHandler(WhileDeltaHandler):
    """While-state handler realising the paper's Δᵢ definition (Figure 3):
    "PageRank values with change >= 1% since iteration i-1".

    The stored score is always refined to the newest value, but a page is
    only *admitted* into the next stratum's Δ set when its score moved by
    more than the relative threshold — sub-threshold wobble neither feeds
    back nor delays convergence.  ``tol=0`` admits every change (exact).
    """

    name = "PRFixpointHandler"
    emits_polarity = frozenset({DeltaOp.INSERT, DeltaOp.REPLACE})
    reads = (0, 1)  # (page, pr); the whole row is stored as the new state

    def __init__(self, tol: float = 0.01):
        super().__init__()
        self.tol = tol

    def update(self, while_relation, delta):
        row = delta.row
        key = (row[0],)
        current = while_relation.get(key)
        if current is None:
            while_relation[key] = row
            return [Delta(DeltaOp.INSERT, row)]
        if row == current:
            return []
        while_relation[key] = row
        if abs(row[1] - current[1]) > self.tol * abs(current[1]):
            return [Delta(DeltaOp.REPLACE, row, old=current)]
        return []


def _project_damping(row: tuple) -> tuple:
    total = row[1]
    return (row[0], BASE_SCORE + DAMPING * (total if total is not None else 0.0))


def pagerank_plan(mode: str = "delta", tol: float = 0.01,
                  graph_table: str = "graph") -> PhysicalPlan:
    """Build the Figure 1 physical plan.

    ``mode='delta'`` propagates only changes (REX Δ); ``mode='nodelta'``
    re-iterates the full mutable set every stratum (REX no-Δ), matching the
    paper's comparison configuration.
    """
    if mode not in ("delta", "nodelta"):
        raise ValueError(f"unknown PageRank mode {mode!r}")
    delta_mode = mode == "delta"
    src_key = lambda r: (r[0],)

    handler_factory = (lambda: PRAgg(tol)) if delta_mode else PRAggFull
    recursive = PProject.over(
        PGroupBy(
            key_fn=lambda r: (r[0],),
            specs_factory=lambda: [AggregateSpec(Sum(), output="prsum")],
            clear_states_each_stratum=not delta_mode,
            children=(PRehash(key_fn=lambda r: (r[0],), children=(
                PJoin(left_key=src_key, right_key=src_key,
                      handler_factory=handler_factory, handler_side=1,
                      children=(PScan(graph_table), PFeedback())),
            )),),
        ),
        _project_damping,
    )
    base = PProject.over(PScan(graph_table), lambda r: (r[0], 1.0))
    return PhysicalPlan(PFixpoint(
        key_fn=lambda r: (r[0],),
        semantics="keyed",
        while_handler_factory=(lambda: PRFixpointHandler(tol))
        if delta_mode else None,
        admit_unchanged=not delta_mode,
        children=(base, recursive),
    ))


def run_pagerank(cluster: Cluster, mode: str = "delta", tol: float = 0.01,
                 graph_table: str = "graph", max_strata: int = 60,
                 options: Optional[ExecOptions] = None
                 ) -> Tuple[Dict[int, float], QueryMetrics]:
    """Execute PageRank on a cluster whose catalog holds ``graph_table``.

    Returns (page -> score, metrics).  In no-delta mode the query runs for
    ``max_strata`` iterations (the paper's no-delta and Hadoop
    configurations do not convergence-test).
    """
    opts = options or ExecOptions()
    opts.max_strata = max_strata
    opts.feedback_mode = "delta" if mode == "delta" else "full"
    result = QueryExecutor(cluster, opts).execute(
        pagerank_plan(mode=mode, tol=tol, graph_table=graph_table))
    return {row[0]: row[1] for row in result.rows}, result.metrics
